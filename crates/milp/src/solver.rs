//! Branch & bound over the simplex relaxation.

use std::collections::BinaryHeap;
use std::fmt;
use std::time::{Duration, Instant};

use crate::model::{Model, VarId, VarKind};
use crate::simplex::{self, Lp, LpOutcome, Row};
use crate::solution::{MipResult, SolveStatus, Solution};

/// Integer feasibility tolerance.
const INT_TOL: f64 = 1e-6;

/// Error raised by [`Model::solve`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveError {
    /// The simplex hit its cycling guard or produced out-of-tolerance
    /// residuals; the message carries the diagnostic.
    Numerical(String),
    /// The model has no constraints and no bounded objective direction.
    Malformed(String),
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::Numerical(m) => write!(f, "numerical failure in simplex: {m}"),
            SolveError::Malformed(m) => write!(f, "malformed model: {m}"),
        }
    }
}

impl std::error::Error for SolveError {}

/// Search limits and options for branch & bound.
#[derive(Debug, Clone)]
pub struct SolveParams {
    /// Wall-clock budget. The best incumbent found so far is returned when
    /// the budget expires.
    pub time_limit: Duration,
    /// Maximum number of branch & bound nodes to process (`0` processes only
    /// the root relaxation and any hint).
    pub node_limit: usize,
    /// Stop when the relative optimality gap falls below this value.
    pub rel_gap: f64,
    /// Stop when the absolute optimality gap falls below this value.
    pub abs_gap: f64,
    /// Try rounding the root LP solution into an incumbent.
    pub rounding_heuristic: bool,
}

impl Default for SolveParams {
    fn default() -> SolveParams {
        SolveParams {
            time_limit: Duration::from_secs(600),
            node_limit: 2_000_000,
            rel_gap: 1e-6,
            abs_gap: 1e-9,
            rounding_heuristic: true,
        }
    }
}

impl SolveParams {
    /// A parameter set with the given time budget and otherwise defaults.
    #[must_use]
    pub fn with_time_limit(limit: Duration) -> SolveParams {
        SolveParams { time_limit: limit, ..SolveParams::default() }
    }
}

/// A branch decision: tighten one variable's bound.
#[derive(Debug, Clone, Copy)]
struct BranchBound {
    var: usize,
    lb: f64,
    ub: f64,
}

struct Node {
    /// Index of the parent in the arena, `usize::MAX` for the root.
    parent: usize,
    bound_change: Option<BranchBound>,
    depth: usize,
}

/// Heap entry ordered so the *lowest* LP bound pops first (best-bound
/// search), with deeper nodes preferred on ties (plunging).
struct OpenNode {
    arena_index: usize,
    lp_bound: f64,
    depth: usize,
}

impl PartialEq for OpenNode {
    fn eq(&self, other: &Self) -> bool {
        self.lp_bound == other.lp_bound && self.depth == other.depth
    }
}
impl Eq for OpenNode {}
impl PartialOrd for OpenNode {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OpenNode {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap: invert the bound comparison.
        other
            .lp_bound
            .partial_cmp(&self.lp_bound)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(self.depth.cmp(&other.depth))
    }
}

pub(crate) fn solve(
    model: &Model,
    params: &SolveParams,
    hint: Option<&[(VarId, f64)]>,
) -> Result<MipResult, SolveError> {
    let start = Instant::now();
    let sign = if model.maximize { -1.0 } else { 1.0 };

    let base_rows: Vec<Row> = model
        .constraints
        .iter()
        .map(|c| Row {
            terms: c.terms.iter().map(|&(v, coef)| (v.index(), coef)).collect(),
            sense: c.sense,
            rhs: c.rhs,
        })
        .collect();
    // Constant-only constraints that are unsatisfiable make the model
    // trivially infeasible; satisfied ones are dropped by the presolve.
    for r in &base_rows {
        if r.terms.is_empty() {
            let ok = match r.sense {
                crate::model::Sense::Le => 0.0 <= r.rhs + 1e-9,
                crate::model::Sense::Ge => 0.0 >= r.rhs - 1e-9,
                crate::model::Sense::Eq => r.rhs.abs() <= 1e-9,
            };
            if !ok {
                return Ok(finish(
                    SolveStatus::Infeasible,
                    None,
                    f64::NEG_INFINITY,
                    0,
                    0,
                    start,
                    sign,
                ));
            }
        }
    }

    let base_lb: Vec<f64> = model.vars.iter().map(|v| v.lb).collect();
    let base_ub: Vec<f64> = model.vars.iter().map(|v| v.ub).collect();
    let cost: Vec<f64> = model.objective.clone();
    let int_vars: Vec<usize> = model
        .vars
        .iter()
        .enumerate()
        .filter(|(_, v)| v.kind != VarKind::Continuous)
        .map(|(i, _)| i)
        .collect();

    let mut simplex_iterations = 0usize;
    let mut nodes_processed = 0usize;

    let deadline = start + params.time_limit;
    let solve_lp_with =
        |lb: &[f64], ub: &[f64], iters: &mut usize| -> Result<LpOutcome, SolveError> {
            let (outcome, it) = presolved_lp(&base_rows, &cost, lb, ub, Some(deadline));
            *iters += it;
            if let LpOutcome::Numerical(msg) = &outcome {
                return Err(SolveError::Numerical(msg.clone()));
            }
            Ok(outcome)
        };

    let mut incumbent: Option<(Vec<f64>, f64)> = None; // (values, min-sense obj)

    // -- hint: fix integers, solve the remaining LP --
    if let Some(hint) = hint {
        let mut lb = base_lb.clone();
        let mut ub = base_ub.clone();
        let mut valid = true;
        for &(v, val) in hint {
            let i = v.index();
            let r = val.round();
            if r < base_lb[i] - 1e-9 || r > base_ub[i] + 1e-9 {
                valid = false;
                break;
            }
            lb[i] = r;
            ub[i] = r;
        }
        if valid {
            if let LpOutcome::Optimal { x, obj } = solve_lp_with(&lb, &ub, &mut simplex_iterations)?
            {
                incumbent = Some((x, obj + model.obj_constant));
            }
        }
    }

    // zero node budget + a hint-based incumbent: skip the root relaxation
    // entirely (scalable heuristic mode — the LP polish *is* the answer)
    if params.node_limit == 0 && incumbent.is_some() {
        return Ok(finish(
            SolveStatus::Feasible,
            incumbent,
            f64::NEG_INFINITY,
            nodes_processed,
            simplex_iterations,
            start,
            sign,
        ));
    }

    // -- root relaxation --
    let root_outcome = solve_lp_with(&base_lb, &base_ub, &mut simplex_iterations)?;
    let (root_x, root_bound) = match root_outcome {
        LpOutcome::TimedOut => {
            return Ok(finish(
                if incumbent.is_some() {
                    SolveStatus::Feasible
                } else {
                    SolveStatus::LimitReached
                },
                incumbent,
                f64::NEG_INFINITY,
                nodes_processed,
                simplex_iterations,
                start,
                sign,
            ));
        }
        LpOutcome::Optimal { x, obj } => (x, obj + model.obj_constant),
        LpOutcome::Infeasible => {
            return Ok(finish(
                if incumbent.is_some() { SolveStatus::Feasible } else { SolveStatus::Infeasible },
                incumbent,
                f64::NEG_INFINITY,
                nodes_processed,
                simplex_iterations,
                start,
                sign,
            ));
        }
        LpOutcome::Unbounded => {
            // With an incumbent the model cannot be truly unbounded in the
            // integer sense we care about; report what we know.
            return Ok(finish(
                if incumbent.is_some() { SolveStatus::Feasible } else { SolveStatus::Unbounded },
                incumbent,
                f64::NEG_INFINITY,
                nodes_processed,
                simplex_iterations,
                start,
                sign,
            ));
        }
        LpOutcome::Numerical(_) => unreachable!("mapped to Err above"),
    };

    // integral root?
    if all_integral(&root_x, &int_vars) {
        let obj = root_bound;
        if incumbent.as_ref().is_none_or(|(_, inc)| obj < *inc) {
            incumbent = Some((round_ints(root_x, &int_vars), obj));
        }
        return Ok(finish(
            SolveStatus::Optimal,
            incumbent,
            root_bound,
            nodes_processed,
            simplex_iterations,
            start,
            sign,
        ));
    }

    // -- rounding heuristic --
    if params.rounding_heuristic && incumbent.is_none() {
        let mut lb = base_lb.clone();
        let mut ub = base_ub.clone();
        for &i in &int_vars {
            let r = root_x[i].round().clamp(base_lb[i], base_ub[i]);
            lb[i] = r;
            ub[i] = r;
        }
        if let LpOutcome::Optimal { x, obj } = solve_lp_with(&lb, &ub, &mut simplex_iterations)? {
            incumbent = Some((x, obj + model.obj_constant));
        }
    }

    // -- branch & bound --
    let mut arena: Vec<Node> =
        vec![Node { parent: usize::MAX, bound_change: None, depth: 0 }];
    let mut heap = BinaryHeap::new();
    heap.push(OpenNode { arena_index: 0, lp_bound: root_bound, depth: 0 });

    let mut best_open_bound = root_bound;
    let mut hit_limit = false;

    while let Some(open) = heap.pop() {
        best_open_bound = open.lp_bound;
        if let Some((_, inc)) = &incumbent {
            if open.lp_bound >= *inc - params.abs_gap
                || (inc - open.lp_bound).abs() <= params.rel_gap * inc.abs().max(1.0)
            {
                // everything remaining is dominated: proven optimal
                best_open_bound = *inc;
                break;
            }
        }
        if start.elapsed() >= params.time_limit || nodes_processed >= params.node_limit {
            hit_limit = true;
            break;
        }
        nodes_processed += 1;

        // reconstruct bounds along the parent chain
        let mut lb = base_lb.clone();
        let mut ub = base_ub.clone();
        let mut cursor = open.arena_index;
        while cursor != usize::MAX {
            if let Some(bc) = arena[cursor].bound_change {
                lb[bc.var] = lb[bc.var].max(bc.lb);
                ub[bc.var] = ub[bc.var].min(bc.ub);
            }
            cursor = arena[cursor].parent;
        }
        if lb.iter().zip(&ub).any(|(l, u)| l > u) {
            continue; // conflicting branches
        }

        let outcome = solve_lp_with(&lb, &ub, &mut simplex_iterations)?;
        let (x, obj) = match outcome {
            LpOutcome::TimedOut => {
                hit_limit = true;
                break;
            }
            LpOutcome::Optimal { x, obj } => (x, obj + model.obj_constant),
            LpOutcome::Infeasible => continue,
            LpOutcome::Unbounded => {
                // A child cannot be less bounded than the root in a sound
                // model; treat as numerically suspect and skip.
                continue;
            }
            LpOutcome::Numerical(_) => unreachable!("mapped to Err above"),
        };
        if let Some((_, inc)) = &incumbent {
            if obj >= *inc - params.abs_gap {
                continue; // dominated
            }
        }
        match most_fractional(&x, &int_vars) {
            None => {
                // integral: new incumbent
                if incumbent.as_ref().is_none_or(|(_, inc)| obj < *inc) {
                    incumbent = Some((round_ints(x, &int_vars), obj));
                }
            }
            Some(branch_var) => {
                let v = x[branch_var];
                let depth = arena[open.arena_index].depth + 1;
                let down = Node {
                    parent: open.arena_index,
                    bound_change: Some(BranchBound {
                        var: branch_var,
                        lb: f64::NEG_INFINITY,
                        ub: v.floor(),
                    }),
                    depth,
                };
                let up = Node {
                    parent: open.arena_index,
                    bound_change: Some(BranchBound {
                        var: branch_var,
                        lb: v.ceil(),
                        ub: f64::INFINITY,
                    }),
                    depth,
                };
                arena.push(down);
                heap.push(OpenNode { arena_index: arena.len() - 1, lp_bound: obj, depth });
                arena.push(up);
                heap.push(OpenNode { arena_index: arena.len() - 1, lp_bound: obj, depth });
            }
        }
    }

    let status = match (&incumbent, hit_limit, heap.is_empty()) {
        (Some(_), false, _) => SolveStatus::Optimal,
        (Some(_), true, _) => SolveStatus::Feasible,
        (None, true, _) => SolveStatus::LimitReached,
        (None, false, _) => SolveStatus::Infeasible,
    };
    let bound = if heap.is_empty() && !hit_limit {
        incumbent.as_ref().map_or(best_open_bound, |(_, inc)| *inc)
    } else {
        best_open_bound
    };
    Ok(finish(status, incumbent, bound, nodes_processed, simplex_iterations, start, sign))
}

fn finish(
    status: SolveStatus,
    incumbent: Option<(Vec<f64>, f64)>,
    bound: f64,
    nodes: usize,
    simplex_iterations: usize,
    start: Instant,
    sign: f64,
) -> MipResult {
    MipResult {
        status,
        solution: incumbent
            .map(|(values, obj)| Solution { values, objective: sign * obj }),
        best_bound: sign * bound,
        nodes,
        simplex_iterations,
        elapsed: start.elapsed(),
    }
}

/// Builds and solves the LP for one node's bounds, with a presolve that:
///
/// 1. substitutes fixed variables (`lb == ub`) into every row,
/// 2. drops rows made redundant by the variable bounds — in particular the
///    big-M disjunction rows whose indicator has been fixed to 1, which is
///    what makes warm-started and deep-node LPs small,
/// 3. detects bound-infeasible rows without calling the simplex,
/// 4. compresses away columns that no remaining row or objective term uses.
///
/// Returns the outcome in the *full* variable space.
fn presolved_lp(
    base_rows: &[Row],
    cost: &[f64],
    lb: &[f64],
    ub: &[f64],
    deadline: Option<std::time::Instant>,
) -> (LpOutcome, usize) {
    let n = lb.len();
    let fixed = |j: usize| ub[j] - lb[j] <= 0.0;
    let mut kept_rows: Vec<Row> = Vec::with_capacity(base_rows.len());
    let mut used = vec![false; n];

    for row in base_rows {
        let mut terms: Vec<(usize, f64)> = Vec::with_capacity(row.terms.len());
        let mut rhs = row.rhs;
        for &(j, c) in &row.terms {
            if fixed(j) {
                rhs -= c * lb[j];
            } else {
                terms.push((j, c));
            }
        }
        // activity bounds over the remaining terms
        let (mut min_act, mut max_act) = (0.0f64, 0.0f64);
        for &(j, c) in &terms {
            if c > 0.0 {
                min_act += c * lb[j];
                max_act += c * ub[j];
            } else {
                min_act += c * ub[j];
                max_act += c * lb[j];
            }
        }
        let tol = 1e-7 * (1.0 + rhs.abs());
        let (redundant, infeasible) = match row.sense {
            crate::model::Sense::Le => (max_act <= rhs + tol, min_act > rhs + tol),
            crate::model::Sense::Ge => (min_act >= rhs - tol, max_act < rhs - tol),
            crate::model::Sense::Eq => (
                (max_act - rhs).abs() <= tol && (min_act - rhs).abs() <= tol,
                min_act > rhs + tol || max_act < rhs - tol,
            ),
        };
        if infeasible {
            return (LpOutcome::Infeasible, 0);
        }
        if redundant {
            continue;
        }
        for &(j, _) in &terms {
            used[j] = true;
        }
        kept_rows.push(Row { terms, sense: row.sense, rhs });
    }
    // objective terms over unfixed variables must survive compression
    for (j, &c) in cost.iter().enumerate() {
        if c != 0.0 && !fixed(j) {
            used[j] = true;
        }
    }

    // column compression
    let keep: Vec<usize> = (0..n).filter(|&j| used[j]).collect();
    let mut pos = vec![usize::MAX; n];
    for (new, &old) in keep.iter().enumerate() {
        pos[old] = new;
    }
    let small = Lp {
        lb: keep.iter().map(|&j| lb[j]).collect(),
        ub: keep.iter().map(|&j| ub[j]).collect(),
        cost: keep.iter().map(|&j| cost[j]).collect(),
        rows: kept_rows
            .into_iter()
            .map(|r| Row {
                terms: r.terms.into_iter().map(|(j, c)| (pos[j], c)).collect(),
                sense: r.sense,
                rhs: r.rhs,
            })
            .collect(),
    };
    let fixed_cost: f64 = (0..n).filter(|&j| fixed(j)).map(|j| cost[j] * lb[j]).sum();

    let (outcome, iters) = simplex::solve_lp(&small, deadline);
    let outcome = match outcome {
        LpOutcome::Optimal { x, obj } => {
            // expand to the full space: fixed -> value, unused -> lb
            let mut full = vec![0.0; n];
            for j in 0..n {
                full[j] = if fixed(j) {
                    lb[j]
                } else if pos[j] != usize::MAX {
                    x[pos[j]]
                } else {
                    lb[j]
                };
            }
            LpOutcome::Optimal { x: full, obj: obj + fixed_cost }
        }
        other => other,
    };
    (outcome, iters)
}

fn all_integral(x: &[f64], int_vars: &[usize]) -> bool {
    int_vars.iter().all(|&i| (x[i] - x[i].round()).abs() <= INT_TOL)
}

fn round_ints(mut x: Vec<f64>, int_vars: &[usize]) -> Vec<f64> {
    for &i in int_vars {
        x[i] = x[i].round();
    }
    x
}

/// The integer variable whose LP value is farthest from integral, if any.
fn most_fractional(x: &[f64], int_vars: &[usize]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for &i in int_vars {
        let frac = (x[i] - x[i].round()).abs();
        if frac > INT_TOL {
            let score = 0.5 - (x[i] - x[i].floor() - 0.5).abs();
            if best.is_none_or(|(_, s)| score > s) {
                best = Some((i, score));
            }
        }
    }
    best.map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Sense;
    use crate::Model;

    fn p() -> SolveParams {
        SolveParams::default()
    }

    #[test]
    fn pure_lp_optimal() {
        let mut m = Model::new();
        let x = m.num_var("x", 0.0, 10.0);
        let y = m.num_var("y", 0.0, 10.0);
        m.constraint(Model::expr().term(1.0, x).term(1.0, y), Sense::Le, 6.0);
        m.maximize(Model::expr().term(3.0, x).term(5.0, y));
        let r = m.solve(&p()).unwrap();
        assert_eq!(r.status(), SolveStatus::Optimal);
        assert!((r.solution().unwrap().objective() - 30.0).abs() < 1e-6);
    }

    #[test]
    fn knapsack_small() {
        // max 10a + 13b + 7c, 3a + 4b + 2c <= 6, binary
        let mut m = Model::new();
        let a = m.bin_var("a");
        let b = m.bin_var("b");
        let c = m.bin_var("c");
        m.constraint(
            Model::expr().term(3.0, a).term(4.0, b).term(2.0, c),
            Sense::Le,
            6.0,
        );
        m.maximize(Model::expr().term(10.0, a).term(13.0, b).term(7.0, c));
        let r = m.solve(&p()).unwrap();
        assert_eq!(r.status(), SolveStatus::Optimal);
        let sol = r.solution().unwrap();
        // best is b + c = 20
        assert!((sol.objective() - 20.0).abs() < 1e-6, "{}", sol.objective());
        assert!(sol.value(b) > 0.5 && sol.value(c) > 0.5 && sol.value(a) < 0.5);
    }

    #[test]
    fn integer_rounding_not_enough() {
        // LP optimum fractional; IP optimum differs from naive rounding
        // max x + y s.t. 2x + 2y <= 5, x,y int -> LP gives 2.5 total, IP 2
        let mut m = Model::new();
        let x = m.int_var("x", 0.0, 10.0);
        let y = m.int_var("y", 0.0, 10.0);
        m.constraint(Model::expr().term(2.0, x).term(2.0, y), Sense::Le, 5.0);
        m.maximize(Model::expr().term(1.0, x).term(1.0, y));
        let r = m.solve(&p()).unwrap();
        assert_eq!(r.status(), SolveStatus::Optimal);
        assert!((r.solution().unwrap().objective() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn infeasible_binary_model() {
        let mut m = Model::new();
        let a = m.bin_var("a");
        let b = m.bin_var("b");
        m.constraint(Model::expr().term(1.0, a).term(1.0, b), Sense::Ge, 3.0);
        m.minimize(Model::expr().term(1.0, a));
        let r = m.solve(&p()).unwrap();
        assert_eq!(r.status(), SolveStatus::Infeasible);
        assert!(r.solution().is_none());
    }

    #[test]
    fn equality_with_integers() {
        // x + y = 7, x - y = 1 over integers
        let mut m = Model::new();
        let x = m.int_var("x", 0.0, 100.0);
        let y = m.int_var("y", 0.0, 100.0);
        m.constraint(Model::expr().term(1.0, x).term(1.0, y), Sense::Eq, 7.0);
        m.constraint(Model::expr().term(1.0, x).term(-1.0, y), Sense::Eq, 1.0);
        m.minimize(Model::expr().term(1.0, x));
        let r = m.solve(&p()).unwrap();
        let sol = r.solution().unwrap();
        assert!((sol.value(x) - 4.0).abs() < 1e-6);
        assert!((sol.value(y) - 3.0).abs() < 1e-6);
    }

    #[test]
    fn hint_seeds_incumbent_under_zero_node_budget() {
        // fractional root LP (b=1, a=0.5) so the zero node budget matters
        let mut m = Model::new();
        let a = m.bin_var("a");
        let b = m.bin_var("b");
        m.constraint(Model::expr().term(2.0, a).term(2.0, b), Sense::Le, 3.0);
        m.maximize(Model::expr().term(2.0, a).term(3.0, b));
        let params = SolveParams { node_limit: 0, rounding_heuristic: false, ..p() };
        let r = m.solve_with_hint(&params, &[(a, 1.0), (b, 0.0)]).unwrap();
        // hint gives objective 2 even though the optimum is 3
        assert!(r.status().has_solution());
        assert!((r.solution().unwrap().objective() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn infeasible_hint_is_ignored() {
        let mut m = Model::new();
        let a = m.bin_var("a");
        m.constraint(Model::expr().term(1.0, a), Sense::Eq, 1.0);
        m.minimize(Model::expr().term(1.0, a));
        let r = m.solve_with_hint(&p(), &[(a, 0.0)]).unwrap();
        assert_eq!(r.status(), SolveStatus::Optimal);
        assert!((r.solution().unwrap().value(a) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn big_m_disjunction() {
        // two unit squares must not overlap in 1D: |x1 - x2| >= 1
        // min x1 + x2 with x2 >= 0.2 forced ordering via binaries
        let mut m = Model::new();
        let x1 = m.num_var("x1", 0.0, 10.0);
        let x2 = m.num_var("x2", 0.0, 10.0);
        let q1 = m.bin_var("q1");
        let q2 = m.bin_var("q2");
        let big = 100.0;
        // x1 + 1 <= x2 + q1*M ; x2 + 1 <= x1 + q2*M ; q1 + q2 = 1
        m.constraint(
            Model::expr().term(1.0, x1).term(-1.0, x2).term(-big, q1),
            Sense::Le,
            -1.0,
        );
        m.constraint(
            Model::expr().term(1.0, x2).term(-1.0, x1).term(-big, q2),
            Sense::Le,
            -1.0,
        );
        m.constraint(Model::expr().term(1.0, q1).term(1.0, q2), Sense::Eq, 1.0);
        m.minimize(Model::expr().term(1.0, x1).term(2.0, x2));
        let r = m.solve(&p()).unwrap();
        let sol = r.solution().unwrap();
        let (v1, v2) = (sol.value(x1), sol.value(x2));
        assert!((v1 - v2).abs() >= 1.0 - 1e-6, "x1={v1} x2={v2}");
        // optimal keeps x2 at 0 and pushes x1 to 1: objective 1
        assert!((sol.objective() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn node_limit_reports_feasible_or_limit() {
        let mut m = Model::new();
        let vars: Vec<_> = (0..12).map(|i| m.bin_var(format!("b{i}"))).collect();
        let mut e = Model::expr();
        for (i, &v) in vars.iter().enumerate() {
            e = e.term(1.0 + (i as f64) * 0.37, v);
        }
        m.constraint(e.clone(), Sense::Le, 11.0);
        m.maximize(e);
        let params = SolveParams { node_limit: 1, ..p() };
        let r = m.solve(&params).unwrap();
        assert!(matches!(
            r.status(),
            SolveStatus::Optimal | SolveStatus::Feasible | SolveStatus::LimitReached
        ));
    }

    #[test]
    fn unsatisfiable_constant_constraint_is_infeasible() {
        let mut m = Model::new();
        let _x = m.num_var("x", 0.0, 1.0);
        m.constraint(Model::expr().plus(1.0), Sense::Le, 0.0);
        let r = m.solve(&p()).unwrap();
        assert_eq!(r.status(), SolveStatus::Infeasible);
    }

    #[test]
    fn maximize_unbounded() {
        let mut m = Model::new();
        let x = m.num_var("x", 0.0, f64::INFINITY);
        m.maximize(Model::expr().term(1.0, x));
        let r = m.solve(&p()).unwrap();
        assert_eq!(r.status(), SolveStatus::Unbounded);
    }
}
