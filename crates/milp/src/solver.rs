//! Branch & bound over the simplex relaxation.
//!
//! The search runs on a shared pool of open nodes drained by
//! [`std::thread::scope`] workers (no external crates). The incumbent lives
//! behind a mutex, with the best objective mirrored into an [`AtomicU64`]
//! (as `f64` bits) so workers can prune against it without taking the lock.
//! Node identity breaks heap ties in a fixed order, so a single worker
//! reproduces the classic sequential best-bound search exactly, and any
//! worker count returns the same objective on a run to completion.

use std::collections::BinaryHeap;
use std::fmt;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use crate::cancel::CancelToken;
use crate::model::{Model, VarId, VarKind};
use crate::simplex::{self, Lp, LpOutcome, Row};
use crate::solution::{MipResult, Solution, SolveStatus};
use crate::stats::{IncumbentEvent, SolveStats};

/// Integer feasibility tolerance.
const INT_TOL: f64 = 1e-6;

/// Error raised by [`Model::solve`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveError {
    /// The simplex hit its cycling guard or produced out-of-tolerance
    /// residuals; the message carries the diagnostic.
    Numerical(String),
    /// The model has no constraints and no bounded objective direction.
    Malformed(String),
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::Numerical(m) => write!(f, "numerical failure in simplex: {m}"),
            SolveError::Malformed(m) => write!(f, "malformed model: {m}"),
        }
    }
}

impl std::error::Error for SolveError {}

/// Search limits and options for branch & bound.
#[derive(Debug, Clone)]
pub struct SolveParams {
    /// Wall-clock budget. The best incumbent found so far is returned when
    /// the budget expires.
    pub time_limit: Duration,
    /// Maximum number of branch & bound nodes to process (`0` processes only
    /// the root relaxation and any hint).
    pub node_limit: usize,
    /// Stop when the relative optimality gap falls below this value.
    pub rel_gap: f64,
    /// Stop when the absolute optimality gap falls below this value.
    pub abs_gap: f64,
    /// Try rounding the root LP solution into an incumbent.
    pub rounding_heuristic: bool,
    /// Worker threads for the branch & bound search. `0` uses the machine's
    /// available parallelism; `1` runs the classic sequential search. Any
    /// count returns the same objective on a run to completion.
    pub threads: usize,
    /// External cancellation token. The solver caps the token's deadline at
    /// `time_limit`, so whichever fires first stops the solve; an explicit
    /// [`CancelToken::cancel`] from any clone stops it too. The best
    /// incumbent found so far is still returned.
    pub cancel: Option<CancelToken>,
}

impl Default for SolveParams {
    fn default() -> SolveParams {
        SolveParams {
            time_limit: Duration::from_secs(600),
            node_limit: 2_000_000,
            rel_gap: 1e-6,
            abs_gap: 1e-9,
            rounding_heuristic: true,
            threads: 0,
            cancel: None,
        }
    }
}

impl SolveParams {
    /// A parameter set with the given time budget and otherwise defaults.
    #[must_use]
    pub fn with_time_limit(limit: Duration) -> SolveParams {
        SolveParams {
            time_limit: limit,
            ..SolveParams::default()
        }
    }

    /// The worker count after resolving `0` to the machine's available
    /// parallelism. Always at least 1.
    #[must_use]
    pub fn resolved_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        } else {
            self.threads
        }
    }
}

/// A branch decision: tighten one variable's bound.
#[derive(Debug, Clone, Copy)]
struct BranchBound {
    var: usize,
    lb: f64,
    ub: f64,
}

/// One link in a node's chain of branch decisions back to the root.
///
/// Paths are persistent (shared via [`Arc`]) so sibling subtrees reuse their
/// common prefix and workers reconstruct bounds without a shared arena.
struct PathLink {
    bc: BranchBound,
    parent: Option<Arc<PathLink>>,
}

/// Heap entry ordered so the *lowest* LP bound pops first (best-bound
/// search), with deeper nodes preferred on ties (plunging) and the oldest
/// node id breaking exact ties — the fixed order that makes the search
/// deterministic for a given worker count.
struct OpenNode {
    id: u64,
    lp_bound: f64,
    depth: usize,
    path: Option<Arc<PathLink>>,
}

impl PartialEq for OpenNode {
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id
    }
}
impl Eq for OpenNode {}
impl PartialOrd for OpenNode {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OpenNode {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap: invert the bound comparison.
        other
            .lp_bound
            .partial_cmp(&self.lp_bound)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(self.depth.cmp(&other.depth))
            .then(other.id.cmp(&self.id))
    }
}

/// Immutable data shared by the root phase and every search worker.
struct SearchCtx<'a> {
    base_rows: Vec<Row>,
    base_lb: Vec<f64>,
    base_ub: Vec<f64>,
    cost: Vec<f64>,
    int_vars: Vec<usize>,
    obj_constant: f64,
    sign: f64,
    params: &'a SolveParams,
    start: Instant,
    /// The caller's token (or a fresh one) with its deadline capped at
    /// `start + time_limit`; polled by workers and the simplex inner loop.
    stop_token: CancelToken,
}

impl SearchCtx<'_> {
    /// Solves the LP for the given bounds, accumulating iterations into
    /// `iters` and mapping numerical failures to [`SolveError`].
    fn lp(&self, lb: &[f64], ub: &[f64], iters: &mut usize) -> Result<LpOutcome, SolveError> {
        let (outcome, it) =
            presolved_lp(&self.base_rows, &self.cost, lb, ub, Some(&self.stop_token));
        *iters += it;
        if let LpOutcome::Numerical(msg) = &outcome {
            return Err(SolveError::Numerical(msg.clone()));
        }
        Ok(outcome)
    }
}

/// Locks a mutex, recovering from poison: a panicking worker (contained by
/// `catch_unwind`) may have left the lock poisoned, but every critical
/// section here keeps the guarded data structurally valid, so the search
/// can keep using it.
fn lock_clean<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The incumbent and its improvement history, guarded by one mutex.
struct IncState {
    /// `(values, min-sense objective)` of the best feasible point so far.
    best: Option<(Vec<f64>, f64)>,
    events: Vec<IncumbentEvent>,
}

/// Mutable search state shared across workers.
struct Search<'a> {
    ctx: &'a SearchCtx<'a>,
    heap: Mutex<BinaryHeap<OpenNode>>,
    /// Workers currently processing a node. The search is over only when the
    /// heap is empty *and* no worker might still push children.
    active: AtomicUsize,
    stop: AtomicBool,
    hit_limit: AtomicBool,
    error: Mutex<Option<SolveError>>,
    incumbent: Mutex<IncState>,
    /// `f64` bits of the incumbent objective (min sense), `INFINITY` when no
    /// incumbent exists; read lock-free on the pruning fast path.
    best_obj: AtomicU64,
    nodes_processed: AtomicUsize,
    nodes_pruned: AtomicUsize,
    simplex_iterations: AtomicUsize,
    /// Worker panics contained by `catch_unwind`; each one loses a subtree,
    /// so any panic downgrades an "optimal" claim to a limit-style status.
    worker_panics: AtomicUsize,
    next_id: AtomicU64,
}

impl Search<'_> {
    fn best_objective(&self) -> f64 {
        f64::from_bits(self.best_obj.load(Ordering::Relaxed))
    }

    /// The bound-vs-incumbent test that ends the search: within absolute or
    /// relative gap of `inc`.
    fn dominated(&self, bound: f64, inc: f64) -> bool {
        let p = self.ctx.params;
        inc.is_finite()
            && (bound >= inc - p.abs_gap || (inc - bound).abs() <= p.rel_gap * inc.abs().max(1.0))
    }

    fn offer_incumbent(&self, values: Vec<f64>, obj: f64) {
        let mut inc = lock_clean(&self.incumbent);
        if inc.best.as_ref().is_none_or(|(_, b)| obj < *b) {
            inc.best = Some((values, obj));
            self.best_obj.store(obj.to_bits(), Ordering::Relaxed);
            inc.events.push(IncumbentEvent {
                at: self.ctx.start.elapsed(),
                objective: self.ctx.sign * obj,
            });
            drop(inc);
            if columba_obs::enabled() {
                columba_obs::instant(
                    "bnb.incumbent",
                    vec![("objective", (self.ctx.sign * obj).into())],
                );
            }
        }
    }

    /// Close (and record) one `bnb.batch` span, annotating it with the
    /// sampled incumbent / best-bound pair — the gap trajectory the trace
    /// viewer plots. Only touches the heap lock when actually recording.
    fn finish_batch(&self, batch: &mut Option<columba_obs::SpanGuard>, nodes: usize) {
        let Some(mut guard) = batch.take() else {
            return;
        };
        if guard.is_recording() {
            guard.attr("nodes", nodes);
            guard.attr("incumbent", self.ctx.sign * self.best_objective());
            if let Some(top) = lock_clean(&self.heap).peek() {
                guard.attr("bound", self.ctx.sign * top.lp_bound);
            }
        }
    }

    /// Requeue a node we popped but could not finish (a limit fired), so the
    /// final dual bound still accounts for it, then stop the search.
    fn stop_at_limit(&self, open: OpenNode) {
        self.hit_limit.store(true, Ordering::Relaxed);
        self.stop.store(true, Ordering::Relaxed);
        lock_clean(&self.heap).push(open);
    }

    /// Worker loop: drain the pool until it is empty and no peer is active,
    /// a limit fires, or an error stops the search. Returns busy time.
    fn run_worker(&self) -> Duration {
        /// Nodes covered by one `bnb.batch` span: coarse enough that the
        /// trace stays small, fine enough to show where search time goes.
        const BATCH_NODES: usize = 32;
        let mut busy = Duration::ZERO;
        let mut batch: Option<columba_obs::SpanGuard> = None;
        let mut batch_nodes = 0usize;
        loop {
            if self.stop.load(Ordering::Relaxed) {
                break;
            }
            let popped = {
                let mut heap = lock_clean(&self.heap);
                // The heap is ordered by bound, so a dominated top proves
                // every remaining node dominated: optimality.
                let best = self.best_objective();
                if let Some(top) = heap.peek() {
                    if self.dominated(top.lp_bound, best) {
                        self.nodes_pruned.fetch_add(heap.len(), Ordering::Relaxed);
                        heap.clear();
                    }
                }
                if let Some(node) = heap.pop() {
                    self.active.fetch_add(1, Ordering::SeqCst);
                    Some(node)
                } else if self.active.load(Ordering::SeqCst) == 0 {
                    break;
                } else {
                    None
                }
            };
            let Some(node) = popped else {
                // peers are still expanding nodes that may yield children
                self.finish_batch(&mut batch, batch_nodes);
                batch_nodes = 0;
                std::thread::yield_now();
                continue;
            };
            if batch.is_none() && columba_obs::enabled() {
                batch = Some(columba_obs::span("bnb.batch"));
            }
            let t = Instant::now();
            // Contain panics at the node boundary: a crashed worker loses
            // that node's subtree (degrading the search to a limit-style
            // status) but never takes down the process or its peers.
            let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| self.process(node)));
            busy += t.elapsed();
            self.active.fetch_sub(1, Ordering::SeqCst);
            batch_nodes += 1;
            if batch_nodes >= BATCH_NODES {
                self.finish_batch(&mut batch, batch_nodes);
                batch_nodes = 0;
            }
            match outcome {
                Ok(Ok(())) => {}
                Ok(Err(e)) => {
                    let mut slot = lock_clean(&self.error);
                    slot.get_or_insert(e);
                    drop(slot);
                    self.stop.store(true, Ordering::Relaxed);
                    break;
                }
                Err(_) => {
                    self.worker_panics.fetch_add(1, Ordering::Relaxed);
                    // the lost subtree means optimality can no longer be
                    // proven — report Feasible/LimitReached, not Optimal
                    self.hit_limit.store(true, Ordering::Relaxed);
                }
            }
        }
        self.finish_batch(&mut batch, batch_nodes);
        busy
    }

    /// Process one node: check limits, prune, solve its LP, then branch or
    /// record an incumbent.
    fn process(&self, open: OpenNode) -> Result<(), SolveError> {
        let ctx = self.ctx;
        let p = ctx.params;
        // the token covers both the solver's own time limit (capped
        // deadline) and any external cancellation
        if ctx.stop_token.is_cancelled()
            || self.nodes_processed.load(Ordering::Relaxed) >= p.node_limit
        {
            self.stop_at_limit(open);
            return Ok(());
        }
        if self.dominated(open.lp_bound, self.best_objective()) {
            self.nodes_pruned.fetch_add(1, Ordering::Relaxed);
            return Ok(());
        }
        let node_index = self.nodes_processed.fetch_add(1, Ordering::Relaxed);
        #[cfg(not(feature = "fault-inject"))]
        let _ = node_index;
        #[cfg(feature = "fault-inject")]
        if let Some(fault) = crate::fault::armed_at(node_index) {
            match fault {
                crate::fault::Fault::SimplexNumerical => {
                    return Err(SolveError::Numerical(format!(
                        "injected fault at node {node_index}"
                    )));
                }
                crate::fault::Fault::WorkerPanic => {
                    std::panic::panic_any(crate::fault::InjectedPanic);
                }
                crate::fault::Fault::Timeout => {
                    self.stop_at_limit(open);
                    return Ok(());
                }
            }
        }

        // reconstruct bounds along the branch path
        let mut lb = ctx.base_lb.clone();
        let mut ub = ctx.base_ub.clone();
        let mut link = open.path.as_deref();
        while let Some(l) = link {
            lb[l.bc.var] = lb[l.bc.var].max(l.bc.lb);
            ub[l.bc.var] = ub[l.bc.var].min(l.bc.ub);
            link = l.parent.as_deref();
        }
        if lb.iter().zip(&ub).any(|(l, u)| l > u) {
            // conflicting branches
            self.nodes_pruned.fetch_add(1, Ordering::Relaxed);
            return Ok(());
        }

        let (outcome, iters) =
            presolved_lp(&ctx.base_rows, &ctx.cost, &lb, &ub, Some(&ctx.stop_token));
        self.simplex_iterations.fetch_add(iters, Ordering::Relaxed);
        let (x, obj) = match outcome {
            LpOutcome::Numerical(msg) => return Err(SolveError::Numerical(msg)),
            LpOutcome::TimedOut => {
                self.stop_at_limit(open);
                return Ok(());
            }
            LpOutcome::Optimal { x, obj } => (x, obj + ctx.obj_constant),
            // A child cannot be less bounded than the root in a sound model;
            // treat Unbounded as numerically suspect and prune.
            LpOutcome::Infeasible | LpOutcome::Unbounded => {
                self.nodes_pruned.fetch_add(1, Ordering::Relaxed);
                return Ok(());
            }
        };
        let best = self.best_objective();
        if best.is_finite() && obj >= best - p.abs_gap {
            self.nodes_pruned.fetch_add(1, Ordering::Relaxed);
            return Ok(());
        }
        match most_fractional(&x, &ctx.int_vars) {
            None => {
                // integral: candidate incumbent
                self.offer_incumbent(round_ints(x, &ctx.int_vars), obj);
            }
            Some(branch_var) => {
                let v = x[branch_var];
                let depth = open.depth + 1;
                let down = Arc::new(PathLink {
                    bc: BranchBound {
                        var: branch_var,
                        lb: f64::NEG_INFINITY,
                        ub: v.floor(),
                    },
                    parent: open.path.clone(),
                });
                let up = Arc::new(PathLink {
                    bc: BranchBound {
                        var: branch_var,
                        lb: v.ceil(),
                        ub: f64::INFINITY,
                    },
                    parent: open.path,
                });
                let base = self.next_id.fetch_add(2, Ordering::Relaxed);
                let mut heap = lock_clean(&self.heap);
                heap.push(OpenNode {
                    id: base,
                    lp_bound: obj,
                    depth,
                    path: Some(down),
                });
                heap.push(OpenNode {
                    id: base + 1,
                    lp_bound: obj,
                    depth,
                    path: Some(up),
                });
            }
        }
        Ok(())
    }
}

pub(crate) fn solve(
    model: &Model,
    params: &SolveParams,
    hint: Option<&[(VarId, f64)]>,
) -> Result<MipResult, SolveError> {
    let mut solve_span = columba_obs::span("milp.solve");
    let start = Instant::now();
    let sign = if model.maximize { -1.0 } else { 1.0 };
    let threads = params.resolved_threads();
    if solve_span.is_recording() {
        solve_span.attr("vars", model.vars.len());
        solve_span.attr("constraints", model.constraints.len());
        solve_span.attr("threads", threads);
    }

    let base_rows: Vec<Row> = model
        .constraints
        .iter()
        .map(|c| Row {
            terms: c.terms.iter().map(|&(v, coef)| (v.index(), coef)).collect(),
            sense: c.sense,
            rhs: c.rhs,
        })
        .collect();
    // Constant-only constraints that are unsatisfiable make the model
    // trivially infeasible; satisfied ones are dropped by the presolve.
    for r in &base_rows {
        if r.terms.is_empty() {
            let ok = match r.sense {
                crate::model::Sense::Le => 0.0 <= r.rhs + 1e-9,
                crate::model::Sense::Ge => 0.0 >= r.rhs - 1e-9,
                crate::model::Sense::Eq => r.rhs.abs() <= 1e-9,
            };
            if !ok {
                let stats = root_stats(threads, 0, Vec::new(), start);
                return Ok(finish(
                    SolveStatus::Infeasible,
                    None,
                    f64::NEG_INFINITY,
                    sign,
                    stats,
                ));
            }
        }
    }

    let solve_deadline = start + params.time_limit;
    let stop_token = params.cancel.as_ref().map_or_else(
        || CancelToken::with_deadline(solve_deadline),
        |t| t.capped(solve_deadline),
    );
    let ctx = SearchCtx {
        base_rows,
        base_lb: model.vars.iter().map(|v| v.lb).collect(),
        base_ub: model.vars.iter().map(|v| v.ub).collect(),
        cost: model.objective.clone(),
        int_vars: model
            .vars
            .iter()
            .enumerate()
            .filter(|(_, v)| v.kind != VarKind::Continuous)
            .map(|(i, _)| i)
            .collect(),
        obj_constant: model.obj_constant,
        sign,
        params,
        start,
        stop_token,
    };

    let mut root_span = columba_obs::span("milp.root");
    let mut root_iters = 0usize;
    let mut incumbent: Option<(Vec<f64>, f64)> = None; // (values, min-sense obj)
    let mut events: Vec<IncumbentEvent> = Vec::new();
    let offer_root =
        |incumbent: &mut Option<(Vec<f64>, f64)>, events: &mut Vec<IncumbentEvent>, x, obj| {
            if incumbent.as_ref().is_none_or(|(_, b)| obj < *b) {
                *incumbent = Some((x, obj));
                events.push(IncumbentEvent {
                    at: start.elapsed(),
                    objective: sign * obj,
                });
            }
        };

    // -- hint: fix integers, solve the remaining LP --
    if let Some(hint) = hint {
        let mut lb = ctx.base_lb.clone();
        let mut ub = ctx.base_ub.clone();
        let mut valid = true;
        for &(v, val) in hint {
            let i = v.index();
            let r = val.round();
            if r < ctx.base_lb[i] - 1e-9 || r > ctx.base_ub[i] + 1e-9 {
                valid = false;
                break;
            }
            lb[i] = r;
            ub[i] = r;
        }
        if valid {
            if let LpOutcome::Optimal { x, obj } = ctx.lp(&lb, &ub, &mut root_iters)? {
                offer_root(&mut incumbent, &mut events, x, obj + ctx.obj_constant);
            }
        }
    }

    // zero node budget + a hint-based incumbent: skip the root relaxation
    // entirely (scalable heuristic mode — the LP polish *is* the answer)
    if params.node_limit == 0 && incumbent.is_some() {
        let stats = root_stats(threads, root_iters, events, start);
        return Ok(finish(
            SolveStatus::Feasible,
            incumbent,
            f64::NEG_INFINITY,
            sign,
            stats,
        ));
    }

    // -- root relaxation --
    let root_outcome = ctx.lp(&ctx.base_lb, &ctx.base_ub, &mut root_iters)?;
    let (root_x, root_bound) = match root_outcome {
        LpOutcome::TimedOut => {
            let status = if incumbent.is_some() {
                SolveStatus::Feasible
            } else {
                SolveStatus::LimitReached
            };
            let stats = root_stats(threads, root_iters, events, start);
            return Ok(finish(status, incumbent, f64::NEG_INFINITY, sign, stats));
        }
        LpOutcome::Optimal { x, obj } => (x, obj + ctx.obj_constant),
        LpOutcome::Infeasible => {
            let status = if incumbent.is_some() {
                SolveStatus::Feasible
            } else {
                SolveStatus::Infeasible
            };
            let stats = root_stats(threads, root_iters, events, start);
            return Ok(finish(status, incumbent, f64::NEG_INFINITY, sign, stats));
        }
        LpOutcome::Unbounded => {
            // With an incumbent the model cannot be truly unbounded in the
            // integer sense we care about; report what we know.
            let status = if incumbent.is_some() {
                SolveStatus::Feasible
            } else {
                SolveStatus::Unbounded
            };
            let stats = root_stats(threads, root_iters, events, start);
            return Ok(finish(status, incumbent, f64::NEG_INFINITY, sign, stats));
        }
        LpOutcome::Numerical(_) => unreachable!("mapped to Err above"),
    };

    // integral root?
    if all_integral(&root_x, &ctx.int_vars) {
        offer_root(
            &mut incumbent,
            &mut events,
            round_ints(root_x, &ctx.int_vars),
            root_bound,
        );
        let stats = root_stats(threads, root_iters, events, start);
        return Ok(finish(
            SolveStatus::Optimal,
            incumbent,
            root_bound,
            sign,
            stats,
        ));
    }

    // -- rounding heuristic --
    if params.rounding_heuristic && incumbent.is_none() {
        let mut lb = ctx.base_lb.clone();
        let mut ub = ctx.base_ub.clone();
        for &i in &ctx.int_vars {
            let r = root_x[i].round().clamp(ctx.base_lb[i], ctx.base_ub[i]);
            lb[i] = r;
            ub[i] = r;
        }
        if let LpOutcome::Optimal { x, obj } = ctx.lp(&lb, &ub, &mut root_iters)? {
            offer_root(&mut incumbent, &mut events, x, obj + ctx.obj_constant);
        }
    }

    // -- branch & bound over the shared node pool --
    root_span.attr("iterations", root_iters);
    drop(root_span);
    let mut search_span = columba_obs::span("bnb.search");
    let root_time = start.elapsed();
    let mut heap = BinaryHeap::new();
    heap.push(OpenNode {
        id: 0,
        lp_bound: root_bound,
        depth: 0,
        path: None,
    });
    let best_bits = incumbent
        .as_ref()
        .map_or(f64::INFINITY, |(_, b)| *b)
        .to_bits();
    let search = Search {
        ctx: &ctx,
        heap: Mutex::new(heap),
        active: AtomicUsize::new(0),
        stop: AtomicBool::new(false),
        hit_limit: AtomicBool::new(false),
        error: Mutex::new(None),
        incumbent: Mutex::new(IncState {
            best: incumbent,
            events,
        }),
        best_obj: AtomicU64::new(best_bits),
        nodes_processed: AtomicUsize::new(0),
        nodes_pruned: AtomicUsize::new(0),
        simplex_iterations: AtomicUsize::new(0),
        worker_panics: AtomicUsize::new(0),
        next_id: AtomicU64::new(1),
    };

    let worker_busy: Vec<Duration> = if threads == 1 {
        vec![search.run_worker()]
    } else {
        // Hand the observability context across the scope boundary so each
        // worker's batch spans nest under this thread's `bnb.search` span.
        let obs_ctx = columba_obs::SpanContext::current();
        std::thread::scope(|s| {
            let search = &search;
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    let obs_ctx = obs_ctx.clone();
                    s.spawn(move || {
                        let _obs = obs_ctx.as_ref().map(columba_obs::SpanContext::attach);
                        search.run_worker()
                    })
                })
                .collect();
            // panics inside `process` are already contained; a join error
            // here would mean the loop glue itself panicked — degrade to a
            // zero busy-time reading rather than poisoning the caller
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or(Duration::ZERO))
                .collect()
        })
    };

    if let Some(e) = search
        .error
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner)
    {
        return Err(e);
    }
    let hit_limit = search.hit_limit.load(Ordering::Relaxed);
    let heap = search
        .heap
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner);
    let IncState {
        best: incumbent,
        events,
    } = search
        .incumbent
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner);

    let status = match (&incumbent, hit_limit) {
        (Some(_), false) => SolveStatus::Optimal,
        (Some(_), true) => SolveStatus::Feasible,
        (None, true) => SolveStatus::LimitReached,
        (None, false) => SolveStatus::Infeasible,
    };
    let bound = if hit_limit {
        // the heap still holds every unfinished node (workers requeue on a
        // limit), so its top is the best proven dual bound
        heap.peek().map_or(root_bound, |n| n.lp_bound)
    } else {
        incumbent.as_ref().map_or(root_bound, |(_, inc)| *inc)
    };

    let total_time = start.elapsed();
    if search_span.is_recording() {
        search_span.attr("nodes", search.nodes_processed.load(Ordering::Relaxed));
        search_span.attr("pruned", search.nodes_pruned.load(Ordering::Relaxed));
    }
    drop(search_span);
    if solve_span.is_recording() {
        solve_span.attr(
            "status",
            match status {
                SolveStatus::Optimal => "optimal",
                SolveStatus::Feasible => "feasible",
                SolveStatus::Infeasible => "infeasible",
                SolveStatus::Unbounded => "unbounded",
                SolveStatus::LimitReached => "limit",
            },
        );
    }
    let stats = SolveStats {
        threads,
        nodes_processed: search.nodes_processed.into_inner(),
        nodes_pruned: search.nodes_pruned.into_inner(),
        simplex_iterations: root_iters + search.simplex_iterations.into_inner(),
        worker_panics: search.worker_panics.into_inner(),
        root_time,
        search_time: total_time - root_time,
        total_time,
        incumbents: events,
        worker_busy,
    };
    Ok(finish(status, incumbent, bound, sign, stats))
}

/// Stats for a solve that ended during the root phase (no search workers).
fn root_stats(
    threads: usize,
    simplex_iterations: usize,
    incumbents: Vec<IncumbentEvent>,
    start: Instant,
) -> SolveStats {
    let elapsed = start.elapsed();
    SolveStats {
        threads,
        simplex_iterations,
        root_time: elapsed,
        total_time: elapsed,
        incumbents,
        ..SolveStats::default()
    }
}

fn finish(
    status: SolveStatus,
    incumbent: Option<(Vec<f64>, f64)>,
    bound: f64,
    sign: f64,
    stats: SolveStats,
) -> MipResult {
    MipResult {
        status,
        solution: incumbent.map(|(values, obj)| Solution {
            values,
            objective: sign * obj,
        }),
        best_bound: sign * bound,
        stats,
    }
}

/// Builds and solves the LP for one node's bounds, with a presolve that:
///
/// 1. substitutes fixed variables (`lb == ub`) into every row,
/// 2. drops rows made redundant by the variable bounds — in particular the
///    big-M disjunction rows whose indicator has been fixed to 1, which is
///    what makes warm-started and deep-node LPs small,
/// 3. detects bound-infeasible rows without calling the simplex,
/// 4. compresses away columns that no remaining row or objective term uses.
///
/// Returns the outcome in the *full* variable space.
fn presolved_lp(
    base_rows: &[Row],
    cost: &[f64],
    lb: &[f64],
    ub: &[f64],
    cancel: Option<&CancelToken>,
) -> (LpOutcome, usize) {
    let n = lb.len();
    let fixed = |j: usize| ub[j] - lb[j] <= 0.0;
    let mut kept_rows: Vec<Row> = Vec::with_capacity(base_rows.len());
    let mut used = vec![false; n];

    for row in base_rows {
        let mut terms: Vec<(usize, f64)> = Vec::with_capacity(row.terms.len());
        let mut rhs = row.rhs;
        for &(j, c) in &row.terms {
            if fixed(j) {
                rhs -= c * lb[j];
            } else {
                terms.push((j, c));
            }
        }
        // activity bounds over the remaining terms
        let (mut min_act, mut max_act) = (0.0f64, 0.0f64);
        for &(j, c) in &terms {
            if c > 0.0 {
                min_act += c * lb[j];
                max_act += c * ub[j];
            } else {
                min_act += c * ub[j];
                max_act += c * lb[j];
            }
        }
        let tol = 1e-7 * (1.0 + rhs.abs());
        let (redundant, infeasible) = match row.sense {
            crate::model::Sense::Le => (max_act <= rhs + tol, min_act > rhs + tol),
            crate::model::Sense::Ge => (min_act >= rhs - tol, max_act < rhs - tol),
            crate::model::Sense::Eq => (
                (max_act - rhs).abs() <= tol && (min_act - rhs).abs() <= tol,
                min_act > rhs + tol || max_act < rhs - tol,
            ),
        };
        if infeasible {
            return (LpOutcome::Infeasible, 0);
        }
        if redundant {
            continue;
        }
        for &(j, _) in &terms {
            used[j] = true;
        }
        kept_rows.push(Row {
            terms,
            sense: row.sense,
            rhs,
        });
    }
    // objective terms over unfixed variables must survive compression
    for (j, &c) in cost.iter().enumerate() {
        if c != 0.0 && !fixed(j) {
            used[j] = true;
        }
    }

    // column compression
    let keep: Vec<usize> = (0..n).filter(|&j| used[j]).collect();
    let mut pos = vec![usize::MAX; n];
    for (new, &old) in keep.iter().enumerate() {
        pos[old] = new;
    }
    let small = Lp {
        lb: keep.iter().map(|&j| lb[j]).collect(),
        ub: keep.iter().map(|&j| ub[j]).collect(),
        cost: keep.iter().map(|&j| cost[j]).collect(),
        rows: kept_rows
            .into_iter()
            .map(|r| Row {
                terms: r.terms.into_iter().map(|(j, c)| (pos[j], c)).collect(),
                sense: r.sense,
                rhs: r.rhs,
            })
            .collect(),
    };
    let fixed_cost: f64 = (0..n).filter(|&j| fixed(j)).map(|j| cost[j] * lb[j]).sum();

    let (outcome, iters) = simplex::solve_lp(&small, cancel);
    let outcome = match outcome {
        LpOutcome::Optimal { x, obj } => {
            // expand to the full space: fixed -> value, unused -> lb
            let mut full = vec![0.0; n];
            for j in 0..n {
                full[j] = if fixed(j) {
                    lb[j]
                } else if pos[j] != usize::MAX {
                    x[pos[j]]
                } else {
                    lb[j]
                };
            }
            LpOutcome::Optimal {
                x: full,
                obj: obj + fixed_cost,
            }
        }
        other => other,
    };
    (outcome, iters)
}

fn all_integral(x: &[f64], int_vars: &[usize]) -> bool {
    int_vars
        .iter()
        .all(|&i| (x[i] - x[i].round()).abs() <= INT_TOL)
}

fn round_ints(mut x: Vec<f64>, int_vars: &[usize]) -> Vec<f64> {
    for &i in int_vars {
        x[i] = x[i].round();
    }
    x
}

/// The integer variable whose LP value is farthest from integral, if any.
fn most_fractional(x: &[f64], int_vars: &[usize]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for &i in int_vars {
        let frac = (x[i] - x[i].round()).abs();
        if frac > INT_TOL {
            let score = 0.5 - (x[i] - x[i].floor() - 0.5).abs();
            if best.is_none_or(|(_, s)| score > s) {
                best = Some((i, score));
            }
        }
    }
    best.map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Sense;
    use crate::Model;

    fn p() -> SolveParams {
        SolveParams::default()
    }

    #[test]
    fn pure_lp_optimal() {
        let mut m = Model::new();
        let x = m.num_var("x", 0.0, 10.0);
        let y = m.num_var("y", 0.0, 10.0);
        m.constraint(Model::expr().term(1.0, x).term(1.0, y), Sense::Le, 6.0);
        m.maximize(Model::expr().term(3.0, x).term(5.0, y));
        let r = m.solve(&p()).unwrap();
        assert_eq!(r.status(), SolveStatus::Optimal);
        assert!((r.solution().unwrap().objective() - 30.0).abs() < 1e-6);
    }

    #[test]
    fn knapsack_small() {
        // max 10a + 13b + 7c, 3a + 4b + 2c <= 6, binary
        let mut m = Model::new();
        let a = m.bin_var("a");
        let b = m.bin_var("b");
        let c = m.bin_var("c");
        m.constraint(
            Model::expr().term(3.0, a).term(4.0, b).term(2.0, c),
            Sense::Le,
            6.0,
        );
        m.maximize(Model::expr().term(10.0, a).term(13.0, b).term(7.0, c));
        let r = m.solve(&p()).unwrap();
        assert_eq!(r.status(), SolveStatus::Optimal);
        let sol = r.solution().unwrap();
        // best is b + c = 20
        assert!((sol.objective() - 20.0).abs() < 1e-6, "{}", sol.objective());
        assert!(sol.value(b) > 0.5 && sol.value(c) > 0.5 && sol.value(a) < 0.5);
    }

    #[test]
    fn integer_rounding_not_enough() {
        // LP optimum fractional; IP optimum differs from naive rounding
        // max x + y s.t. 2x + 2y <= 5, x,y int -> LP gives 2.5 total, IP 2
        let mut m = Model::new();
        let x = m.int_var("x", 0.0, 10.0);
        let y = m.int_var("y", 0.0, 10.0);
        m.constraint(Model::expr().term(2.0, x).term(2.0, y), Sense::Le, 5.0);
        m.maximize(Model::expr().term(1.0, x).term(1.0, y));
        let r = m.solve(&p()).unwrap();
        assert_eq!(r.status(), SolveStatus::Optimal);
        assert!((r.solution().unwrap().objective() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn infeasible_binary_model() {
        let mut m = Model::new();
        let a = m.bin_var("a");
        let b = m.bin_var("b");
        m.constraint(Model::expr().term(1.0, a).term(1.0, b), Sense::Ge, 3.0);
        m.minimize(Model::expr().term(1.0, a));
        let r = m.solve(&p()).unwrap();
        assert_eq!(r.status(), SolveStatus::Infeasible);
        assert!(r.solution().is_none());
    }

    #[test]
    fn equality_with_integers() {
        // x + y = 7, x - y = 1 over integers
        let mut m = Model::new();
        let x = m.int_var("x", 0.0, 100.0);
        let y = m.int_var("y", 0.0, 100.0);
        m.constraint(Model::expr().term(1.0, x).term(1.0, y), Sense::Eq, 7.0);
        m.constraint(Model::expr().term(1.0, x).term(-1.0, y), Sense::Eq, 1.0);
        m.minimize(Model::expr().term(1.0, x));
        let r = m.solve(&p()).unwrap();
        let sol = r.solution().unwrap();
        assert!((sol.value(x) - 4.0).abs() < 1e-6);
        assert!((sol.value(y) - 3.0).abs() < 1e-6);
    }

    #[test]
    fn hint_seeds_incumbent_under_zero_node_budget() {
        // fractional root LP (b=1, a=0.5) so the zero node budget matters
        let mut m = Model::new();
        let a = m.bin_var("a");
        let b = m.bin_var("b");
        m.constraint(Model::expr().term(2.0, a).term(2.0, b), Sense::Le, 3.0);
        m.maximize(Model::expr().term(2.0, a).term(3.0, b));
        let params = SolveParams {
            node_limit: 0,
            rounding_heuristic: false,
            ..p()
        };
        let r = m.solve_with_hint(&params, &[(a, 1.0), (b, 0.0)]).unwrap();
        // hint gives objective 2 even though the optimum is 3
        assert!(r.status().has_solution());
        assert!((r.solution().unwrap().objective() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn infeasible_hint_is_ignored() {
        let mut m = Model::new();
        let a = m.bin_var("a");
        m.constraint(Model::expr().term(1.0, a), Sense::Eq, 1.0);
        m.minimize(Model::expr().term(1.0, a));
        let r = m.solve_with_hint(&p(), &[(a, 0.0)]).unwrap();
        assert_eq!(r.status(), SolveStatus::Optimal);
        assert!((r.solution().unwrap().value(a) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn big_m_disjunction() {
        // two unit squares must not overlap in 1D: |x1 - x2| >= 1
        // min x1 + x2 with x2 >= 0.2 forced ordering via binaries
        let mut m = Model::new();
        let x1 = m.num_var("x1", 0.0, 10.0);
        let x2 = m.num_var("x2", 0.0, 10.0);
        let q1 = m.bin_var("q1");
        let q2 = m.bin_var("q2");
        let big = 100.0;
        // x1 + 1 <= x2 + q1*M ; x2 + 1 <= x1 + q2*M ; q1 + q2 = 1
        m.constraint(
            Model::expr().term(1.0, x1).term(-1.0, x2).term(-big, q1),
            Sense::Le,
            -1.0,
        );
        m.constraint(
            Model::expr().term(1.0, x2).term(-1.0, x1).term(-big, q2),
            Sense::Le,
            -1.0,
        );
        m.constraint(Model::expr().term(1.0, q1).term(1.0, q2), Sense::Eq, 1.0);
        m.minimize(Model::expr().term(1.0, x1).term(2.0, x2));
        let r = m.solve(&p()).unwrap();
        let sol = r.solution().unwrap();
        let (v1, v2) = (sol.value(x1), sol.value(x2));
        assert!((v1 - v2).abs() >= 1.0 - 1e-6, "x1={v1} x2={v2}");
        // optimal keeps x2 at 0 and pushes x1 to 1: objective 1
        assert!((sol.objective() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn node_limit_reports_feasible_or_limit() {
        let mut m = Model::new();
        let vars: Vec<_> = (0..12).map(|i| m.bin_var(format!("b{i}"))).collect();
        let mut e = Model::expr();
        for (i, &v) in vars.iter().enumerate() {
            e = e.term(1.0 + (i as f64) * 0.37, v);
        }
        m.constraint(e.clone(), Sense::Le, 11.0);
        m.maximize(e);
        let params = SolveParams {
            node_limit: 1,
            ..p()
        };
        let r = m.solve(&params).unwrap();
        assert!(matches!(
            r.status(),
            SolveStatus::Optimal | SolveStatus::Feasible | SolveStatus::LimitReached
        ));
    }

    #[test]
    fn unsatisfiable_constant_constraint_is_infeasible() {
        let mut m = Model::new();
        let _x = m.num_var("x", 0.0, 1.0);
        m.constraint(Model::expr().plus(1.0), Sense::Le, 0.0);
        let r = m.solve(&p()).unwrap();
        assert_eq!(r.status(), SolveStatus::Infeasible);
    }

    #[test]
    fn maximize_unbounded() {
        let mut m = Model::new();
        let x = m.num_var("x", 0.0, f64::INFINITY);
        m.maximize(Model::expr().term(1.0, x));
        let r = m.solve(&p()).unwrap();
        assert_eq!(r.status(), SolveStatus::Unbounded);
    }

    // -- simplex edge cases through the solver stack --

    #[test]
    fn infeasible_lp_detected_by_simplex() {
        // bound propagation cannot see this conflict (activity bounds span
        // the rhs on both rows), so phase-1 simplex must prove it
        let mut m = Model::new();
        let x = m.num_var("x", 0.0, 10.0);
        let y = m.num_var("y", 0.0, 10.0);
        m.constraint(Model::expr().term(1.0, x).term(1.0, y), Sense::Le, 1.0);
        m.constraint(Model::expr().term(1.0, x).term(1.0, y), Sense::Ge, 2.0);
        m.minimize(Model::expr().term(1.0, x));
        let r = m.solve(&p()).unwrap();
        assert_eq!(r.status(), SolveStatus::Infeasible);
        assert!(r.solution().is_none());
    }

    #[test]
    fn unbounded_lp_with_constraints() {
        // feasible region is an unbounded strip around the diagonal
        let mut m = Model::new();
        let x = m.num_var("x", 0.0, f64::INFINITY);
        let y = m.num_var("y", 0.0, f64::INFINITY);
        m.constraint(Model::expr().term(1.0, x).term(-1.0, y), Sense::Le, 1.0);
        m.constraint(Model::expr().term(-1.0, x).term(1.0, y), Sense::Le, 1.0);
        m.maximize(Model::expr().term(1.0, x).term(1.0, y));
        let r = m.solve(&p()).unwrap();
        assert_eq!(r.status(), SolveStatus::Unbounded);
    }

    #[test]
    fn degenerate_lp_with_redundant_constraints() {
        // many bases are optimal (duplicated and implied rows); the simplex
        // must terminate despite degenerate pivots and report the optimum
        let mut m = Model::new();
        let x = m.num_var("x", 0.0, 10.0);
        let y = m.num_var("y", 0.0, 10.0);
        for _ in 0..4 {
            m.constraint(Model::expr().term(1.0, x).term(1.0, y), Sense::Ge, 2.0);
        }
        m.constraint(Model::expr().term(2.0, x).term(2.0, y), Sense::Ge, 4.0);
        m.constraint(Model::expr().term(1.0, x), Sense::Ge, 0.0);
        m.minimize(Model::expr().term(1.0, x).term(1.0, y));
        let r = m.solve(&p()).unwrap();
        assert_eq!(r.status(), SolveStatus::Optimal);
        assert!((r.solution().unwrap().objective() - 2.0).abs() < 1e-6);
    }

    // -- parallel search --

    /// A knapsack family with enough branching to exercise the pool.
    fn branching_model(n: usize) -> Model {
        let mut m = Model::new();
        let vars: Vec<_> = (0..n).map(|i| m.bin_var(format!("b{i}"))).collect();
        let mut weight = Model::expr();
        let mut value = Model::expr();
        for (i, &v) in vars.iter().enumerate() {
            weight = weight.term(2.0 + ((i * 7) % 5) as f64, v);
            value = value.term(3.0 + ((i * 11) % 7) as f64, v);
        }
        // the 0.5 offset keeps the root LP fractional (weights are integral)
        m.constraint(weight, Sense::Le, (2 * n) as f64 * 0.6 + 0.5);
        m.maximize(value);
        m
    }

    #[test]
    fn parallel_matches_sequential_objective() {
        for n in [6, 9, 12] {
            let seq = branching_model(n)
                .solve(&SolveParams { threads: 1, ..p() })
                .unwrap();
            let par = branching_model(n)
                .solve(&SolveParams { threads: 4, ..p() })
                .unwrap();
            assert_eq!(seq.status(), SolveStatus::Optimal, "n={n}");
            assert_eq!(par.status(), SolveStatus::Optimal, "n={n}");
            let (a, b) = (
                seq.solution().unwrap().objective(),
                par.solution().unwrap().objective(),
            );
            assert!(
                (a - b).abs() < 1e-6,
                "n={n}: sequential {a} vs parallel {b}"
            );
        }
    }

    #[test]
    fn stats_track_search_work() {
        let r = branching_model(10)
            .solve(&SolveParams { threads: 2, ..p() })
            .unwrap();
        let s = r.stats();
        assert_eq!(s.threads, 2);
        assert_eq!(s.worker_busy.len(), 2);
        assert!(s.nodes_processed > 0, "{s:?}");
        assert_eq!(s.nodes_processed, r.nodes());
        assert!(s.simplex_iterations > 0, "{s:?}");
        assert!(s.total_time >= s.root_time, "{s:?}");
        assert!(
            !s.incumbents.is_empty(),
            "optimal solve must record an incumbent"
        );
        // the last trajectory point is the returned objective
        let last = s.incumbents.last().unwrap().objective;
        assert!((last - r.solution().unwrap().objective()).abs() < 1e-9);
        // improvements are monotone for a maximisation model
        for w in s.incumbents.windows(2) {
            assert!(w[1].objective >= w[0].objective, "{:?}", s.incumbents);
        }
    }

    #[test]
    fn resolved_threads_is_positive() {
        assert!(p().resolved_threads() >= 1);
        assert_eq!(SolveParams { threads: 3, ..p() }.resolved_threads(), 3);
    }

    // -- cooperative cancellation --

    #[test]
    fn pre_cancelled_token_aborts_without_search() {
        let token = CancelToken::new();
        token.cancel();
        let params = SolveParams {
            time_limit: Duration::from_secs(3600),
            cancel: Some(token),
            ..p()
        };
        let start = Instant::now();
        let r = branching_model(12).solve(&params).unwrap();
        assert_eq!(r.status(), SolveStatus::LimitReached);
        assert_eq!(r.nodes(), 0, "no node may be expanded after cancellation");
        assert!(
            start.elapsed() < Duration::from_secs(60),
            "cancelled solve must return promptly, took {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn watcher_thread_cancellation_stops_a_long_solve() {
        let token = CancelToken::new();
        let watcher = token.clone();
        let params = SolveParams {
            time_limit: Duration::from_secs(3600),
            threads: 2,
            cancel: Some(token),
            ..p()
        };
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            watcher.cancel();
        });
        let start = Instant::now();
        let r = branching_model(20).solve(&params).unwrap();
        handle.join().expect("watcher thread");
        assert!(
            start.elapsed() < Duration::from_secs(120),
            "cancellation must beat the 1h time limit, took {:?}",
            start.elapsed()
        );
        // whatever progress was made is reported faithfully
        assert!(matches!(
            r.status(),
            SolveStatus::Optimal | SolveStatus::Feasible | SolveStatus::LimitReached
        ));
    }

    #[test]
    fn spans_nest_across_search_workers() {
        let rec = columba_obs::SpanRecorder::new(8192);
        columba_obs::set_enabled(true);
        let guard = rec.install();
        let r = branching_model(12)
            .solve(&SolveParams { threads: 2, ..p() })
            .unwrap();
        drop(guard);
        columba_obs::set_enabled(false);
        assert_eq!(r.status(), SolveStatus::Optimal);

        let events = rec.finished();
        let find = |name: &str| events.iter().find(|e| e.name == name);
        let solve = find("milp.solve").expect("milp.solve span");
        let root = find("milp.root").expect("milp.root span");
        let search = find("bnb.search").expect("bnb.search span");
        assert_eq!(root.parent, Some(solve.id));
        assert_eq!(search.parent, Some(solve.id));
        assert!(find("simplex.phase1").is_some());
        assert!(find("simplex.phase2").is_some());
        // every batch span a worker recorded hangs off the search span,
        // even though the workers ran on scope threads
        let batches: Vec<_> = events.iter().filter(|e| e.name == "bnb.batch").collect();
        assert!(!batches.is_empty(), "search must record node batches");
        for b in &batches {
            assert_eq!(b.parent, Some(search.id));
        }
        // the root LP's phase spans nest under milp.root
        assert!(events
            .iter()
            .any(|e| e.name == "simplex.phase1" && e.parent == Some(root.id)));
    }

    #[test]
    fn token_deadline_is_capped_by_time_limit() {
        // the token's far deadline must not extend the solver's own budget:
        // with a zero time limit the capped deadline has already passed
        let token = CancelToken::with_timeout(Duration::from_secs(3600));
        let params = SolveParams {
            time_limit: Duration::ZERO,
            threads: 1,
            cancel: Some(token),
            ..p()
        };
        let r = branching_model(20).solve(&params).unwrap();
        assert_eq!(r.status(), SolveStatus::LimitReached);
        assert_eq!(r.nodes(), 0);
    }
}
