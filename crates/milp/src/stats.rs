//! Solver telemetry.
//!
//! [`SolveStats`] captures everything the branch & bound observed about a
//! solve: work counters (nodes, prunes, simplex iterations), the incumbent
//! trajectory, per-phase wall time and per-worker busy time. The layout
//! crates thread it through to the `columba-s` flow and the bench binaries
//! print it, so a regression in solver behaviour shows up as numbers, not
//! vibes.

use std::fmt;
use std::time::Duration;

/// One improvement of the incumbent during the search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IncumbentEvent {
    /// Wall-clock offset from the start of the solve.
    pub at: Duration,
    /// Objective in the user's sense (negated back for maximisation).
    pub objective: f64,
}

/// Telemetry from one MILP solve.
#[derive(Debug, Clone, Default)]
pub struct SolveStats {
    /// Worker threads used by the branch & bound phase.
    pub threads: usize,
    /// Branch & bound nodes taken from the open pool and expanded.
    pub nodes_processed: usize,
    /// Nodes discarded without branching: dominated by the incumbent,
    /// bound-infeasible, or LP-infeasible.
    pub nodes_pruned: usize,
    /// Total simplex iterations across every LP solved (root, heuristics
    /// and search).
    pub simplex_iterations: usize,
    /// Worker panics contained at the node boundary. Each one loses that
    /// node's subtree, so a nonzero count degrades an otherwise-complete
    /// search to a limit-style status.
    pub worker_panics: usize,
    /// Wall time of the root phase: presolve, hint polish, root relaxation
    /// and the rounding heuristic.
    pub root_time: Duration,
    /// Wall time of the branch & bound phase.
    pub search_time: Duration,
    /// Total wall time of the solve.
    pub total_time: Duration,
    /// Every incumbent improvement, in discovery order (root-phase
    /// incumbents from hints or rounding appear first).
    pub incumbents: Vec<IncumbentEvent>,
    /// Busy time per worker during the search phase; utilization is
    /// `busy / search_time` per worker.
    pub worker_busy: Vec<Duration>,
}

impl SolveStats {
    /// Mean worker utilization during the search phase in `[0, 1]`:
    /// total busy time divided by `workers x search wall time`. `None`
    /// when no search phase ran.
    #[must_use]
    pub fn utilization(&self) -> Option<f64> {
        if self.worker_busy.is_empty() || self.search_time.is_zero() {
            return None;
        }
        let busy: f64 = self.worker_busy.iter().map(Duration::as_secs_f64).sum();
        Some((busy / (self.worker_busy.len() as f64 * self.search_time.as_secs_f64())).min(1.0))
    }

    /// Folds another solve's telemetry into this one: work counters,
    /// contained panics and phase times add up, `threads` keeps the
    /// maximum. Used to aggregate telemetry *across* solves (the
    /// resilience ladder's rungs, or a synthesis service's lifetime
    /// counters), so the per-solve vectors — incumbent trajectory and
    /// per-worker busy time — are left untouched: they do not compose
    /// across independent searches.
    pub fn absorb(&mut self, other: &SolveStats) {
        self.threads = self.threads.max(other.threads);
        self.nodes_processed += other.nodes_processed;
        self.nodes_pruned += other.nodes_pruned;
        self.simplex_iterations += other.simplex_iterations;
        self.worker_panics += other.worker_panics;
        self.root_time += other.root_time;
        self.search_time += other.search_time;
        self.total_time += other.total_time;
    }

    /// The objective trajectory as `(seconds, objective)` pairs.
    #[must_use]
    pub fn trajectory(&self) -> Vec<(f64, f64)> {
        self.incumbents
            .iter()
            .map(|e| (e.at.as_secs_f64(), e.objective))
            .collect()
    }
}

impl fmt::Display for SolveStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} nodes ({} pruned), {} simplex iterations, root {:.3}s + search {:.3}s = {:.3}s on {} thread{}",
            self.nodes_processed,
            self.nodes_pruned,
            self.simplex_iterations,
            self.root_time.as_secs_f64(),
            self.search_time.as_secs_f64(),
            self.total_time.as_secs_f64(),
            self.threads,
            if self.threads == 1 { "" } else { "s" },
        )?;
        if let Some(u) = self.utilization() {
            write!(f, ", {:.0}% busy", u * 100.0)?;
        }
        if self.worker_panics > 0 {
            write!(
                f,
                ", {} worker panic{} contained",
                self.worker_panics,
                if self.worker_panics == 1 { "" } else { "s" },
            )?;
        }
        if let Some(last) = self.incumbents.last() {
            write!(
                f,
                "; {} incumbent{} (best {:.4} at {:.3}s)",
                self.incumbents.len(),
                if self.incumbents.len() == 1 { "" } else { "s" },
                last.objective,
                last.at.as_secs_f64(),
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_bounds() {
        let mut s = SolveStats::default();
        assert_eq!(s.utilization(), None, "no search phase");
        s.search_time = Duration::from_secs(2);
        s.worker_busy = vec![Duration::from_secs(1), Duration::from_secs(2)];
        let u = s.utilization().unwrap();
        assert!((u - 0.75).abs() < 1e-9, "{u}");
        // over-report clamps to 1
        s.worker_busy = vec![Duration::from_secs(5)];
        assert_eq!(s.utilization(), Some(1.0));
    }

    #[test]
    fn display_mentions_counters() {
        let s = SolveStats {
            threads: 2,
            nodes_processed: 10,
            nodes_pruned: 3,
            simplex_iterations: 99,
            search_time: Duration::from_millis(500),
            total_time: Duration::from_millis(600),
            incumbents: vec![IncumbentEvent {
                at: Duration::from_millis(40),
                objective: 7.5,
            }],
            worker_busy: vec![Duration::from_millis(400); 2],
            ..SolveStats::default()
        };
        let text = s.to_string();
        assert!(text.contains("10 nodes"), "{text}");
        assert!(text.contains("3 pruned"), "{text}");
        assert!(text.contains("99 simplex"), "{text}");
        assert!(text.contains("2 threads"), "{text}");
        assert!(text.contains("7.5"), "{text}");
    }

    #[test]
    fn absorb_sums_counters_and_keeps_max_threads() {
        let mut a = SolveStats {
            threads: 2,
            nodes_processed: 10,
            nodes_pruned: 3,
            simplex_iterations: 100,
            worker_panics: 1,
            root_time: Duration::from_millis(10),
            search_time: Duration::from_millis(20),
            total_time: Duration::from_millis(30),
            incumbents: vec![IncumbentEvent {
                at: Duration::from_millis(5),
                objective: 1.0,
            }],
            worker_busy: vec![Duration::from_millis(15); 2],
        };
        let b = SolveStats {
            threads: 4,
            nodes_processed: 5,
            nodes_pruned: 2,
            simplex_iterations: 50,
            worker_panics: 0,
            root_time: Duration::from_millis(1),
            search_time: Duration::from_millis(2),
            total_time: Duration::from_millis(3),
            ..SolveStats::default()
        };
        a.absorb(&b);
        assert_eq!(a.threads, 4);
        assert_eq!(a.nodes_processed, 15);
        assert_eq!(a.nodes_pruned, 5);
        assert_eq!(a.simplex_iterations, 150);
        assert_eq!(a.worker_panics, 1);
        assert_eq!(a.root_time, Duration::from_millis(11));
        assert_eq!(a.search_time, Duration::from_millis(22));
        assert_eq!(a.total_time, Duration::from_millis(33));
        // per-solve vectors do not compose and must survive untouched
        assert_eq!(a.incumbents.len(), 1);
        assert_eq!(a.worker_busy.len(), 2);
    }

    #[test]
    fn trajectory_converts_units() {
        let s = SolveStats {
            incumbents: vec![
                IncumbentEvent {
                    at: Duration::from_millis(250),
                    objective: 4.0,
                },
                IncumbentEvent {
                    at: Duration::from_millis(750),
                    objective: 2.0,
                },
            ],
            ..SolveStats::default()
        };
        assert_eq!(s.trajectory(), vec![(0.25, 4.0), (0.75, 2.0)]);
    }
}
