//! A mixed-integer linear programming (MILP) solver.
//!
//! The Columba papers solve their physical-synthesis models with Gurobi; no
//! equivalent is available as an offline Rust crate, so this crate implements
//! the full solver stack from scratch:
//!
//! * a [`Model`] builder with continuous, integer and binary variables,
//!   linear constraints and a linear objective;
//! * a bounded-variable two-phase primal simplex for the LP relaxations
//!   (Bland's-rule anti-cycling fallback, periodic refactorisation);
//! * branch & bound with best-bound node selection, most-fractional
//!   branching, warm-start incumbents and time/node limits;
//! * big-M style disjunctive constraints (the "exactly one relative
//!   position" pattern that dominates the layout models) expressed through
//!   ordinary binaries.
//!
//! # Examples
//!
//! ```
//! use columba_milp::{Model, Sense, SolveParams};
//!
//! // maximize x + 2y  s.t.  x + y <= 4, x <= 3, y <= 2, x,y >= 0 integer
//! let mut m = Model::new();
//! let x = m.int_var("x", 0.0, 3.0);
//! let y = m.int_var("y", 0.0, 2.0);
//! m.constraint(Model::expr().term(1.0, x).term(1.0, y), Sense::Le, 4.0);
//! m.maximize(Model::expr().term(1.0, x).term(2.0, y));
//! let result = m.solve(&SolveParams::default())?;
//! let sol = result.solution().expect("feasible");
//! assert_eq!(sol.value(x).round() as i64 + 2 * sol.value(y).round() as i64, 6);
//! # Ok::<(), columba_milp::SolveError>(())
//! ```

// Library code must surface failures as values, never unwrap them away;
// the cfg(test) gate leaves unit tests free to unwrap.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

mod cancel;
mod diagnose;
mod expr;
#[cfg(feature = "fault-inject")]
pub mod fault;
mod model;
mod simplex;
mod solution;
mod solver;
mod stats;

pub use cancel::CancelToken;
pub use diagnose::Diagnosis;
pub use expr::Expr;
pub use model::{Constraint, GroupId, Model, ModelStats, Sense, VarId, VarKind};
pub use solution::{MipResult, Solution, SolveStatus};
pub use solver::{SolveError, SolveParams};
pub use stats::{IncumbentEvent, SolveStats};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_example_solves() {
        let mut m = Model::new();
        let x = m.num_var("x", 0.0, f64::INFINITY);
        m.constraint(Model::expr().term(2.0, x), Sense::Le, 10.0);
        m.minimize(Model::expr().term(-1.0, x));
        let r = m.solve(&SolveParams::default()).unwrap();
        assert_eq!(r.status(), SolveStatus::Optimal);
        let sol = r.solution().unwrap();
        assert!((sol.value(x) - 5.0).abs() < 1e-6);
        assert!((sol.objective() + 5.0).abs() < 1e-6);
    }
}
