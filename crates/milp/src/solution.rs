//! Solve results.

use std::fmt;
use std::time::Duration;

use crate::model::VarId;
use crate::stats::SolveStats;

/// Final status of a MILP solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SolveStatus {
    /// Proven optimal solution found.
    Optimal,
    /// A feasible solution was found but a limit stopped the proof of
    /// optimality.
    Feasible,
    /// The model has no feasible solution.
    Infeasible,
    /// The LP relaxation is unbounded in the objective direction.
    Unbounded,
    /// A limit was hit before any feasible solution was found.
    LimitReached,
}

impl SolveStatus {
    /// `true` when a solution is available ([`SolveStatus::Optimal`] or
    /// [`SolveStatus::Feasible`]).
    #[must_use]
    pub fn has_solution(self) -> bool {
        matches!(self, SolveStatus::Optimal | SolveStatus::Feasible)
    }
}

impl fmt::Display for SolveStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveStatus::Optimal => f.write_str("optimal"),
            SolveStatus::Feasible => f.write_str("feasible (limit reached)"),
            SolveStatus::Infeasible => f.write_str("infeasible"),
            SolveStatus::Unbounded => f.write_str("unbounded"),
            SolveStatus::LimitReached => f.write_str("no solution (limit reached)"),
        }
    }
}

/// A variable assignment satisfying all constraints.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    pub(crate) values: Vec<f64>,
    pub(crate) objective: f64,
}

impl Solution {
    /// Value of `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var` comes from a different model.
    #[must_use]
    pub fn value(&self, var: VarId) -> f64 {
        self.values[var.index()]
    }

    /// Objective value in the *user's* sense (already negated back for
    /// maximisation models).
    #[must_use]
    pub fn objective(&self) -> f64 {
        self.objective
    }

    /// All variable values, indexed by [`VarId::index`].
    #[must_use]
    pub fn values(&self) -> &[f64] {
        &self.values
    }
}

/// Outcome of a MILP solve: status, best solution, bound and search stats.
#[derive(Debug, Clone)]
pub struct MipResult {
    pub(crate) status: SolveStatus,
    pub(crate) solution: Option<Solution>,
    pub(crate) best_bound: f64,
    pub(crate) stats: SolveStats,
}

impl MipResult {
    /// Final status.
    #[must_use]
    pub fn status(&self) -> SolveStatus {
        self.status
    }

    /// The best solution found, if any.
    #[must_use]
    pub fn solution(&self) -> Option<&Solution> {
        self.solution.as_ref()
    }

    /// Best proven dual bound in the user's sense (a lower bound for
    /// minimisation, upper for maximisation). Meaningful only when the solve
    /// was stopped early.
    #[must_use]
    pub fn best_bound(&self) -> f64 {
        self.best_bound
    }

    /// Relative optimality gap `|obj - bound| / max(1, |obj|)`, or `None`
    /// when no solution exists.
    #[must_use]
    pub fn gap(&self) -> Option<f64> {
        let s = self.solution.as_ref()?;
        Some((s.objective - self.best_bound).abs() / s.objective.abs().max(1.0))
    }

    /// Number of branch & bound nodes processed.
    #[must_use]
    pub fn nodes(&self) -> usize {
        self.stats.nodes_processed
    }

    /// Total simplex iterations across all nodes.
    #[must_use]
    pub fn simplex_iterations(&self) -> usize {
        self.stats.simplex_iterations
    }

    /// Wall-clock solve time.
    #[must_use]
    pub fn elapsed(&self) -> Duration {
        self.stats.total_time
    }

    /// Full solver telemetry: counters, phase times, incumbent trajectory
    /// and worker utilization.
    #[must_use]
    pub fn stats(&self) -> &SolveStats {
        &self.stats
    }
}

impl fmt::Display for MipResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} after {} nodes / {} simplex iterations in {:.3}s",
            self.status,
            self.stats.nodes_processed,
            self.stats.simplex_iterations,
            self.stats.total_time.as_secs_f64()
        )?;
        if let Some(s) = &self.solution {
            write!(f, "; objective {:.6}", s.objective())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_has_solution() {
        assert!(SolveStatus::Optimal.has_solution());
        assert!(SolveStatus::Feasible.has_solution());
        assert!(!SolveStatus::Infeasible.has_solution());
        assert!(!SolveStatus::LimitReached.has_solution());
    }

    #[test]
    fn gap_computation() {
        let r = MipResult {
            status: SolveStatus::Feasible,
            solution: Some(Solution {
                values: vec![],
                objective: 10.0,
            }),
            best_bound: 9.0,
            stats: SolveStats {
                threads: 1,
                nodes_processed: 1,
                simplex_iterations: 1,
                total_time: Duration::from_millis(1),
                ..SolveStats::default()
            },
        };
        assert!((r.gap().unwrap() - 0.1).abs() < 1e-12);
        assert!(r.to_string().contains("feasible"));
    }
}
