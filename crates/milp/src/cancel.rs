//! Cooperative cancellation.
//!
//! A [`CancelToken`] combines a shared atomic flag with an optional
//! wall-clock deadline. Cloning a token shares the flag, so one token can
//! span several solves (a chip-level budget across both synthesis phases)
//! while each solve also keeps its own `time_limit`: the solver intersects
//! the two by capping the token's deadline, and both the branch & bound
//! workers and the simplex inner loop poll the result. Cancellation is
//! *cooperative* — a solve checks the token at node and iteration
//! boundaries, stops cleanly, and still returns the best incumbent found.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A shareable cancellation signal: an atomic flag plus an optional
/// deadline.
///
/// # Examples
///
/// ```
/// use columba_milp::CancelToken;
///
/// let token = CancelToken::new();
/// let watcher = token.clone(); // shares the flag
/// watcher.cancel();
/// assert!(token.is_cancelled());
/// ```
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A token with no deadline; fires only via [`CancelToken::cancel`].
    #[must_use]
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// A token that fires automatically at `deadline`.
    #[must_use]
    pub fn with_deadline(deadline: Instant) -> CancelToken {
        CancelToken {
            flag: Arc::new(AtomicBool::new(false)),
            deadline: Some(deadline),
        }
    }

    /// A token that fires automatically `budget` from now.
    #[must_use]
    pub fn with_timeout(budget: Duration) -> CancelToken {
        CancelToken::with_deadline(Instant::now() + budget)
    }

    /// Fires the token. Every clone observes the cancellation.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether the token has fired — explicitly via [`CancelToken::cancel`]
    /// on any clone, or implicitly because the deadline passed.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed) || self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// The token's deadline, if any.
    #[must_use]
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// Wall-clock time left before the deadline fires (`None` without a
    /// deadline, zero once it has passed or the flag is set).
    #[must_use]
    pub fn remaining(&self) -> Option<Duration> {
        if self.flag.load(Ordering::Relaxed) {
            return Some(Duration::ZERO);
        }
        self.deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// A clone whose deadline is capped at `deadline` (the earlier of the
    /// two wins). The flag stays shared, so cancelling either token stops
    /// both. This is how a per-solve `time_limit` composes with a caller's
    /// chip-level budget.
    #[must_use]
    pub fn capped(&self, deadline: Instant) -> CancelToken {
        CancelToken {
            flag: Arc::clone(&self.flag),
            deadline: Some(self.deadline.map_or(deadline, |d| d.min(deadline))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_cancel_is_shared_across_clones() {
        let t = CancelToken::new();
        let c = t.clone();
        assert!(!t.is_cancelled());
        c.cancel();
        assert!(t.is_cancelled());
        assert_eq!(t.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn deadline_fires_without_flag() {
        let t = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(t.is_cancelled());
        let fresh = CancelToken::with_timeout(Duration::from_secs(3600));
        assert!(!fresh.is_cancelled());
        assert!(fresh
            .remaining()
            .is_some_and(|r| r > Duration::from_secs(3000)));
    }

    #[test]
    fn capped_takes_earlier_deadline_and_shares_flag() {
        let far = Instant::now() + Duration::from_secs(3600);
        let near = Instant::now() + Duration::from_secs(1);
        let t = CancelToken::with_deadline(far);
        let capped = t.capped(near);
        assert_eq!(capped.deadline(), Some(near));
        // capping never extends
        let recapped = capped.capped(far);
        assert_eq!(recapped.deadline(), Some(near));
        t.cancel();
        assert!(capped.is_cancelled(), "flag is shared through capping");
    }

    #[test]
    fn no_deadline_reports_none_remaining() {
        let t = CancelToken::new();
        assert_eq!(t.deadline(), None);
        assert_eq!(t.remaining(), None);
    }
}
