//! Infeasibility diagnosis by deletion filtering over constraint groups.
//!
//! When a model is infeasible, knowing *which constraints conflict* matters
//! more than the bare status: "chip confinement (eq 2) conflicts with
//! non-overlap (eqs 3–5)" tells a designer to widen the chip, where "MILP
//! failed" tells them nothing. The classic deletion filter computes an
//! irreducible infeasible subsystem: walk the candidate set, drop one
//! member, and re-solve — if the rest is still infeasible the member was
//! not needed and stays dropped; otherwise it belongs to the conflict.
//!
//! Filtering individual rows would take one probe solve per constraint
//! (thousands for a layout model). Filtering the *labelled groups* from
//! [`Model::add_group`] needs only one probe per label and reports the
//! conflict in the builder's own vocabulary.

use std::fmt;
use std::time::{Duration, Instant};

use crate::model::{GroupId, Model};
use crate::solution::SolveStatus;
use crate::solver::{SolveError, SolveParams};

/// A minimal conflicting set of constraint groups, found by deletion
/// filtering an infeasible model.
#[derive(Debug, Clone)]
pub struct Diagnosis {
    /// Names of the groups in the conflict, in registration order. Empty
    /// when the infeasibility involves only ungrouped constraints and
    /// variable bounds.
    pub conflict: Vec<String>,
    /// Probe solves performed (including the initial confirmation).
    pub probes: usize,
    /// Wall-clock time spent diagnosing.
    pub elapsed: Duration,
}

impl fmt::Display for Diagnosis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.conflict.as_slice() {
            [] => f.write_str("infeasible through ungrouped constraints or variable bounds alone"),
            [only] => write!(f, "constraint group `{only}` is infeasible on its own"),
            [first, rest @ ..] => {
                write!(f, "conflicting constraint groups: `{first}`")?;
                for g in rest {
                    write!(f, " + `{g}`")?;
                }
                Ok(())
            }
        }
    }
}

impl Model {
    /// Diagnoses an infeasible model: confirms infeasibility, then deletion-
    /// filters the labelled constraint groups down to a minimal conflicting
    /// set.
    ///
    /// Returns `Ok(None)` when the model is *not* proven infeasible under
    /// `params` (feasible, unbounded, or the budget ran out first) — pass a
    /// `params` with probe-sized budgets, since each probe is a full solve.
    /// A probe that cannot prove infeasibility keeps its group in the
    /// conflict (the result stays a correct conflict set, just possibly not
    /// minimal).
    ///
    /// # Errors
    ///
    /// Returns [`SolveError`] when a probe solve fails numerically.
    pub fn diagnose_infeasibility(
        &self,
        params: &SolveParams,
    ) -> Result<Option<Diagnosis>, SolveError> {
        let start = Instant::now();
        let mut probes = 1usize;
        if self.solve(params)?.status() != SolveStatus::Infeasible {
            return Ok(None);
        }

        // groups that actually tag at least one constraint, in id order
        let mut present: Vec<GroupId> = Vec::new();
        for c in &self.constraints {
            if let Some(g) = c.group {
                if !present.contains(&g) {
                    present.push(g);
                }
            }
        }
        present.sort_unstable();

        let mut excluded: Vec<GroupId> = Vec::new();
        for &candidate in &present {
            let mut sub = self.clone();
            sub.constraints.retain(|c| {
                c.group
                    .is_none_or(|g| g != candidate && !excluded.contains(&g))
            });
            probes += 1;
            if sub.solve(params)?.status() == SolveStatus::Infeasible {
                // still infeasible without it: not part of the conflict
                excluded.push(candidate);
            }
        }

        let conflict = present
            .iter()
            .filter(|g| !excluded.contains(g))
            .map(|&g| self.group_name(g).to_string())
            .collect();
        Ok(Some(Diagnosis {
            conflict,
            probes,
            elapsed: start.elapsed(),
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Sense;

    fn probe_params() -> SolveParams {
        SolveParams {
            time_limit: Duration::from_secs(5),
            node_limit: 10_000,
            ..SolveParams::default()
        }
    }

    #[test]
    fn feasible_model_yields_none() {
        let mut m = Model::new();
        let x = m.num_var("x", 0.0, 1.0);
        let g = m.add_group("bound");
        m.constraint_in(g, Model::expr().term(1.0, x), Sense::Le, 0.5);
        assert!(m
            .diagnose_infeasibility(&probe_params())
            .expect("solves")
            .is_none());
    }

    #[test]
    fn deletion_filter_finds_the_two_sided_conflict() {
        // x >= 3 (floor) conflicts with x <= 2 (ceiling); x <= 10 (slack)
        // is irrelevant and must be filtered out of the conflict.
        let mut m = Model::new();
        let x = m.num_var("x", 0.0, 100.0);
        let floor = m.add_group("floor");
        let ceiling = m.add_group("ceiling");
        let slack = m.add_group("slack");
        m.constraint_in(floor, Model::expr().term(1.0, x), Sense::Ge, 3.0);
        m.constraint_in(ceiling, Model::expr().term(1.0, x), Sense::Le, 2.0);
        m.constraint_in(slack, Model::expr().term(1.0, x), Sense::Le, 10.0);
        let d = m
            .diagnose_infeasibility(&probe_params())
            .expect("solves")
            .expect("infeasible");
        assert_eq!(d.conflict, ["floor", "ceiling"]);
        assert_eq!(d.probes, 4, "one confirmation + one probe per group");
        let text = d.to_string();
        assert!(text.contains("floor") && text.contains("ceiling"), "{text}");
    }

    #[test]
    fn ungrouped_infeasibility_reports_empty_conflict() {
        let mut m = Model::new();
        let x = m.num_var("x", 0.0, 1.0);
        m.constraint(Model::expr().term(1.0, x), Sense::Ge, 2.0);
        let labelled = m.add_group("labelled but satisfiable");
        m.constraint_in(labelled, Model::expr().term(1.0, x), Sense::Ge, 0.0);
        let d = m
            .diagnose_infeasibility(&probe_params())
            .expect("solves")
            .expect("infeasible");
        assert!(d.conflict.is_empty(), "{:?}", d.conflict);
        assert!(d.to_string().contains("ungrouped"));
    }

    #[test]
    fn integer_only_conflict_is_diagnosed() {
        // feasible in the LP relaxation, infeasible over the integers: the
        // probes must run full branch & bound, not just the root LP
        let mut m = Model::new();
        let a = m.bin_var("a");
        let b = m.bin_var("b");
        let lo = m.add_group("at least 1.5 chosen");
        let hi = m.add_group("at most half chosen");
        m.constraint_in(lo, Model::expr().term(1.0, a).term(1.0, b), Sense::Ge, 1.5);
        m.constraint_in(hi, Model::expr().term(2.0, a).term(2.0, b), Sense::Le, 3.0);
        let d = m
            .diagnose_infeasibility(&probe_params())
            .expect("solves")
            .expect("infeasible");
        assert_eq!(d.conflict, ["at least 1.5 chosen", "at most half chosen"]);
    }
}
