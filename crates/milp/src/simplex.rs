//! Bounded-variable two-phase primal simplex.
//!
//! Operates on the *computational form* `min cᵀx  s.t.  Ax = b, l ≤ x ≤ u`
//! obtained by adding one slack column per constraint row. Phase 1 introduces
//! one artificial column per row and minimises their sum; phase 2 optimises
//! the true objective. Nonbasic variables rest at a finite bound; entering
//! variables may *bound-flip* without a basis change. Dantzig pricing is used
//! until a long degenerate streak triggers Bland's rule, which guarantees
//! termination.

use crate::cancel::CancelToken;
use crate::model::Sense;

/// Pivot magnitude tolerance.
const PIVOT_TOL: f64 = 1e-9;
/// Reduced-cost optimality tolerance.
const COST_TOL: f64 = 1e-9;
/// Consecutive degenerate pivots before switching to Bland's rule.
const DEGENERATE_STREAK: usize = 400;

/// One constraint row in sparse form, already brought to `Σ aᵢxᵢ (sense) rhs`.
#[derive(Debug, Clone)]
pub(crate) struct Row {
    pub terms: Vec<(usize, f64)>,
    pub sense: Sense,
    pub rhs: f64,
}

/// An LP instance: structural columns with bounds and costs, plus rows.
#[derive(Debug, Clone)]
pub(crate) struct Lp {
    /// Lower bound per structural column (finite).
    pub lb: Vec<f64>,
    /// Upper bound per structural column (may be `f64::INFINITY`).
    pub ub: Vec<f64>,
    /// Minimisation cost per structural column.
    pub cost: Vec<f64>,
    pub rows: Vec<Row>,
}

/// Result of an LP solve.
#[derive(Debug, Clone)]
pub(crate) enum LpOutcome {
    /// Optimal with structural variable values and objective.
    Optimal {
        x: Vec<f64>,
        obj: f64,
    },
    Infeasible,
    Unbounded,
    /// The caller's deadline expired mid-solve.
    TimedOut,
    /// Numerical breakdown (cycling guard or residual check failed).
    Numerical(String),
}

/// Solves `lp`, returning the outcome and the iteration count. When
/// `cancel` is set, the solve aborts with [`LpOutcome::TimedOut`] once the
/// token fires — via its deadline or an explicit [`CancelToken::cancel`]
/// (checked every few hundred pivots).
pub(crate) fn solve_lp(lp: &Lp, cancel: Option<&CancelToken>) -> (LpOutcome, usize) {
    Tableau::new(lp).run(lp, cancel.cloned())
}

struct Tableau {
    m: usize,
    /// total columns: structural + slacks + artificials
    ncols: usize,
    n_struct: usize,
    /// dense row-major tableau, m x ncols (current B^-1 A)
    t: Vec<f64>,
    /// current basic-variable values per row
    beta: Vec<f64>,
    /// column basic in each row
    basis: Vec<usize>,
    in_basis: Vec<bool>,
    /// nonbasic-at-upper flag per column
    at_upper: Vec<bool>,
    lb: Vec<f64>,
    ub: Vec<f64>,
    /// reduced costs per column (for the active phase objective)
    d: Vec<f64>,
    degenerate_streak: usize,
    iterations: usize,
    cancel: Option<CancelToken>,
}

impl Tableau {
    fn new(lp: &Lp) -> Tableau {
        let m = lp.rows.len();
        let n_struct = lp.lb.len();

        // nonbasic start: structural at the finite bound of smaller magnitude
        let mut x0 = vec![0.0; n_struct];
        let mut at_upper_struct = vec![false; n_struct];
        for (j, x) in x0.iter_mut().enumerate() {
            *x = lp.lb[j];
            if lp.ub[j].is_finite() && lp.ub[j].abs() < x.abs() {
                *x = lp.ub[j];
                at_upper_struct[j] = true;
            }
        }

        // residuals with slacks at their bound (0)
        let mut residual = vec![0.0; m];
        for (i, row) in lp.rows.iter().enumerate() {
            let mut act = 0.0;
            for &(j, c) in &row.terms {
                act += c * x0[j];
            }
            residual[i] = row.rhs - act;
        }

        // which rows can start feasibly on their own slack?
        // Le: slack = residual, needs residual >= 0
        // Ge: slack = -residual, needs residual <= 0
        // Eq: slack fixed at 0, needs residual == 0
        let slack_ok: Vec<bool> = lp
            .rows
            .iter()
            .zip(&residual)
            .map(|(row, &r)| match row.sense {
                Sense::Le => r >= 0.0,
                Sense::Ge => r <= 0.0,
                Sense::Eq => r == 0.0,
            })
            .collect();
        let n_art = slack_ok.iter().filter(|&&ok| !ok).count();
        let ncols = n_struct + m + n_art;

        let mut t = vec![0.0; m * ncols];
        let mut lb = Vec::with_capacity(ncols);
        let mut ub = Vec::with_capacity(ncols);
        lb.extend_from_slice(&lp.lb);
        ub.extend_from_slice(&lp.ub);
        for row in &lp.rows {
            lb.push(0.0);
            ub.push(match row.sense {
                Sense::Le | Sense::Ge => f64::INFINITY,
                Sense::Eq => 0.0,
            });
        }
        for _ in 0..n_art {
            lb.push(0.0);
            ub.push(f64::INFINITY);
        }

        let mut at_upper = vec![false; ncols];
        at_upper[..n_struct].copy_from_slice(&at_upper_struct);

        let mut basis = Vec::with_capacity(m);
        let mut in_basis = vec![false; ncols];
        let mut beta = vec![0.0; m];
        let mut next_art = n_struct + m;
        for (i, row) in lp.rows.iter().enumerate() {
            let slack_col = n_struct + i;
            let slack_coef = match row.sense {
                Sense::Le | Sense::Eq => 1.0,
                Sense::Ge => -1.0,
            };
            let base = i * ncols;
            if slack_ok[i] {
                // basic slack; scale the row so the basic coefficient is +1
                let sigma = slack_coef; // 1/slack_coef for ±1
                for &(j, c) in &row.terms {
                    t[base + j] += sigma * c;
                }
                t[base + slack_col] = 1.0;
                basis.push(slack_col);
                in_basis[slack_col] = true;
                beta[i] = sigma * residual[i];
            } else {
                // artificial column with +1 after scaling by sign(residual)
                let sigma = if residual[i] >= 0.0 { 1.0 } else { -1.0 };
                for &(j, c) in &row.terms {
                    t[base + j] += sigma * c;
                }
                t[base + slack_col] = sigma * slack_coef;
                let art_col = next_art;
                next_art += 1;
                t[base + art_col] = 1.0;
                basis.push(art_col);
                in_basis[art_col] = true;
                beta[i] = residual[i].abs();
            }
        }

        Tableau {
            m,
            ncols,
            n_struct,
            t,
            beta,
            basis,
            in_basis,
            at_upper,
            lb,
            ub,
            d: vec![0.0; ncols],
            degenerate_streak: 0,
            iterations: 0,
            cancel: None,
        }
    }

    /// Recomputes the reduced-cost row `d = c - c_B^T T` for cost vector `c`
    /// (dense over all columns) and returns the basic cost contribution.
    fn load_costs(&mut self, c: &[f64]) {
        for j in 0..self.ncols {
            let mut dj = c[j];
            for i in 0..self.m {
                let cb = c[self.basis[i]];
                if cb != 0.0 {
                    dj -= cb * self.t[i * self.ncols + j];
                }
            }
            self.d[j] = dj;
        }
        for &b in &self.basis {
            self.d[b] = 0.0;
        }
    }

    /// Current value of a column (basic value or resting bound).
    fn col_value(&self, j: usize) -> f64 {
        if self.in_basis[j] {
            for i in 0..self.m {
                if self.basis[i] == j {
                    return self.beta[i];
                }
            }
            unreachable!("column flagged basic but absent from basis");
        } else if self.at_upper[j] {
            self.ub[j]
        } else if self.lb[j].is_finite() {
            self.lb[j]
        } else {
            0.0
        }
    }

    /// Runs phase 1 then phase 2.
    fn run(mut self, lp: &Lp, cancel: Option<CancelToken>) -> (LpOutcome, usize) {
        let max_iters = 200 * (self.m + self.ncols) + 20_000;
        self.cancel = cancel;

        // ---- phase 1: minimise sum of artificials ----
        let mut p1_span = columba_obs::span("simplex.phase1");
        let mut c1 = vec![0.0; self.ncols];
        c1[(self.n_struct + self.m)..].fill(1.0);
        self.load_costs(&c1);
        match self.optimize(&c1, max_iters, true) {
            PhaseEnd::Ok => {}
            PhaseEnd::TimedOut => return (LpOutcome::TimedOut, self.iterations),
            PhaseEnd::Unbounded => {
                return (
                    LpOutcome::Numerical("phase-1 reported unbounded".into()),
                    self.iterations,
                )
            }
            PhaseEnd::IterLimit => {
                return (
                    LpOutcome::Numerical("phase-1 iteration limit (cycling?)".into()),
                    self.iterations,
                )
            }
        }
        let phase1_obj: f64 = ((self.n_struct + self.m)..self.ncols)
            .map(|j| self.col_value(j))
            .sum();
        if phase1_obj > 1e-6 {
            return (LpOutcome::Infeasible, self.iterations);
        }
        // pin artificials to zero and try to drive basic ones out
        for j in (self.n_struct + self.m)..self.ncols {
            self.ub[j] = 0.0;
        }
        self.drive_out_artificials();
        p1_span.attr("iterations", self.iterations);
        drop(p1_span);

        // ---- phase 2: true objective ----
        let mut p2_span = columba_obs::span("simplex.phase2");
        let p2_start_iters = self.iterations;
        let mut c2 = vec![0.0; self.ncols];
        c2[..self.n_struct].copy_from_slice(&lp.cost);
        self.load_costs(&c2);
        self.degenerate_streak = 0;
        match self.optimize(&c2, max_iters, false) {
            PhaseEnd::Ok => {}
            PhaseEnd::TimedOut => return (LpOutcome::TimedOut, self.iterations),
            PhaseEnd::Unbounded => return (LpOutcome::Unbounded, self.iterations),
            PhaseEnd::IterLimit => {
                return (
                    LpOutcome::Numerical("phase-2 iteration limit (cycling?)".into()),
                    self.iterations,
                )
            }
        }
        p2_span.attr("iterations", self.iterations - p2_start_iters);
        drop(p2_span);

        // extract structural solution
        let mut x = vec![0.0; self.n_struct];
        for (j, xj) in x.iter_mut().enumerate() {
            *xj = self.col_value(j);
        }
        // verify against original rows (guards against tableau drift)
        for row in &lp.rows {
            let act: f64 = row.terms.iter().map(|&(j, c)| c * x[j]).sum();
            let scale =
                1.0 + row.terms.iter().map(|&(_, c)| c.abs()).fold(0.0, f64::max) + row.rhs.abs();
            let viol = match row.sense {
                Sense::Le => act - row.rhs,
                Sense::Ge => row.rhs - act,
                Sense::Eq => (act - row.rhs).abs(),
            };
            if viol > 1e-5 * scale {
                return (
                    LpOutcome::Numerical(format!("residual {viol:.2e} exceeds tolerance")),
                    self.iterations,
                );
            }
        }
        let obj: f64 = x.iter().zip(&lp.cost).map(|(xi, ci)| xi * ci).sum();
        (LpOutcome::Optimal { x, obj }, self.iterations)
    }

    /// Degenerate pivots to remove artificials from the basis where possible.
    fn drive_out_artificials(&mut self) {
        for r in 0..self.m {
            if self.basis[r] < self.n_struct + self.m {
                continue;
            }
            // find a non-artificial, nonbasic column with a usable pivot
            let mut pick = None;
            for j in 0..(self.n_struct + self.m) {
                if self.in_basis[j] {
                    continue;
                }
                let a = self.t[r * self.ncols + j];
                if a.abs() > 1e-7 {
                    pick = Some(j);
                    break;
                }
            }
            if let Some(j) = pick {
                // degenerate pivot: basic artificial sits at 0, so delta = 0
                self.pivot(r, j, self.col_value(j));
            }
        }
    }

    /// Gauss-Jordan pivot bringing column `j` into the basis at row `r`.
    /// `new_value` is the entering variable's value after the step.
    fn pivot(&mut self, r: usize, j: usize, new_value: f64) {
        let n = self.ncols;
        let piv = self.t[r * n + j];
        debug_assert!(piv.abs() > PIVOT_TOL * 1e-3, "pivot too small: {piv}");
        let inv = 1.0 / piv;
        for col in 0..n {
            self.t[r * n + col] *= inv;
        }
        self.t[r * n + j] = 1.0; // exact
        for i in 0..self.m {
            if i == r {
                continue;
            }
            let f = self.t[i * n + j];
            if f != 0.0 {
                for col in 0..n {
                    self.t[i * n + col] -= f * self.t[r * n + col];
                }
                self.t[i * n + j] = 0.0;
            }
        }
        // reduced costs
        let f = self.d[j];
        if f != 0.0 {
            for col in 0..n {
                self.d[col] -= f * self.t[r * n + col];
            }
            self.d[j] = 0.0;
        }
        let old = self.basis[r];
        self.in_basis[old] = false;
        self.basis[r] = j;
        self.in_basis[j] = true;
        self.beta[r] = new_value;
    }

    /// Primal iterations until optimal / unbounded / iteration limit.
    fn optimize(&mut self, _c: &[f64], max_iters: usize, phase1: bool) -> PhaseEnd {
        loop {
            if self.iterations >= max_iters {
                return PhaseEnd::IterLimit;
            }
            if self.iterations.is_multiple_of(256) {
                if let Some(cancel) = &self.cancel {
                    if cancel.is_cancelled() {
                        return PhaseEnd::TimedOut;
                    }
                }
            }
            let bland = self.degenerate_streak >= DEGENERATE_STREAK;
            // entering column
            let mut best: Option<(usize, f64, bool)> = None; // (col, score, increasing)
            let scan_end = if phase1 {
                self.ncols
            } else {
                self.n_struct + self.m
            };
            for j in 0..scan_end {
                if self.in_basis[j] {
                    continue;
                }
                if self.lb[j] == self.ub[j] {
                    continue; // fixed column can never improve
                }
                let dj = self.d[j];
                let (eligible, increasing) = if self.at_upper[j] {
                    (dj > COST_TOL, false)
                } else {
                    (dj < -COST_TOL, true)
                };
                if !eligible {
                    continue;
                }
                if bland {
                    best = Some((j, dj.abs(), increasing));
                    break;
                }
                match best {
                    Some((_, s, _)) if s >= dj.abs() => {}
                    _ => best = Some((j, dj.abs(), increasing)),
                }
            }
            let Some((j, _, increasing)) = best else {
                return PhaseEnd::Ok; // optimal for this phase
            };

            // ratio test
            let range = self.ub[j] - self.lb[j]; // may be inf
            let mut t_max = range;
            let mut leave: Option<(usize, bool)> = None; // (row, leaves_at_upper)
            let n = self.ncols;
            for i in 0..self.m {
                let a = self.t[i * n + j];
                if a.abs() <= PIVOT_TOL {
                    continue;
                }
                let bi = self.basis[i];
                let (l, u) = (self.lb[bi], self.ub[bi]);
                // direction the basic variable moves as entering moves by +t
                let downward = if increasing { a > 0.0 } else { a < 0.0 };
                let ti = if downward {
                    if l.is_finite() {
                        (self.beta[i] - l) / a.abs()
                    } else {
                        f64::INFINITY
                    }
                } else if u.is_finite() {
                    (u - self.beta[i]) / a.abs()
                } else {
                    f64::INFINITY
                };
                if !ti.is_finite() {
                    continue; // this row never blocks the entering variable
                }
                let ti = ti.max(0.0);
                let better = match leave {
                    None => ti < t_max - 1e-12,
                    Some((li, _)) => {
                        ti < t_max - 1e-12
                            || (ti <= t_max + 1e-12
                                && (if bland {
                                    self.basis[i] < self.basis[li]
                                } else {
                                    a.abs() > self.t[li * n + j].abs()
                                }))
                    }
                };
                if ti <= t_max + 1e-12 && better {
                    t_max = ti.min(t_max);
                    leave = Some((i, !downward));
                }
            }

            if t_max.is_infinite() {
                return PhaseEnd::Unbounded;
            }
            self.iterations += 1;
            if t_max <= 1e-10 {
                self.degenerate_streak += 1;
            } else {
                self.degenerate_streak = 0;
            }

            let delta = if increasing { t_max } else { -t_max };
            match leave {
                None => {
                    // bound flip of the entering column
                    for i in 0..self.m {
                        let a = self.t[i * n + j];
                        if a != 0.0 {
                            self.beta[i] -= a * delta;
                        }
                    }
                    self.at_upper[j] = !self.at_upper[j];
                }
                Some((r, leaves_at_upper)) => {
                    for i in 0..self.m {
                        if i == r {
                            continue;
                        }
                        let a = self.t[i * n + j];
                        if a != 0.0 {
                            self.beta[i] -= a * delta;
                        }
                    }
                    let entering_value = if increasing {
                        (if self.at_upper[j] {
                            self.ub[j]
                        } else {
                            self.lb[j]
                        }) + t_max
                    } else {
                        self.ub[j] - t_max
                    };
                    let old = self.basis[r];
                    self.at_upper[old] = leaves_at_upper;
                    self.pivot(r, j, entering_value);
                    self.at_upper[j] = false;
                }
            }
        }
    }
}

enum PhaseEnd {
    Ok,
    Unbounded,
    IterLimit,
    TimedOut,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lp(lb: &[f64], ub: &[f64], cost: &[f64], rows: Vec<Row>) -> Lp {
        Lp {
            lb: lb.to_vec(),
            ub: ub.to_vec(),
            cost: cost.to_vec(),
            rows,
        }
    }

    fn row(terms: &[(usize, f64)], sense: Sense, rhs: f64) -> Row {
        Row {
            terms: terms.to_vec(),
            sense,
            rhs,
        }
    }

    fn optimal(lp: &Lp) -> (Vec<f64>, f64) {
        match solve_lp(lp, None).0 {
            LpOutcome::Optimal { x, obj } => (x, obj),
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn simple_maximization_as_min() {
        // min -x - 2y s.t. x+y <= 4, x <= 3, y <= 2
        let p = lp(
            &[0.0, 0.0],
            &[3.0, 2.0],
            &[-1.0, -2.0],
            vec![row(&[(0, 1.0), (1, 1.0)], Sense::Le, 4.0)],
        );
        let (x, obj) = optimal(&p);
        assert!((x[0] - 2.0).abs() < 1e-6, "{x:?}");
        assert!((x[1] - 2.0).abs() < 1e-6);
        assert!((obj + 6.0).abs() < 1e-6);
    }

    #[test]
    fn equality_constraints_need_phase1() {
        // min x + y s.t. x + y = 5, x - y = 1
        let p = lp(
            &[0.0, 0.0],
            &[f64::INFINITY, f64::INFINITY],
            &[1.0, 1.0],
            vec![
                row(&[(0, 1.0), (1, 1.0)], Sense::Eq, 5.0),
                row(&[(0, 1.0), (1, -1.0)], Sense::Eq, 1.0),
            ],
        );
        let (x, obj) = optimal(&p);
        assert!((x[0] - 3.0).abs() < 1e-6);
        assert!((x[1] - 2.0).abs() < 1e-6);
        assert!((obj - 5.0).abs() < 1e-6);
    }

    #[test]
    fn ge_constraints() {
        // min 2x + 3y s.t. x + y >= 10, x >= 2
        let p = lp(
            &[2.0, 0.0],
            &[f64::INFINITY, f64::INFINITY],
            &[2.0, 3.0],
            vec![row(&[(0, 1.0), (1, 1.0)], Sense::Ge, 10.0)],
        );
        let (x, obj) = optimal(&p);
        assert!((x[0] - 10.0).abs() < 1e-6, "{x:?}");
        assert!((x[1]).abs() < 1e-6);
        assert!((obj - 20.0).abs() < 1e-6);
    }

    #[test]
    fn infeasible_detected() {
        let p = lp(
            &[0.0],
            &[1.0],
            &[1.0],
            vec![row(&[(0, 1.0)], Sense::Ge, 2.0)],
        );
        assert!(matches!(solve_lp(&p, None).0, LpOutcome::Infeasible));
    }

    #[test]
    fn unbounded_detected() {
        let p = lp(
            &[0.0],
            &[f64::INFINITY],
            &[-1.0],
            vec![row(&[(0, 1.0)], Sense::Ge, 0.0)],
        );
        assert!(matches!(solve_lp(&p, None).0, LpOutcome::Unbounded));
    }

    #[test]
    fn bound_flip_reaches_upper_bounds() {
        // min -x - y with only bounds: x <= 7, y <= 9, no rows binding
        let p = lp(
            &[0.0, 0.0],
            &[7.0, 9.0],
            &[-1.0, -1.0],
            vec![row(&[(0, 1.0), (1, 1.0)], Sense::Le, 100.0)],
        );
        let (x, obj) = optimal(&p);
        assert!((x[0] - 7.0).abs() < 1e-6);
        assert!((x[1] - 9.0).abs() < 1e-6);
        assert!((obj + 16.0).abs() < 1e-6);
    }

    #[test]
    fn fixed_variable_respected() {
        let p = lp(
            &[3.0, 0.0],
            &[3.0, f64::INFINITY],
            &[0.0, 1.0],
            vec![row(&[(0, 1.0), (1, 1.0)], Sense::Ge, 5.0)],
        );
        let (x, obj) = optimal(&p);
        assert!((x[0] - 3.0).abs() < 1e-6);
        assert!((x[1] - 2.0).abs() < 1e-6);
        assert!((obj - 2.0).abs() < 1e-6);
    }

    #[test]
    fn degenerate_lp_terminates() {
        // classic degenerate corner: several constraints meet at origin
        let p = lp(
            &[0.0, 0.0],
            &[f64::INFINITY, f64::INFINITY],
            &[-0.75, 150.0],
            vec![
                row(&[(0, 0.25), (1, -8.0)], Sense::Le, 0.0),
                row(&[(0, 0.5), (1, -12.0)], Sense::Le, 0.0),
                row(&[(0, 0.0), (1, 1.0)], Sense::Le, 1.0),
            ],
        );
        // Beale-like cycling example (truncated); must terminate
        let (outcome, _) = solve_lp(&p, None);
        assert!(
            matches!(outcome, LpOutcome::Optimal { .. } | LpOutcome::Unbounded),
            "{outcome:?}"
        );
    }

    #[test]
    fn negative_rhs_rows() {
        // min x s.t. -x <= -4  (i.e. x >= 4)
        let p = lp(
            &[0.0],
            &[f64::INFINITY],
            &[1.0],
            vec![row(&[(0, -1.0)], Sense::Le, -4.0)],
        );
        let (x, obj) = optimal(&p);
        assert!((x[0] - 4.0).abs() < 1e-6);
        assert!((obj - 4.0).abs() < 1e-6);
    }

    #[test]
    fn redundant_equalities_ok() {
        // x + y = 2 stated twice: phase 1 leaves a basic artificial at 0
        let p = lp(
            &[0.0, 0.0],
            &[f64::INFINITY, f64::INFINITY],
            &[1.0, 2.0],
            vec![
                row(&[(0, 1.0), (1, 1.0)], Sense::Eq, 2.0),
                row(&[(0, 1.0), (1, 1.0)], Sense::Eq, 2.0),
            ],
        );
        let (x, obj) = optimal(&p);
        assert!((x[0] - 2.0).abs() < 1e-6);
        assert!(x[1].abs() < 1e-6);
        assert!((obj - 2.0).abs() < 1e-6);
    }
}
