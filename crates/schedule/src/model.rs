//! The assay sequencing graph: operations, fluid dependencies, device
//! bounds.
//!
//! An [`Assay`] is a DAG of [`Op`]s. Each op runs for a fixed duration
//! on one device of its [`DeviceClass`]; each dependency edge carries
//! the producer's output fluid into the consumer. The graph is the
//! behavioral level above the structural netlist: the scheduler maps it
//! onto a bounded device set and [`crate::emit`] projects the result
//! down to the plain-text netlist the rest of the flow consumes.

use std::collections::HashMap;

use crate::error::ScheduleError;

/// Hard cap on operations per assay; keeps the scheduler and the HTTP
/// front end safe from pathological inputs.
pub const MAX_OPS: usize = 4096;

/// Hard cap on one operation's duration (one day, in seconds).
pub const MAX_DURATION_S: f64 = 86_400.0;

/// Hard cap on the per-class device bound an assay may request.
pub const MAX_DEVICES: usize = 64;

/// The device class an operation requires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceClass {
    /// A rotary mixer (active mixing, heating steps).
    Mixer,
    /// A passive chamber (incubation, capture, detection steps).
    Chamber,
}

impl DeviceClass {
    /// Stable lowercase name used by the text format.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            DeviceClass::Mixer => "mixer",
            DeviceClass::Chamber => "chamber",
        }
    }

    /// Parses the stable name back; `None` for anything else.
    #[must_use]
    pub fn parse(name: &str) -> Option<DeviceClass> {
        match name {
            "mixer" => Some(DeviceClass::Mixer),
            "chamber" => Some(DeviceClass::Chamber),
            _ => None,
        }
    }
}

impl std::fmt::Display for DeviceClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One operation of the sequencing graph.
#[derive(Debug, Clone, PartialEq)]
pub struct Op {
    /// Unique name; also the id cycles and schedules are reported by.
    pub name: String,
    /// How long the operation occupies its device, seconds.
    pub duration_s: f64,
    /// The device class it must run on.
    pub class: DeviceClass,
}

/// One fluid dependency: the output of `from` is an input of `to`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dep {
    /// Producer op index.
    pub from: usize,
    /// Consumer op index.
    pub to: usize,
}

/// How many devices of each class the schedule may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceBounds {
    /// Rotary mixers available.
    pub mixers: usize,
    /// Passive chambers available.
    pub chambers: usize,
}

impl DeviceBounds {
    /// Rejects empty or absurd bounds.
    ///
    /// # Errors
    ///
    /// [`ScheduleError::Invalid`] when a class count is 0 or above
    /// [`MAX_DEVICES`].
    pub fn validate(self) -> Result<(), ScheduleError> {
        for (label, n) in [("mixers", self.mixers), ("chambers", self.chambers)] {
            if n == 0 || n > MAX_DEVICES {
                return Err(ScheduleError::Invalid(format!(
                    "{label} must be between 1 and {MAX_DEVICES}, got {n}"
                )));
            }
        }
        Ok(())
    }
}

/// The behavioral assay: a named DAG of operations plus optional
/// per-assay device bounds (falling back to
/// [`crate::ScheduleOptions::default_devices`] when absent).
#[derive(Debug, Clone, PartialEq)]
pub struct Assay {
    /// Assay name; becomes the emitted netlist's chip name.
    pub name: String,
    ops: Vec<Op>,
    deps: Vec<Dep>,
    by_name: HashMap<String, usize>,
    devices: Option<DeviceBounds>,
}

/// Rejects names the text format could not round-trip (netlist names
/// obey the same rule, so an assay name is always a legal chip name).
fn check_name(name: &str) -> Result<(), ScheduleError> {
    if name.is_empty() || name.contains('=') || name.contains('.') {
        return Err(ScheduleError::Invalid(format!("invalid name `{name}`")));
    }
    Ok(())
}

impl Assay {
    /// An empty assay with the given name.
    ///
    /// # Errors
    ///
    /// [`ScheduleError::Invalid`] on a name the text format cannot
    /// represent.
    pub fn new(name: impl Into<String>) -> Result<Assay, ScheduleError> {
        let name = name.into();
        check_name(&name)?;
        Ok(Assay {
            name,
            ops: Vec::new(),
            deps: Vec::new(),
            by_name: HashMap::new(),
            devices: None,
        })
    }

    /// Adds an operation and returns its index.
    ///
    /// # Errors
    ///
    /// [`ScheduleError::Invalid`] on a duplicate or malformed name, a
    /// non-finite/non-positive/oversized duration, or once [`MAX_OPS`]
    /// is reached.
    pub fn add_op(
        &mut self,
        name: impl Into<String>,
        duration_s: f64,
        class: DeviceClass,
    ) -> Result<usize, ScheduleError> {
        let name = name.into();
        check_name(&name)?;
        if self.by_name.contains_key(&name) {
            return Err(ScheduleError::Invalid(format!(
                "duplicate operation `{name}`"
            )));
        }
        if !(duration_s.is_finite() && duration_s > 0.0 && duration_s <= MAX_DURATION_S) {
            return Err(ScheduleError::Invalid(format!(
                "duration of `{name}` must be positive, finite and at most {MAX_DURATION_S} s"
            )));
        }
        if self.ops.len() >= MAX_OPS {
            return Err(ScheduleError::Invalid(format!(
                "assay exceeds {MAX_OPS} operations"
            )));
        }
        let idx = self.ops.len();
        self.by_name.insert(name.clone(), idx);
        self.ops.push(Op {
            name,
            duration_s,
            class,
        });
        Ok(idx)
    }

    /// Adds a fluid dependency by op index.
    ///
    /// # Errors
    ///
    /// [`ScheduleError::Invalid`] on an out-of-range index, a self
    /// dependency, or a duplicate edge.
    pub fn add_dep(&mut self, from: usize, to: usize) -> Result<(), ScheduleError> {
        for idx in [from, to] {
            if idx >= self.ops.len() {
                return Err(ScheduleError::Invalid(format!(
                    "dependency references operation #{idx}"
                )));
            }
        }
        if from == to {
            return Err(ScheduleError::Invalid(format!(
                "operation `{}` depends on itself",
                self.ops[from].name
            )));
        }
        let dep = Dep { from, to };
        if self.deps.contains(&dep) {
            return Err(ScheduleError::Invalid(format!(
                "duplicate dependency `{} -> {}`",
                self.ops[from].name, self.ops[to].name
            )));
        }
        self.deps.push(dep);
        Ok(())
    }

    /// [`Assay::add_dep`] by op names.
    ///
    /// # Errors
    ///
    /// As [`Assay::add_dep`], plus [`ScheduleError::Invalid`] on an
    /// unknown name.
    pub fn add_dep_by_name(&mut self, from: &str, to: &str) -> Result<(), ScheduleError> {
        let lookup = |name: &str| -> Result<usize, ScheduleError> {
            self.by_name
                .get(name)
                .copied()
                .ok_or_else(|| ScheduleError::Invalid(format!("unknown operation `{name}`")))
        };
        let (f, t) = (lookup(from)?, lookup(to)?);
        self.add_dep(f, t)
    }

    /// Sets the per-assay device bounds (overrides the options default).
    ///
    /// # Errors
    ///
    /// As [`DeviceBounds::validate`].
    pub fn set_devices(&mut self, bounds: DeviceBounds) -> Result<(), ScheduleError> {
        bounds.validate()?;
        self.devices = Some(bounds);
        Ok(())
    }

    /// The op index for a name, if present.
    #[must_use]
    pub fn op_index(&self, name: &str) -> Option<usize> {
        self.by_name.get(name).copied()
    }

    /// The operations, in insertion order.
    #[must_use]
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// The dependency edges, in insertion order.
    #[must_use]
    pub fn deps(&self) -> &[Dep] {
        &self.deps
    }

    /// The per-assay device bounds, if declared.
    #[must_use]
    pub fn devices(&self) -> Option<DeviceBounds> {
        self.devices
    }

    /// Checks the assay is non-empty and acyclic.
    ///
    /// # Errors
    ///
    /// [`ScheduleError::Invalid`] on an empty assay and
    /// [`ScheduleError::Cycle`] naming the offending operations when
    /// the graph has a cycle.
    pub fn validate(&self) -> Result<(), ScheduleError> {
        self.topo_order().map(drop)
    }

    /// A topological order of the op indices (Kahn's algorithm; the
    /// ready set drains in name order so the result is deterministic
    /// under input-line reordering).
    ///
    /// # Errors
    ///
    /// As [`Assay::validate`].
    pub fn topo_order(&self) -> Result<Vec<usize>, ScheduleError> {
        if self.ops.is_empty() {
            return Err(ScheduleError::Invalid("assay has no operations".into()));
        }
        let mut indeg = vec![0usize; self.ops.len()];
        for d in &self.deps {
            indeg[d.to] += 1;
        }
        let mut ready: Vec<usize> = (0..self.ops.len()).filter(|&i| indeg[i] == 0).collect();
        let by_name = |&i: &usize| self.ops[i].name.clone();
        ready.sort_by_key(by_name);
        let mut order = Vec::with_capacity(self.ops.len());
        while let Some(next) = ready.first().copied() {
            ready.remove(0);
            order.push(next);
            let mut unlocked = Vec::new();
            for d in &self.deps {
                if d.from == next {
                    indeg[d.to] -= 1;
                    if indeg[d.to] == 0 {
                        unlocked.push(d.to);
                    }
                }
            }
            unlocked.sort_by_key(by_name);
            for u in unlocked {
                let pos = ready
                    .binary_search_by_key(&self.ops[u].name.as_str(), |&i| {
                        self.ops[i].name.as_str()
                    })
                    .unwrap_or_else(|p| p);
                ready.insert(pos, u);
            }
        }
        if order.len() < self.ops.len() {
            let mut stuck: Vec<String> = (0..self.ops.len())
                .filter(|&i| indeg[i] > 0)
                .map(|i| self.ops[i].name.clone())
                .collect();
            stuck.sort();
            return Err(ScheduleError::Cycle { ops: stuck });
        }
        Ok(order)
    }

    /// Op indices with no incoming dependency (reagent inputs).
    #[must_use]
    pub fn sources(&self) -> Vec<usize> {
        (0..self.ops.len())
            .filter(|&i| !self.deps.iter().any(|d| d.to == i))
            .collect()
    }

    /// Op indices with no outgoing dependency (assay products).
    #[must_use]
    pub fn sinks(&self) -> Vec<usize> {
        (0..self.ops.len())
            .filter(|&i| !self.deps.iter().any(|d| d.from == i))
            .collect()
    }

    /// The canonical text form: header, optional device bounds, then
    /// operations sorted by name and dependencies sorted by the
    /// `(from, to)` name pair. Two assays describe the same graph iff
    /// their canonical texts are byte-equal — reordering the lines of an
    /// assay file does not change its canonical form, which is what the
    /// service hashes into the content-addressed cache key.
    #[must_use]
    pub fn canonical_text(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::with_capacity(64 + self.ops.len() * 40);
        let _ = writeln!(s, "assay {}", self.name);
        if let Some(b) = self.devices {
            let _ = writeln!(s, "devices mixers={} chambers={}", b.mixers, b.chambers);
        }
        let mut ops: Vec<&Op> = self.ops.iter().collect();
        ops.sort_by(|a, b| a.name.cmp(&b.name));
        for op in ops {
            let _ = writeln!(
                s,
                "op {} duration={} device={}",
                op.name, op.duration_s, op.class
            );
        }
        let mut deps: Vec<(&str, &str)> = self
            .deps
            .iter()
            .map(|d| (self.ops[d.from].name.as_str(), self.ops[d.to].name.as_str()))
            .collect();
        deps.sort_unstable();
        for (from, to) in deps {
            let _ = writeln!(s, "dep {from} -> {to}");
        }
        s
    }

    /// Alias of [`Assay::canonical_text`] — there is only one text form.
    #[must_use]
    pub fn to_text(&self) -> String {
        self.canonical_text()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_step() -> Assay {
        let mut a = Assay::new("demo").unwrap();
        let mix = a.add_op("mix", 10.0, DeviceClass::Mixer).unwrap();
        let incubate = a.add_op("incubate", 30.0, DeviceClass::Chamber).unwrap();
        a.add_dep(mix, incubate).unwrap();
        a
    }

    #[test]
    fn builds_and_validates() {
        let a = two_step();
        a.validate().unwrap();
        assert_eq!(a.ops().len(), 2);
        assert_eq!(a.sources(), vec![0]);
        assert_eq!(a.sinks(), vec![1]);
        assert_eq!(a.op_index("mix"), Some(0));
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(Assay::new("a.b").is_err());
        let mut a = two_step();
        assert!(a.add_op("mix", 1.0, DeviceClass::Mixer).is_err());
        assert!(a.add_op("x=y", 1.0, DeviceClass::Mixer).is_err());
        assert!(a.add_op("neg", -1.0, DeviceClass::Mixer).is_err());
        assert!(a.add_op("nan", f64::NAN, DeviceClass::Mixer).is_err());
        assert!(a.add_dep(0, 0).is_err());
        assert!(a.add_dep(0, 1).is_err(), "duplicate edge");
        assert!(a.add_dep(0, 9).is_err());
        assert!(a
            .set_devices(DeviceBounds {
                mixers: 0,
                chambers: 1
            })
            .is_err());
    }

    #[test]
    fn cycle_reports_sorted_ops() {
        let mut a = Assay::new("c").unwrap();
        let x = a.add_op("x", 1.0, DeviceClass::Mixer).unwrap();
        let y = a.add_op("y", 1.0, DeviceClass::Mixer).unwrap();
        a.add_dep(x, y).unwrap();
        a.add_dep(y, x).unwrap();
        let ScheduleError::Cycle { ops } = a.validate().unwrap_err() else {
            panic!("expected a cycle error");
        };
        assert_eq!(ops, vec!["x".to_string(), "y".to_string()]);
    }

    #[test]
    fn empty_assay_is_invalid() {
        let a = Assay::new("e").unwrap();
        assert!(matches!(a.validate(), Err(ScheduleError::Invalid(_))));
    }

    #[test]
    fn canonical_is_sorted_and_stable() {
        let mut a = Assay::new("s").unwrap();
        let b_op = a.add_op("beta", 2.0, DeviceClass::Chamber).unwrap();
        let a_op = a.add_op("alpha", 1.5, DeviceClass::Mixer).unwrap();
        a.add_dep(a_op, b_op).unwrap();
        let text = a.canonical_text();
        let alpha = text.find("op alpha").unwrap();
        let beta = text.find("op beta").unwrap();
        assert!(alpha < beta, "{text}");
        assert!(text.contains("dep alpha -> beta"), "{text}");
        assert_eq!(text, a.to_text());
    }

    #[test]
    fn topo_order_is_name_deterministic() {
        let mut a = Assay::new("t").unwrap();
        a.add_op("z", 1.0, DeviceClass::Mixer).unwrap();
        a.add_op("a", 1.0, DeviceClass::Mixer).unwrap();
        a.add_op("m", 1.0, DeviceClass::Mixer).unwrap();
        let order = a.topo_order().unwrap();
        let names: Vec<&str> = order.iter().map(|&i| a.ops()[i].name.as_str()).collect();
        assert_eq!(names, vec!["a", "m", "z"]);
    }
}
