//! `columba-schedule` — behavioral assay scheduling and storage
//! synthesis, one abstraction level above the structural netlist.
//!
//! Real assay workloads start as a *sequencing graph*: operations with
//! durations, fluid dependencies and device-class requirements. This
//! crate parses that graph from a plain-text format ([`Assay::parse`]),
//! list-schedules it onto a bounded set of mixers and chambers
//! ([`sched`]), decides where every intermediate fluid waits out its
//! idle interval ([`storage`] — the Transport-or-Store rule, with a
//! configurable long-idle policy), and emits the plain-text netlist the
//! rest of the Columba S flow consumes ([`emit`];
//! `columba_netlist::Netlist::parse` round-trip is the contract).
//!
//! The one-call front door is [`schedule`]:
//!
//! ```
//! use columba_schedule::{Assay, ScheduleOptions};
//!
//! let assay = Assay::parse(
//!     "assay demo\n\
//!      op mix duration=10 device=mixer\n\
//!      op incubate duration=60 device=chamber\n\
//!      op elute duration=5 device=mixer\n\
//!      dep mix -> incubate\n\
//!      dep incubate -> elute\n",
//! )
//! .unwrap();
//! let report = columba_schedule::schedule(&assay, &ScheduleOptions::default()).unwrap();
//! assert!(report.makespan_s >= 75.0);
//! let netlist = columba_netlist::Netlist::parse(&report.netlist_text).unwrap();
//! assert_eq!(netlist.name, "demo");
//! ```
//!
//! The three pipeline stages run under obs spans (`schedule.list`,
//! `schedule.storage`, `schedule.emit`) so a profiled service job shows
//! where its schedule time went.

#![cfg_attr(not(test), deny(clippy::unwrap_used))]
#![warn(missing_docs)]

pub mod emit;
pub mod error;
pub mod generators;
pub mod model;
pub mod parse;
pub mod sched;
pub mod storage;

pub use error::ScheduleError;
pub use model::{Assay, Dep, DeviceBounds, DeviceClass, Op};
pub use sched::{Assignment, DeviceRef, Timetable};
pub use storage::{StorageHome, StorageOp, StoragePlan, StoragePolicy};

/// Everything the scheduler is configured by. Also half of the
/// service's content-addressed cache key for assay jobs — see
/// [`ScheduleOptions::canonical_text`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScheduleOptions {
    /// Where long-idle fluids are parked.
    pub policy: StoragePolicy,
    /// Idle intervals at or below this stay in distributed channel
    /// storage regardless of policy (the Transport-or-Store rule).
    pub storage_threshold_s: f64,
    /// One transport move (device → storage or storage → device),
    /// seconds. A dedicated-chamber round trip costs twice this.
    pub transport_s: f64,
    /// Device bounds used when the assay text declares none.
    pub default_devices: DeviceBounds,
}

impl Default for ScheduleOptions {
    fn default() -> ScheduleOptions {
        ScheduleOptions {
            policy: StoragePolicy::default(),
            storage_threshold_s: 2.0,
            transport_s: 0.5,
            default_devices: DeviceBounds {
                mixers: 2,
                chambers: 1,
            },
        }
    }
}

impl ScheduleOptions {
    /// Rejects non-finite or negative knobs and impossible bounds.
    ///
    /// # Errors
    ///
    /// [`ScheduleError::Invalid`] naming the offending knob.
    pub fn validate(&self) -> Result<(), ScheduleError> {
        for (label, v) in [
            ("storage_threshold_s", self.storage_threshold_s),
            ("transport_s", self.transport_s),
        ] {
            if !(v.is_finite() && v >= 0.0) {
                return Err(ScheduleError::Invalid(format!(
                    "{label} must be finite and non-negative, got {v}"
                )));
            }
        }
        self.default_devices.validate()
    }

    /// The canonical one-line form: every knob, deterministic order.
    /// Two option sets behave identically iff these strings are equal,
    /// which is why the service hashes this into assay cache keys.
    #[must_use]
    pub fn canonical_text(&self) -> String {
        format!(
            "schedule policy={} threshold_s={} transport_s={} mixers={} chambers={}",
            self.policy,
            self.storage_threshold_s,
            self.transport_s,
            self.default_devices.mixers,
            self.default_devices.chambers,
        )
    }
}

/// The flat headline numbers of a schedule, sized for a job-status
/// line, a metrics counter or a bench artifact.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScheduleStats {
    /// Operations scheduled.
    pub ops: usize,
    /// Storage operations inserted (fluids that had to wait somewhere).
    pub storage_ops: usize,
    /// Peak number of fluids stored at the same instant.
    pub storage_peak: usize,
    /// Completion time of the assay, seconds.
    pub makespan_s: f64,
    /// Busy time over provisioned device-time: `Σ durations /
    /// ((mixers + chambers) × makespan)`.
    pub utilization: f64,
    /// The storage policy the schedule ran under.
    pub policy: StoragePolicy,
}

/// The full result of [`schedule`]: the timetable, the storage plan,
/// the emitted netlist (as a model and as canonical text), and the
/// headline stats.
#[derive(Debug, Clone)]
pub struct ScheduleReport {
    /// Per-op assignments (indexed by op index) and the makespan.
    pub timetable: Timetable,
    /// The inserted storage operations and slot counts.
    pub storage: StoragePlan,
    /// The emitted structural netlist.
    pub netlist: columba_netlist::Netlist,
    /// Canonical text of [`ScheduleReport::netlist`] — exactly what
    /// `columba_netlist::Netlist::parse` consumes.
    pub netlist_text: String,
    /// Completion time, seconds.
    pub makespan_s: f64,
    /// Busy time over provisioned device-time.
    pub utilization: f64,
    /// The device bounds the schedule ran under.
    pub devices: DeviceBounds,
    /// The options it ran under.
    pub options: ScheduleOptions,
}

impl ScheduleReport {
    /// The flat headline numbers.
    #[must_use]
    pub fn stats(&self) -> ScheduleStats {
        ScheduleStats {
            ops: self.timetable.assignments.len(),
            storage_ops: self.storage.ops.len(),
            storage_peak: self.storage.peak,
            makespan_s: self.makespan_s,
            utilization: self.utilization,
            policy: self.options.policy,
        }
    }
}

/// Whether `text` looks like the assay format rather than a netlist:
/// its first significant line starts with the `assay` keyword. The
/// service uses this to route one submission text through either
/// front end.
#[must_use]
pub fn is_assay_text(text: &str) -> bool {
    text.lines()
        .map(|raw| raw.split('#').next().unwrap_or("").trim())
        .find(|line| !line.is_empty())
        .is_some_and(|line| line.split_whitespace().next() == Some("assay"))
}

/// Schedules `assay` under `options` and emits its netlist.
///
/// Three stages, each under its own obs span:
///
/// 1. `schedule.list` — critical-path list scheduling with zero edge
///    latencies, to discover every fluid's idle interval;
/// 2. `schedule.storage` — the Transport-or-Store classification, then
///    a second scheduling pass with the resulting transport latencies,
///    then slot packing ([`storage`]);
/// 3. `schedule.emit` — projection down to the structural netlist
///    ([`emit`]).
///
/// # Errors
///
/// [`ScheduleError::Invalid`] for bad options or an empty assay,
/// [`ScheduleError::Cycle`] for a cyclic sequencing graph.
pub fn schedule(assay: &Assay, options: &ScheduleOptions) -> Result<ScheduleReport, ScheduleError> {
    options.validate()?;
    let bounds = assay.devices().unwrap_or(options.default_devices);

    let no_latency = vec![0.0; assay.deps().len()];
    let first_pass = {
        let mut span = columba_obs::span("schedule.list");
        let no_extend = vec![0.0; assay.ops().len()];
        let pass = sched::list_schedule(assay, bounds, &no_latency, &no_extend)?;
        if span.is_recording() {
            span.attr("ops", assay.ops().len());
            span.attr("makespan_s", pass.makespan_s);
        }
        pass
    };

    let (timetable, plan) = {
        let mut span = columba_obs::span("schedule.storage");
        let (kinds, extend) = storage::classify(
            assay,
            &first_pass,
            options.policy,
            options.storage_threshold_s,
            options.transport_s,
        );
        let final_pass = sched::list_schedule(assay, bounds, &no_latency, &extend)?;
        let plan = storage::materialize(assay, &final_pass, &kinds)?;
        if span.is_recording() {
            span.attr("policy", options.policy.as_str());
            span.attr("storage_ops", plan.ops.len());
            span.attr("storage_peak", plan.peak);
        }
        (final_pass, plan)
    };

    let netlist = {
        let mut span = columba_obs::span("schedule.emit");
        let netlist = emit::emit(assay, &timetable, &plan)?;
        if span.is_recording() {
            span.attr("units", netlist.functional_unit_count());
            span.attr("connections", netlist.connections().len());
        }
        netlist
    };

    let busy: f64 = assay.ops().iter().map(|o| o.duration_s).sum();
    let capacity = (bounds.mixers + bounds.chambers) as f64 * timetable.makespan_s;
    let utilization = if capacity > 0.0 {
        (busy / capacity).min(1.0)
    } else {
        0.0
    };
    Ok(ScheduleReport {
        makespan_s: timetable.makespan_s,
        utilization,
        netlist_text: netlist.canonical_text(),
        netlist,
        timetable,
        storage: plan,
        devices: bounds,
        options: *options,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idle_assay_text() -> &'static str {
        "assay idle\n\
         devices mixers=2 chambers=2\n\
         op fast duration=10 device=mixer\n\
         op slow duration=100 device=chamber\n\
         op join duration=10 device=chamber\n\
         dep fast -> join\n\
         dep slow -> join\n"
    }

    #[test]
    fn end_to_end_schedule() {
        let assay = Assay::parse(idle_assay_text()).unwrap();
        let report = schedule(&assay, &ScheduleOptions::default()).unwrap();
        assert_eq!(report.timetable.assignments.len(), 3);
        assert!(report.makespan_s >= 110.0);
        assert!(report.utilization > 0.0 && report.utilization <= 1.0);
        assert_eq!(report.storage.ops.len(), 1, "fast idles while slow runs");
        let n = columba_netlist::Netlist::parse(&report.netlist_text).unwrap();
        assert_eq!(n.canonical_text(), report.netlist_text);
        let stats = report.stats();
        assert_eq!(stats.ops, 3);
        assert_eq!(stats.storage_ops, 1);
        assert_eq!(stats.policy, StoragePolicy::Distributed);
    }

    #[test]
    fn policies_produce_different_makespans_here() {
        let assay = Assay::parse(idle_assay_text()).unwrap();
        let distributed_opts = ScheduleOptions {
            policy: StoragePolicy::Distributed,
            ..ScheduleOptions::default()
        };
        let distributed = schedule(&assay, &distributed_opts).unwrap();
        let dedicated_opts = ScheduleOptions {
            policy: StoragePolicy::Dedicated,
            ..ScheduleOptions::default()
        };
        let dedicated = schedule(&assay, &dedicated_opts).unwrap();
        assert!(
            dedicated.makespan_s > distributed.makespan_s,
            "dedicated {} vs distributed {}",
            dedicated.makespan_s,
            distributed.makespan_s
        );
        assert!(dedicated.netlist.component_by_name("store0").is_some());
    }

    #[test]
    fn options_validate_and_canonicalize() {
        let opts = ScheduleOptions::default();
        opts.validate().unwrap();
        let canon = opts.canonical_text();
        assert!(canon.contains("policy=distributed"), "{canon}");
        assert!(canon.contains("threshold_s=2"), "{canon}");
        let mut bad = opts;
        bad.transport_s = f64::NAN;
        assert!(bad.validate().is_err());
        let mut bad = opts;
        bad.storage_threshold_s = -1.0;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn same_assay_and_options_give_identical_netlist_text() {
        let a = Assay::parse(idle_assay_text()).unwrap();
        let opts = ScheduleOptions::default();
        let one = schedule(&a, &opts).unwrap();
        let two = schedule(&Assay::parse(&a.canonical_text()).unwrap(), &opts).unwrap();
        assert_eq!(one.netlist_text, two.netlist_text);
    }

    #[test]
    fn assay_sniffing() {
        assert!(is_assay_text("assay x\nop a duration=1 device=mixer\n"));
        assert!(is_assay_text("# comment\n\n  assay x\n"));
        assert!(!is_assay_text("chip demo\nmixer m1\n"));
        assert!(!is_assay_text(""));
        assert!(!is_assay_text("# just a comment\n"));
    }

    #[test]
    fn cyclic_assay_fails_with_op_ids() {
        let mut a = Assay::new("c").unwrap();
        let x = a.add_op("x", 1.0, DeviceClass::Mixer).unwrap();
        let y = a.add_op("y", 1.0, DeviceClass::Mixer).unwrap();
        a.add_dep(x, y).unwrap();
        a.add_dep(y, x).unwrap();
        let err = schedule(&a, &ScheduleOptions::default()).unwrap_err();
        assert!(matches!(err, ScheduleError::Cycle { .. }), "{err}");
    }
}
