//! `columba-schedule` — schedule an assay text and print its netlist.
//!
//! ```sh
//! columba-schedule cases/pooled_capture.assay          # netlist on stdout
//! columba-schedule - < my.assay                        # read stdin
//! columba-schedule --policy dedicated my.assay         # storage policy
//! columba-schedule --threshold 5 --transport 1 my.assay
//! columba-schedule --sweep my.assay                    # makespan per policy
//! ```
//!
//! The emitted netlist is preceded by `#`-comment lines carrying the
//! schedule report (makespan, utilization, storage pressure), so the
//! output stays directly consumable by `columba-netlist` and the
//! service's `POST /synthesize`.

use std::io::Read as _;

use columba_schedule::{Assay, ScheduleOptions, StoragePolicy};

fn value_flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn f64_flag(args: &[String], name: &str, default: f64) -> f64 {
    match value_flag(args, name) {
        None => default,
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("error: {name} requires a number, got `{v}`");
            std::process::exit(2);
        }),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!(
            "usage: columba-schedule [--policy dedicated|distributed|spill] \
             [--threshold <s>] [--transport <s>] [--sweep] <file|->"
        );
        return;
    }
    let mut options = ScheduleOptions::default();
    if let Some(name) = value_flag(&args, "--policy") {
        options.policy = StoragePolicy::parse(&name).unwrap_or_else(|| {
            eprintln!("error: --policy must be dedicated|distributed|spill, got `{name}`");
            std::process::exit(2);
        });
    }
    options.storage_threshold_s = f64_flag(&args, "--threshold", options.storage_threshold_s);
    options.transport_s = f64_flag(&args, "--transport", options.transport_s);

    let value_flags = ["--policy", "--threshold", "--transport"];
    let mut skip = false;
    let mut input: Option<String> = None;
    for arg in &args {
        if skip {
            skip = false;
            continue;
        }
        if value_flags.contains(&arg.as_str()) {
            skip = true;
            continue;
        }
        if arg.starts_with("--") {
            continue;
        }
        input = Some(arg.clone());
        break;
    }
    let text = match input.as_deref() {
        None | Some("-") => {
            let mut buf = String::new();
            if let Err(e) = std::io::stdin().read_to_string(&mut buf) {
                eprintln!("error: reading stdin: {e}");
                std::process::exit(2);
            }
            buf
        }
        Some(path) => std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("error: reading {path}: {e}");
            std::process::exit(2);
        }),
    };

    let assay = match Assay::parse(&text) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };

    if args.iter().any(|a| a == "--sweep") {
        println!("# storage-policy sweep for `{}`", assay.name);
        for policy in [
            StoragePolicy::Dedicated,
            StoragePolicy::Distributed,
            StoragePolicy::Spill,
        ] {
            let opts = ScheduleOptions { policy, ..options };
            match columba_schedule::schedule(&assay, &opts) {
                Ok(r) => println!(
                    "{policy:>12}: makespan {:.1}s, {} storage op(s), peak {}, utilization {:.2}",
                    r.makespan_s,
                    r.storage.ops.len(),
                    r.storage.peak,
                    r.utilization
                ),
                Err(e) => {
                    eprintln!("error: {e}");
                    std::process::exit(1);
                }
            }
        }
        return;
    }

    match columba_schedule::schedule(&assay, &options) {
        Ok(report) => {
            let stats = report.stats();
            println!("# scheduled by columba-schedule");
            println!("# {}", options.canonical_text());
            println!(
                "# makespan_s={:.3} ops={} storage_ops={} storage_peak={} utilization={:.3}",
                stats.makespan_s,
                stats.ops,
                stats.storage_ops,
                stats.storage_peak,
                stats.utilization
            );
            print!("{}", report.netlist_text);
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
