//! Synthetic assay generators, mirroring `columba_netlist::generators`:
//! a few named protocols for docs/smoke cases plus a seeded random
//! DAG generator for the bench and fuzz fleets.

use columba_prng::Rng;

use crate::model::{Assay, DeviceBounds, DeviceClass};

/// A pooled immunoprecipitation protocol: parallel sample preps feeding
/// one pooled capture, then elution — the fast preps idle while the
/// slow capture runs, so storage decisions matter.
///
/// # Panics
///
/// Never: the construction is static and valid for `samples` in
/// `1..=9` (clamped).
#[must_use]
pub fn pooled_capture(samples: usize) -> Assay {
    let samples = samples.clamp(1, 9);
    let mut a = Assay::new(format!("pooled_capture{samples}")).expect("static name");
    a.set_devices(DeviceBounds {
        mixers: 2,
        chambers: 1,
    })
    .expect("static bounds");
    let capture = a
        .add_op("capture", 120.0, DeviceClass::Chamber)
        .expect("fresh name");
    for i in 0..samples {
        let prep = a
            .add_op(format!("prep{i}"), 15.0, DeviceClass::Mixer)
            .expect("fresh name");
        a.add_dep(prep, capture).expect("fresh edge");
    }
    let elute = a
        .add_op("elute", 20.0, DeviceClass::Mixer)
        .expect("fresh name");
    a.add_dep(capture, elute).expect("fresh edge");
    a
}

/// A serial-dilution chain: `stages` mix steps back to back on one
/// mixer — the degenerate no-storage case.
#[must_use]
pub fn serial_dilution(stages: usize) -> Assay {
    let stages = stages.clamp(2, 64);
    let mut a = Assay::new(format!("serial_dilution{stages}")).expect("static name");
    let mut prev = None;
    for i in 0..stages {
        let op = a
            .add_op(format!("dilute{i}"), 12.0, DeviceClass::Mixer)
            .expect("fresh name");
        if let Some(p) = prev {
            a.add_dep(p, op).expect("fresh edge");
        }
        prev = Some(op);
    }
    a
}

/// A seeded random assay DAG with `ops` operations. Edges always point
/// from a lower to a higher index, so the graph is acyclic by
/// construction; roughly a third of the ops are chamber steps with
/// long durations, which is what makes fluids idle.
///
/// # Panics
///
/// Never for `ops >= 1` (clamped to `1..=512`).
#[must_use]
pub fn random_assay(rng: &mut Rng, ops: usize) -> Assay {
    let ops = ops.clamp(1, 512);
    let mut a = Assay::new(format!("random{ops}")).expect("static name");
    for i in 0..ops {
        let (class, duration) = if rng.gen_bool(0.33) {
            (DeviceClass::Chamber, 30.0 + rng.gen_f64() * 150.0)
        } else {
            (DeviceClass::Mixer, 5.0 + rng.gen_f64() * 20.0)
        };
        a.add_op(format!("op{i:03}"), duration, class)
            .expect("fresh name");
    }
    for to in 1..ops {
        let fanin = 1 + usize::from(rng.gen_bool(0.3));
        for _ in 0..fanin {
            let from = rng.gen_range(0..to);
            // duplicate edges are rejected by the model; skip quietly
            let _ = a.add_dep(from, to);
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{schedule, ScheduleOptions};

    #[test]
    fn named_protocols_schedule_cleanly() {
        for assay in [pooled_capture(3), serial_dilution(6)] {
            assay.validate().unwrap();
            let report = schedule(&assay, &ScheduleOptions::default()).unwrap();
            assert!(report.makespan_s > 0.0);
            let text = report.netlist_text.clone();
            let n = columba_netlist::Netlist::parse(&text).unwrap();
            assert_eq!(n.canonical_text(), text);
        }
    }

    #[test]
    fn pooled_capture_has_idle_fluids() {
        let report = schedule(&pooled_capture(3), &ScheduleOptions::default()).unwrap();
        assert!(
            !report.storage.ops.is_empty(),
            "preps must idle while capture runs"
        );
    }

    #[test]
    fn serial_dilution_needs_no_storage() {
        let report = schedule(&serial_dilution(6), &ScheduleOptions::default()).unwrap();
        assert!(report.storage.ops.is_empty());
    }

    #[test]
    fn random_assays_are_valid_and_deterministic() {
        for seed in 0..8u64 {
            let a = random_assay(&mut Rng::seed_from_u64(seed), 24);
            a.validate().unwrap();
            let b = random_assay(&mut Rng::seed_from_u64(seed), 24);
            assert_eq!(a.canonical_text(), b.canonical_text());
        }
    }
}
