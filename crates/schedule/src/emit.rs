//! Projecting a schedule down to the structural netlist.
//!
//! The contract: whatever this module emits must parse back through
//! `columba_netlist::Netlist::parse` — byte-for-byte round-trip of the
//! canonical text — because the emitted text is exactly what the
//! service's existing `/synthesize` path (and its content-addressed
//! cache) consumes.
//!
//! Mapping rules:
//!
//! * every **used device** becomes one component: mixers `mix0..`,
//!   chambers `cham0..`;
//! * evicted fluids get one physical storage component per distinct
//!   **(producer device, consumer device) pair** — a storage chamber
//!   `store0..` for dedicated homes, a rotary mixer `rot0..` for
//!   spills. Per-pair (rather than per packed time slot) matters for
//!   routability: a storage component only ever subdivides one edge of
//!   the acyclic device flow graph, which cannot create a cycle,
//!   whereas a slot shared across pairs could. The
//!   [`StoragePlan`]'s slot counts remain the *capacity* stats;
//! * every **source op** (no incoming dependency) gets a reagent inlet
//!   port `in_<op>`, every **sink op** a product outlet `out_<op>`;
//! * every **dependency edge** becomes a channel from the producer's
//!   device to the consumer's; a pair that owns a storage component
//!   routes *all* its traffic through it (the store sits in the pair's
//!   channel path — a direct channel parallel to the detour would be
//!   redundant plumbing). Duplicate channels between the same component
//!   pair collapse (the schedule time-shares them), and an edge between
//!   two ops on the same device needs no channel at all.

use columba_netlist::{ChamberSpec, Endpoint, MixerSpec, Netlist, UnitSide};

use crate::error::ScheduleError;
use crate::model::{Assay, DeviceClass};
use crate::sched::Timetable;
use crate::storage::{StorageHome, StoragePlan};

/// Builds the netlist for a scheduled assay.
///
/// # Errors
///
/// [`ScheduleError::Invalid`] when the netlist model rejects the
/// projection (it never should for a valid schedule — the message says
/// what to report if it does).
pub(crate) fn emit(
    assay: &Assay,
    schedule: &Timetable,
    storage: &StoragePlan,
) -> Result<Netlist, ScheduleError> {
    let fail = |what: &str, e: columba_netlist::NetlistError| {
        ScheduleError::Invalid(format!("emitting {what}: {e}"))
    };
    let mut n = Netlist::new(assay.name.clone());
    let mut mixers = Vec::with_capacity(schedule.mixers_used);
    for i in 0..schedule.mixers_used {
        mixers.push(
            n.add_mixer(format!("mix{i}"), MixerSpec::default())
                .map_err(|e| fail("a mixer", e))?,
        );
    }
    let mut chambers = Vec::with_capacity(schedule.chambers_used);
    for i in 0..schedule.chambers_used {
        chambers.push(
            n.add_chamber(format!("cham{i}"), ChamberSpec::default())
                .map_err(|e| fail("a chamber", e))?,
        );
    }
    let comp_of = |op: usize| {
        let device = schedule.assignments[op].device;
        match device.class {
            DeviceClass::Mixer => mixers[device.index],
            DeviceClass::Chamber => chambers[device.index],
        }
    };

    // Reagent inlets and product outlets, in name order for a stable
    // canonical form.
    let endpoints_named = |ops: Vec<usize>, prefix: &str| -> Vec<(usize, String)> {
        let mut named: Vec<(usize, String)> = ops
            .into_iter()
            .map(|op| (op, format!("{prefix}_{}", assay.ops()[op].name)))
            .collect();
        named.sort_by(|a, b| a.1.cmp(&b.1));
        named
    };
    for (op, name) in endpoints_named(assay.sources(), "in") {
        let port = n.add_port(name).map_err(|e| fail("an inlet port", e))?;
        n.connect(
            Endpoint::Port(port),
            Endpoint::Unit {
                component: comp_of(op),
                side: UnitSide::Left,
            },
        )
        .map_err(|e| fail("an inlet channel", e))?;
    }

    // Dependency channels, in canonical (from-name, to-name) order.
    let mut edges: Vec<usize> = (0..assay.deps().len()).collect();
    edges.sort_by_key(|&e| {
        let d = assay.deps()[e];
        (
            assay.ops()[d.from].name.clone(),
            assay.ops()[d.to].name.clone(),
        )
    });
    let mut seen: std::collections::HashSet<(usize, usize)> = std::collections::HashSet::new();
    let mut connect_pair = |n: &mut Netlist,
                            from: columba_netlist::ComponentId,
                            to: columba_netlist::ComponentId|
     -> Result<(), ScheduleError> {
        if from == to || !seen.insert((from.0, to.0)) {
            return Ok(());
        }
        n.connect(
            Endpoint::Unit {
                component: from,
                side: UnitSide::Right,
            },
            Endpoint::Unit {
                component: to,
                side: UnitSide::Left,
            },
        )
        .map_err(|e| fail("a channel", e))
    };
    // One storage component per distinct (producer, consumer) device
    // pair, named in first-encounter order over the canonical edge
    // order so the text stays deterministic. Pass 1 materializes the
    // components; pass 2 wires every edge — a pair that owns a storage
    // component routes *all* its traffic through it (the store sits in
    // the pair's channel path; a parallel direct channel alongside the
    // detour would be redundant plumbing).
    let home_of = |e: usize| {
        storage
            .ops
            .iter()
            .find(|o| o.dep == e)
            .map(|o| o.home)
            .unwrap_or(StorageHome::Channel)
    };
    let mut pair_store: std::collections::HashMap<(usize, usize), columba_netlist::ComponentId> =
        std::collections::HashMap::new();
    let mut store_count = 0usize;
    let mut rot_count = 0usize;
    for &e in &edges {
        let d = assay.deps()[e];
        let (from, to) = (comp_of(d.from), comp_of(d.to));
        if from == to || pair_store.contains_key(&(from.0, to.0)) {
            continue;
        }
        match home_of(e) {
            StorageHome::Channel => {}
            StorageHome::Chamber { .. } => {
                let id = n
                    .add_chamber(format!("store{store_count}"), ChamberSpec::default())
                    .map_err(|err| fail("a storage chamber", err))?;
                store_count += 1;
                pair_store.insert((from.0, to.0), id);
            }
            StorageHome::Rotary { .. } => {
                let id = n
                    .add_mixer(format!("rot{rot_count}"), MixerSpec::default())
                    .map_err(|err| fail("a spill mixer", err))?;
                rot_count += 1;
                pair_store.insert((from.0, to.0), id);
            }
        }
    }
    for e in edges {
        let d = assay.deps()[e];
        let (from, to) = (comp_of(d.from), comp_of(d.to));
        if from == to {
            // Same-device edges carry no channel at all, stored or
            // not: the fluid waits in place.
            continue;
        }
        match pair_store.get(&(from.0, to.0)) {
            Some(&store) => {
                connect_pair(&mut n, from, store)?;
                connect_pair(&mut n, store, to)?;
            }
            None => connect_pair(&mut n, from, to)?,
        }
    }

    for (op, name) in endpoints_named(assay.sinks(), "out") {
        let port = n.add_port(name).map_err(|e| fail("an outlet port", e))?;
        n.connect(
            Endpoint::Unit {
                component: comp_of(op),
                side: UnitSide::Right,
            },
            Endpoint::Port(port),
        )
        .map_err(|e| fail("an outlet channel", e))?;
    }

    n.validate()
        .map_err(|e| ScheduleError::Invalid(format!("emitted netlist failed validation: {e}")))?;
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::DeviceBounds;
    use crate::sched::list_schedule;
    use crate::storage::{classify, materialize, StoragePolicy};

    fn emit_for(assay: &Assay, policy: StoragePolicy) -> Netlist {
        let bounds = assay.devices().unwrap_or(DeviceBounds {
            mixers: 2,
            chambers: 2,
        });
        let no_lat = vec![0.0; assay.deps().len()];
        let no_ext = vec![0.0; assay.ops().len()];
        let pass = list_schedule(assay, bounds, &no_lat, &no_ext).unwrap();
        let (kinds, ext) = classify(assay, &pass, policy, 2.0, 0.5);
        let fin = list_schedule(assay, bounds, &no_lat, &ext).unwrap();
        let plan = materialize(assay, &fin, &kinds).unwrap();
        emit(assay, &fin, &plan).unwrap()
    }

    fn idle_assay() -> Assay {
        let mut a = Assay::new("idle").unwrap();
        let fast = a.add_op("fast", 10.0, DeviceClass::Mixer).unwrap();
        let slow = a.add_op("slow", 100.0, DeviceClass::Chamber).unwrap();
        let join = a.add_op("join", 10.0, DeviceClass::Chamber).unwrap();
        a.add_dep(fast, join).unwrap();
        a.add_dep(slow, join).unwrap();
        a
    }

    #[test]
    fn parses_back_through_columba_netlist() {
        let n = emit_for(&idle_assay(), StoragePolicy::Dedicated);
        let text = n.canonical_text();
        let again = Netlist::parse(&text).expect("round-trip");
        assert_eq!(again.canonical_text(), text);
    }

    #[test]
    fn dedicated_storage_materializes_a_chamber() {
        let n = emit_for(&idle_assay(), StoragePolicy::Dedicated);
        assert!(n.component_by_name("store0").is_some(), "{}", n.to_text());
        let d = emit_for(&idle_assay(), StoragePolicy::Distributed);
        assert!(d.component_by_name("store0").is_none(), "{}", d.to_text());
    }

    #[test]
    fn spill_materializes_a_rotary_mixer() {
        let n = emit_for(&idle_assay(), StoragePolicy::Spill);
        assert!(n.component_by_name("rot0").is_some(), "{}", n.to_text());
    }

    #[test]
    fn sources_and_sinks_become_ports() {
        let n = emit_for(&idle_assay(), StoragePolicy::Distributed);
        assert!(n.port_by_name("in_fast").is_some());
        assert!(n.port_by_name("in_slow").is_some());
        assert!(n.port_by_name("out_join").is_some());
    }

    #[test]
    fn same_device_edges_need_no_channel() {
        let mut a = Assay::new("serial").unwrap();
        let x = a.add_op("x", 5.0, DeviceClass::Mixer).unwrap();
        let y = a.add_op("y", 5.0, DeviceClass::Mixer).unwrap();
        a.add_dep(x, y).unwrap();
        a.set_devices(DeviceBounds {
            mixers: 1,
            chambers: 1,
        })
        .unwrap();
        let n = emit_for(&a, StoragePolicy::Distributed);
        // both ops share mix0: only the inlet and outlet channels exist
        assert_eq!(n.connections().len(), 2, "{}", n.to_text());
    }
}
