//! Storage synthesis: deciding where every intermediate fluid waits.
//!
//! Between its producer finishing and its consumer starting, a fluid
//! must live somewhere. Following the Transport-or-Store rule, the
//! decision is made *per fluid by idle-interval length*:
//!
//! * an idle interval at or below `storage_threshold_s` always stays in
//!   **distributed channel storage** — the fluid simply waits inside
//!   the channel connecting producer to consumer, at zero transport
//!   cost;
//! * a longer interval is evicted to the policy's long-term home:
//!   - [`StoragePolicy::Dedicated`] — a dedicated storage chamber,
//!     paying a load **and** a retrieve transport (`2 × transport_s`)
//!     on the edge;
//!   - [`StoragePolicy::Distributed`] — the channel again (channels are
//!     storage; nothing moves, nothing is paid);
//!   - [`StoragePolicy::Spill`] — an idle rotary mixer doubling as
//!     storage, paying one transport (the retrieve happens as part of
//!     the consumer's load).
//!
//! The transport penalties feed back into a second scheduling pass as
//! per-op *device-occupancy extensions*: the producer's device spends
//! `transport_s` loading each evicted fluid out (chamber homes only —
//! a spill is pushed as part of the mixer's last rotation), and the
//! consumer's device spends `transport_s` retrieving each one back.
//! Extensions bind even though the stored edge itself has slack — the
//! very slack that triggered storage — so the storage decision
//! genuinely changes the makespan: dedicated storage trades schedule
//! time for channel simplicity, distributed storage the reverse,
//! exactly the trade the papers measure. Chamber/rotary homes are then
//! packed into *slots* (greedy interval partitioning), and every slot
//! becomes one physical storage component in the emitted netlist.

use crate::error::ScheduleError;
use crate::model::Assay;
use crate::sched::Timetable;

/// Where long-idle fluids are parked.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum StoragePolicy {
    /// Long-idle fluids move to a dedicated storage chamber.
    Dedicated,
    /// Fluids stay in the channels that already connect their ops.
    #[default]
    Distributed,
    /// Long-idle fluids spill into an idle rotary mixer.
    Spill,
}

impl StoragePolicy {
    /// Stable lowercase name (options canon, CLI flag, job status).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            StoragePolicy::Dedicated => "dedicated",
            StoragePolicy::Distributed => "distributed",
            StoragePolicy::Spill => "spill",
        }
    }

    /// Parses the stable name back; `None` for anything else.
    #[must_use]
    pub fn parse(name: &str) -> Option<StoragePolicy> {
        match name {
            "dedicated" => Some(StoragePolicy::Dedicated),
            "distributed" => Some(StoragePolicy::Distributed),
            "spill" => Some(StoragePolicy::Spill),
            _ => None,
        }
    }
}

impl std::fmt::Display for StoragePolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The home a stored fluid was assigned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageHome {
    /// Distributed channel storage: the fluid waits in the channel.
    Channel,
    /// Dedicated storage chamber number `slot`.
    Chamber {
        /// Slot index; one physical storage chamber per slot.
        slot: usize,
    },
    /// Rotary mixer number `slot` doubling as storage.
    Rotary {
        /// Slot index; one spill mixer per slot.
        slot: usize,
    },
}

impl std::fmt::Display for StorageHome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageHome::Channel => write!(f, "channel"),
            StorageHome::Chamber { slot } => write!(f, "store{slot}"),
            StorageHome::Rotary { slot } => write!(f, "rot{slot}"),
        }
    }
}

/// One inserted storage operation: `fluid` (named after its producer)
/// is held in `home` for the whole interval `[from_s, until_s]`.
#[derive(Debug, Clone, PartialEq)]
pub struct StorageOp {
    /// Index of the dependency edge in [`Assay::deps`] this op serves.
    pub dep: usize,
    /// The stored fluid, named after the op that produced it.
    pub fluid: String,
    /// Producer end time — when the fluid becomes idle.
    pub from_s: f64,
    /// Consumer start time — when the idle interval ends.
    pub until_s: f64,
    /// Where it waits.
    pub home: StorageHome,
}

/// The storage pass output: per-edge latencies to reschedule with, then
/// (after the second pass) the concrete storage ops and slot counts.
#[derive(Debug, Clone, PartialEq)]
pub struct StoragePlan {
    /// The inserted storage operations, sorted by `(from_s, fluid)`.
    pub ops: Vec<StorageOp>,
    /// Dedicated storage chambers needed (0 unless policy is
    /// `Dedicated`).
    pub chamber_slots: usize,
    /// Spill mixers needed (0 unless policy is `Spill`).
    pub rotary_slots: usize,
    /// Peak number of fluids stored at the same instant (any home).
    pub peak: usize,
    /// Total fluid-seconds spent in storage.
    pub total_s: f64,
}

/// Idle intervals shorter than this are scheduling noise, not storage.
const EPS_S: f64 = 1e-9;

/// What kind of home an edge's fluid needs, decided from the
/// first-pass schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum HomeKind {
    /// No idle interval: the fluid flows straight through.
    None,
    /// Distributed channel storage.
    Channel,
    /// Dedicated storage chamber.
    Chamber,
    /// Spill to an idle rotary mixer.
    Rotary,
}

/// Classifies every dependency edge from the first-pass schedule and
/// returns `(kinds, extend)` — per-edge homes plus the per-op
/// device-occupancy extensions that drive the second scheduling pass:
/// `transport_s` of load time on the producer per chamber-stored
/// output, `transport_s` of retrieve time on the consumer per
/// chamber- or rotary-stored input.
pub(crate) fn classify(
    assay: &Assay,
    pass: &Timetable,
    policy: StoragePolicy,
    threshold_s: f64,
    transport_s: f64,
) -> (Vec<HomeKind>, Vec<f64>) {
    let mut kinds = Vec::with_capacity(assay.deps().len());
    let mut extend = vec![0.0f64; assay.ops().len()];
    for d in assay.deps() {
        let idle = pass.assignments[d.to].start_s - pass.assignments[d.from].end_s;
        let same_device = pass.assignments[d.from].device == pass.assignments[d.to].device;
        let kind = if idle <= EPS_S {
            HomeKind::None
        } else if same_device || idle <= threshold_s {
            // A fluid whose producer and consumer share a device never
            // leaves it: evicting it elsewhere would route the device
            // into itself. It waits in place at zero transport cost.
            HomeKind::Channel
        } else {
            match policy {
                StoragePolicy::Dedicated => HomeKind::Chamber,
                StoragePolicy::Distributed => HomeKind::Channel,
                StoragePolicy::Spill => HomeKind::Rotary,
            }
        };
        match kind {
            HomeKind::None | HomeKind::Channel => {}
            HomeKind::Chamber => {
                extend[d.from] += transport_s; // load out to the store
                extend[d.to] += transport_s; // retrieve back in
            }
            HomeKind::Rotary => {
                extend[d.to] += transport_s; // retrieve only
            }
        }
        kinds.push(kind);
    }
    (kinds, extend)
}

/// Materializes the storage ops against the *final* schedule: computes
/// each stored fluid's real idle interval, packs chamber/rotary homes
/// into slots (greedy interval partitioning, so slot count equals the
/// peak concurrent residency of that home kind) and gathers the
/// pressure stats.
///
/// # Errors
///
/// [`ScheduleError::Invalid`] if `kinds` does not match the dependency
/// count (an internal contract violation).
pub(crate) fn materialize(
    assay: &Assay,
    schedule: &Timetable,
    kinds: &[HomeKind],
) -> Result<StoragePlan, ScheduleError> {
    if kinds.len() != assay.deps().len() {
        return Err(ScheduleError::Invalid(format!(
            "storage kinds table has {} entries for {} dependencies",
            kinds.len(),
            assay.deps().len()
        )));
    }
    let mut ops: Vec<StorageOp> = Vec::new();
    for (e, d) in assay.deps().iter().enumerate() {
        let from = schedule.assignments[d.from].end_s;
        let until = schedule.assignments[d.to].start_s;
        if kinds[e] == HomeKind::None || until - from <= EPS_S {
            continue;
        }
        // Defensive re-check against the *final* schedule: if the
        // second pass co-located producer and consumer, the fluid
        // waits in place — a chamber/rotary home would route the
        // device into itself.
        let kind = if schedule.assignments[d.from].device == schedule.assignments[d.to].device {
            HomeKind::Channel
        } else {
            kinds[e]
        };
        let home = match kind {
            HomeKind::Channel => StorageHome::Channel,
            // slot filled in below, after sorting
            HomeKind::Chamber => StorageHome::Chamber { slot: 0 },
            HomeKind::Rotary => StorageHome::Rotary { slot: 0 },
            HomeKind::None => unreachable!("filtered above"),
        };
        ops.push(StorageOp {
            dep: e,
            fluid: assay.ops()[d.from].name.clone(),
            from_s: from,
            until_s: until,
            home,
        });
    }
    ops.sort_by(|a, b| {
        a.from_s
            .partial_cmp(&b.from_s)
            .expect("schedule times are finite")
            .then_with(|| a.fluid.cmp(&b.fluid))
    });
    // Greedy interval partitioning per home kind: reuse the first slot
    // whose previous resident has already left, else open a new one.
    let mut chamber_free: Vec<f64> = Vec::new();
    let mut rotary_free: Vec<f64> = Vec::new();
    for op in &mut ops {
        let slots = match op.home {
            StorageHome::Channel => continue,
            StorageHome::Chamber { .. } => &mut chamber_free,
            StorageHome::Rotary { .. } => &mut rotary_free,
        };
        let slot = match slots.iter().position(|&free| free <= op.from_s + EPS_S) {
            Some(s) => s,
            None => {
                slots.push(0.0);
                slots.len() - 1
            }
        };
        slots[slot] = op.until_s;
        op.home = match op.home {
            StorageHome::Chamber { .. } => StorageHome::Chamber { slot },
            StorageHome::Rotary { .. } => StorageHome::Rotary { slot },
            StorageHome::Channel => unreachable!("skipped above"),
        };
    }
    // Peak concurrent residency across every home via an event sweep.
    let mut events: Vec<(f64, i32)> = ops
        .iter()
        .flat_map(|o| [(o.from_s, 1), (o.until_s, -1)])
        .collect();
    events.sort_by(|a, b| {
        a.0.partial_cmp(&b.0)
            .expect("finite times")
            .then_with(|| a.1.cmp(&b.1))
    });
    let (mut live, mut peak) = (0i32, 0i32);
    for (_, delta) in events {
        live += delta;
        peak = peak.max(live);
    }
    let total_s = ops.iter().map(|o| o.until_s - o.from_s).sum();
    Ok(StoragePlan {
        chamber_slots: chamber_free.len(),
        rotary_slots: rotary_free.len(),
        peak: usize::try_from(peak.max(0)).unwrap_or(0),
        total_s,
        ops,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{DeviceBounds, DeviceClass};
    use crate::sched::list_schedule;

    /// Producer finishes early, consumer also needs a second slow input
    /// — the fast fluid idles for 90 s. The join runs in a chamber so
    /// the stored edge crosses devices (a same-device wait would stay
    /// in place and never be evicted).
    fn idle_assay() -> Assay {
        let mut a = Assay::new("idle").unwrap();
        let fast = a.add_op("fast", 10.0, DeviceClass::Mixer).unwrap();
        let slow = a.add_op("slow", 100.0, DeviceClass::Chamber).unwrap();
        let join = a.add_op("join", 10.0, DeviceClass::Chamber).unwrap();
        a.add_dep(fast, join).unwrap();
        a.add_dep(slow, join).unwrap();
        a
    }

    fn bounds() -> DeviceBounds {
        DeviceBounds {
            mixers: 2,
            chambers: 2,
        }
    }

    #[test]
    fn short_idle_stays_in_channel_under_every_policy() {
        let mut a = Assay::new("s").unwrap();
        let p = a.add_op("p", 10.0, DeviceClass::Mixer).unwrap();
        let q = a.add_op("q", 11.0, DeviceClass::Mixer).unwrap();
        let c = a.add_op("c", 5.0, DeviceClass::Mixer).unwrap();
        a.add_dep(p, c).unwrap();
        a.add_dep(q, c).unwrap();
        // p idles 1 s while q finishes — under the 2 s threshold
        let pass = list_schedule(&a, bounds(), &[0.0, 0.0], &[0.0; 3]).unwrap();
        for policy in [
            StoragePolicy::Dedicated,
            StoragePolicy::Distributed,
            StoragePolicy::Spill,
        ] {
            let (kinds, ext) = classify(&a, &pass, policy, 2.0, 0.5);
            assert_eq!(kinds[0], HomeKind::Channel, "{policy}");
            assert!(ext.iter().all(|&e| e == 0.0), "{policy}");
            assert_eq!(kinds[1], HomeKind::None, "q flows straight into c");
        }
    }

    #[test]
    fn long_idle_follows_the_policy() {
        let a = idle_assay();
        let pass = list_schedule(&a, bounds(), &[0.0, 0.0], &[0.0; 3]).unwrap();
        // (policy, home kind, producer load, consumer retrieve)
        let cases = [
            (StoragePolicy::Dedicated, HomeKind::Chamber, 0.5, 0.5),
            (StoragePolicy::Distributed, HomeKind::Channel, 0.0, 0.0),
            (StoragePolicy::Spill, HomeKind::Rotary, 0.0, 0.5),
        ];
        for (policy, kind, load, retrieve) in cases {
            let (kinds, ext) = classify(&a, &pass, policy, 2.0, 0.5);
            assert_eq!(kinds[0], kind, "{policy}");
            assert_eq!(ext[0], load, "{policy}: producer `fast` load");
            assert_eq!(ext[2], retrieve, "{policy}: consumer `join` retrieve");
        }
    }

    #[test]
    fn same_device_long_idle_waits_in_place() {
        // With one mixer, producer and consumer share it; the fluid
        // idles 90 s but must not be evicted — a chamber home would
        // route the mixer into itself.
        let mut a = Assay::new("inplace").unwrap();
        let p = a.add_op("p", 10.0, DeviceClass::Mixer).unwrap();
        let slow = a.add_op("slow", 100.0, DeviceClass::Chamber).unwrap();
        let c = a.add_op("c", 10.0, DeviceClass::Mixer).unwrap();
        a.add_dep(p, c).unwrap();
        a.add_dep(slow, c).unwrap();
        let b = DeviceBounds {
            mixers: 1,
            chambers: 1,
        };
        let pass = list_schedule(&a, b, &[0.0, 0.0], &[0.0; 3]).unwrap();
        assert_eq!(
            pass.assignments[p].device, pass.assignments[c].device,
            "one mixer serves both"
        );
        let (kinds, ext) = classify(&a, &pass, StoragePolicy::Dedicated, 2.0, 0.5);
        assert_eq!(kinds[0], HomeKind::Channel, "waits in place, not evicted");
        assert!(ext.iter().all(|&e| e == 0.0), "no transport paid");
    }

    #[test]
    fn materialize_covers_the_idle_interval_and_packs_slots() {
        let a = idle_assay();
        let pass = list_schedule(&a, bounds(), &[0.0, 0.0], &[0.0; 3]).unwrap();
        let (kinds, ext) = classify(&a, &pass, StoragePolicy::Dedicated, 2.0, 0.5);
        let fin = list_schedule(&a, bounds(), &[0.0, 0.0], &ext).unwrap();
        let plan = materialize(&a, &fin, &kinds).unwrap();
        assert_eq!(plan.ops.len(), 1);
        let op = &plan.ops[0];
        assert_eq!(op.fluid, "fast");
        assert_eq!(op.from_s, fin.assignments[0].end_s);
        assert_eq!(op.until_s, fin.assignments[2].start_s);
        assert!(matches!(op.home, StorageHome::Chamber { slot: 0 }));
        assert_eq!(plan.chamber_slots, 1);
        assert_eq!(plan.rotary_slots, 0);
        assert_eq!(plan.peak, 1);
        assert!(plan.total_s > 0.0);
    }

    #[test]
    fn concurrent_storage_needs_more_slots() {
        let mut a = Assay::new("many").unwrap();
        let slow = a.add_op("slow", 100.0, DeviceClass::Chamber).unwrap();
        let join = a.add_op("zjoin", 5.0, DeviceClass::Chamber).unwrap();
        a.add_dep(slow, join).unwrap();
        for i in 0..3 {
            let p = a.add_op(format!("p{i}"), 10.0, DeviceClass::Mixer).unwrap();
            a.add_dep(p, join).unwrap();
        }
        let b = DeviceBounds {
            mixers: 3,
            chambers: 1,
        };
        let pass = list_schedule(&a, b, &[0.0; 4], &[0.0; 5]).unwrap();
        let (kinds, ext) = classify(&a, &pass, StoragePolicy::Dedicated, 2.0, 0.5);
        let fin = list_schedule(&a, b, &[0.0; 4], &ext).unwrap();
        let plan = materialize(&a, &fin, &kinds).unwrap();
        assert_eq!(plan.chamber_slots, 3, "three fluids idle at once");
        assert_eq!(plan.peak, 3);
        // every slot's residents must not overlap
        for slot in 0..plan.chamber_slots {
            let mut residents: Vec<(f64, f64)> = plan
                .ops
                .iter()
                .filter(|o| o.home == StorageHome::Chamber { slot })
                .map(|o| (o.from_s, o.until_s))
                .collect();
            residents.sort_by(|x, y| x.0.partial_cmp(&y.0).unwrap());
            for w in residents.windows(2) {
                assert!(w[0].1 <= w[1].0 + EPS_S, "slot {slot} overlap: {w:?}");
            }
        }
    }

    #[test]
    fn policy_names_round_trip() {
        for p in [
            StoragePolicy::Dedicated,
            StoragePolicy::Distributed,
            StoragePolicy::Spill,
        ] {
            assert_eq!(StoragePolicy::parse(p.as_str()), Some(p));
        }
        assert_eq!(StoragePolicy::parse("rotary"), None);
        assert_eq!(StoragePolicy::default(), StoragePolicy::Distributed);
    }
}
