//! Error type for assay parsing, validation and scheduling.

use std::fmt;

/// Everything that can go wrong between an assay text and its emitted
/// netlist.
#[derive(Debug, Clone, PartialEq)]
pub enum ScheduleError {
    /// Syntax error in the plain-text assay format, with the 1-based
    /// line it occurred on.
    Parse {
        /// 1-based line number in the input text.
        line: usize,
        /// What was wrong.
        message: String,
    },
    /// The sequencing graph is cyclic — no schedule exists. The listed
    /// operation ids (names, sorted) are exactly the ones on or
    /// downstream of a cycle.
    Cycle {
        /// The offending operation names, sorted.
        ops: Vec<String>,
    },
    /// A structural error: duplicate names, dangling references,
    /// impossible options.
    Invalid(String),
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::Parse { line, message } => {
                write!(f, "line {line}: {message}")
            }
            ScheduleError::Cycle { ops } => {
                write!(
                    f,
                    "cyclic sequencing graph through operation(s): {}",
                    ops.join(", ")
                )
            }
            ScheduleError::Invalid(msg) => write!(f, "invalid assay: {msg}"),
        }
    }
}

impl std::error::Error for ScheduleError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        let e = ScheduleError::Parse {
            line: 3,
            message: "nope".into(),
        };
        assert_eq!(e.to_string(), "line 3: nope");
        let e = ScheduleError::Cycle {
            ops: vec!["a".into(), "b".into()],
        };
        assert!(e.to_string().contains("a, b"), "{e}");
        let e = ScheduleError::Invalid("x".into());
        assert!(e.to_string().contains("x"));
    }
}
