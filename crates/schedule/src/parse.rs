//! Parser for the plain-text assay format.
//!
//! ```text
//! assay pcr                      # header — must be the first statement
//! devices mixers=2 chambers=1    # optional per-assay device bounds
//! op lyse     duration=20 device=mixer
//! op amplify  duration=45 device=chamber
//! dep lyse -> amplify            # lyse's output fluid feeds amplify
//! ```
//!
//! Lines are independent; `#` starts a comment; blank lines are
//! ignored. Durations are seconds. The parsed assay is validated before
//! being returned, so a cyclic graph fails here with the offending
//! operation names ([`ScheduleError::Cycle`]).

use crate::error::ScheduleError;
use crate::model::{Assay, DeviceBounds, DeviceClass, MAX_DEVICES, MAX_DURATION_S};

impl Assay {
    /// Parses the plain-text assay format.
    ///
    /// # Errors
    ///
    /// [`ScheduleError::Parse`] with a line number for syntax errors,
    /// [`ScheduleError::Cycle`] for a cyclic sequencing graph, and the
    /// structural errors of [`Assay::validate`].
    pub fn parse(text: &str) -> Result<Assay, ScheduleError> {
        let mut assay: Option<Assay> = None;
        for (idx, raw) in text.lines().enumerate() {
            let line_no = idx + 1;
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut words = line.split_whitespace();
            let Some(keyword) = words.next() else {
                continue; // unreachable: the line is non-empty after trim
            };
            let rest: Vec<&str> = words.collect();
            if assay.is_none() && keyword != "assay" {
                return Err(err(
                    line_no,
                    format!("the first statement must be `assay <name>`, got `{keyword}`"),
                ));
            }
            match keyword {
                "assay" => {
                    if assay.is_some() {
                        return Err(err(line_no, "duplicate `assay` header".into()));
                    }
                    let name = one_arg(&rest, line_no, "assay takes exactly one name")?;
                    assay = Some(Assay::new(name).map_err(|e| lift(e, line_no))?);
                }
                "devices" => {
                    let a = assay.as_mut().expect("header checked above");
                    let mut bounds = DeviceBounds {
                        mixers: 0,
                        chambers: 0,
                    };
                    for word in &rest {
                        match word.split_once('=') {
                            Some(("mixers", v)) => bounds.mixers = parse_count(v, line_no)?,
                            Some(("chambers", v)) => bounds.chambers = parse_count(v, line_no)?,
                            _ => {
                                return Err(err(
                                    line_no,
                                    format!("expected mixers=<n> or chambers=<n>, got `{word}`"),
                                ))
                            }
                        }
                    }
                    if bounds.mixers == 0 || bounds.chambers == 0 {
                        return Err(err(
                            line_no,
                            "devices requires both mixers=<n> and chambers=<n>".into(),
                        ));
                    }
                    a.set_devices(bounds).map_err(|e| lift(e, line_no))?;
                }
                "op" => {
                    let a = assay.as_mut().expect("header checked above");
                    let Some((&name, opts)) = rest.split_first() else {
                        return Err(err(line_no, "missing operation name".into()));
                    };
                    if name.contains('=') || name.contains('.') {
                        return Err(err(line_no, format!("invalid operation name `{name}`")));
                    }
                    let mut duration = None;
                    let mut class = None;
                    for opt in opts {
                        match opt.split_once('=') {
                            Some(("duration", v)) => duration = Some(parse_secs(v, line_no)?),
                            Some(("device", v)) => {
                                class = Some(DeviceClass::parse(v).ok_or_else(|| {
                                    err(line_no, format!("device must be mixer|chamber, got `{v}`"))
                                })?);
                            }
                            _ => {
                                return Err(err(line_no, format!("unknown option `{opt}`")));
                            }
                        }
                    }
                    let duration = duration
                        .ok_or_else(|| err(line_no, "op requires duration=<seconds>".into()))?;
                    let class = class
                        .ok_or_else(|| err(line_no, "op requires device=mixer|chamber".into()))?;
                    a.add_op(name, duration, class)
                        .map_err(|e| lift(e, line_no))?;
                }
                "dep" => {
                    let a = assay.as_mut().expect("header checked above");
                    if rest.len() != 3 || rest[1] != "->" {
                        return Err(err(line_no, "expected `dep <from> -> <to>`".into()));
                    }
                    a.add_dep_by_name(rest[0], rest[2])
                        .map_err(|e| lift(e, line_no))?;
                }
                other => {
                    return Err(err(line_no, format!("unknown keyword `{other}`")));
                }
            }
        }
        let assay = assay.ok_or(ScheduleError::Parse {
            line: 1,
            message: "empty assay: expected `assay <name>` and at least one op".into(),
        })?;
        assay.validate()?;
        Ok(assay)
    }
}

fn err(line: usize, message: String) -> ScheduleError {
    ScheduleError::Parse { line, message }
}

/// Re-spans a builder error onto the line that triggered it; cycle
/// errors (which have no single line) pass through untouched.
fn lift(e: ScheduleError, line: usize) -> ScheduleError {
    match e {
        ScheduleError::Invalid(message) => ScheduleError::Parse { line, message },
        other => other,
    }
}

fn one_arg<'a>(rest: &[&'a str], line: usize, msg: &str) -> Result<&'a str, ScheduleError> {
    if rest.len() == 1 {
        Ok(rest[0])
    } else {
        Err(err(line, msg.to_string()))
    }
}

fn parse_secs(v: &str, line: usize) -> Result<f64, ScheduleError> {
    let secs: f64 = v
        .parse()
        .map_err(|_| err(line, format!("expected a duration in seconds, got `{v}`")))?;
    if !(secs.is_finite() && secs > 0.0 && secs <= MAX_DURATION_S) {
        return Err(err(
            line,
            format!("duration must be positive, finite and at most {MAX_DURATION_S} s, got `{v}`"),
        ));
    }
    Ok(secs)
}

fn parse_count(v: &str, line: usize) -> Result<usize, ScheduleError> {
    let n: usize = v
        .parse()
        .map_err(|_| err(line, format!("expected a device count, got `{v}`")))?;
    if n == 0 || n > MAX_DEVICES {
        return Err(err(
            line,
            format!("device count must be between 1 and {MAX_DEVICES}, got `{v}`"),
        ));
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# immunoprecipitation-style demo
assay demo
devices mixers=2 chambers=1
op lyse duration=20 device=mixer
op bind duration=45.5 device=chamber   # antibody capture
op elute duration=10 device=mixer
dep lyse -> bind
dep bind -> elute
";

    #[test]
    fn parses_all_statements() {
        let a = Assay::parse(SAMPLE).unwrap();
        assert_eq!(a.name, "demo");
        assert_eq!(a.ops().len(), 3);
        assert_eq!(a.deps().len(), 2);
        let bounds = a.devices().unwrap();
        assert_eq!((bounds.mixers, bounds.chambers), (2, 1));
        let bind = &a.ops()[a.op_index("bind").unwrap()];
        assert_eq!(bind.duration_s, 45.5);
        assert_eq!(bind.class, DeviceClass::Chamber);
    }

    #[test]
    fn round_trips_through_canonical_text() {
        let a = Assay::parse(SAMPLE).unwrap();
        let again = Assay::parse(&a.canonical_text()).unwrap();
        assert_eq!(a.canonical_text(), again.canonical_text());
    }

    #[test]
    fn header_must_come_first() {
        let e = Assay::parse("op x duration=1 device=mixer\n").unwrap_err();
        assert!(matches!(e, ScheduleError::Parse { line: 1, .. }), "{e}");
        assert!(Assay::parse("assay a\nassay b\nop x duration=1 device=mixer\n").is_err());
    }

    #[test]
    fn empty_input_is_a_parse_error() {
        assert!(matches!(
            Assay::parse(""),
            Err(ScheduleError::Parse { line: 1, .. })
        ));
        assert!(Assay::parse("# only a comment\n").is_err());
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = Assay::parse("assay a\nbogus x\n").unwrap_err();
        let ScheduleError::Parse { line, message } = e else {
            panic!("expected a parse error");
        };
        assert_eq!(line, 2);
        assert!(message.contains("bogus"));
        let e =
            Assay::parse("assay a\nop x duration=1 device=mixer\nop x duration=1 device=mixer\n")
                .unwrap_err();
        assert!(matches!(e, ScheduleError::Parse { line: 3, .. }), "{e}");
    }

    #[test]
    fn op_option_validation() {
        assert!(Assay::parse("assay a\nop x device=mixer\n").is_err());
        assert!(Assay::parse("assay a\nop x duration=1\n").is_err());
        assert!(Assay::parse("assay a\nop x duration=0 device=mixer\n").is_err());
        assert!(Assay::parse("assay a\nop x duration=nan device=mixer\n").is_err());
        assert!(Assay::parse("assay a\nop x duration=1e9 device=mixer\n").is_err());
        assert!(Assay::parse("assay a\nop x duration=1 device=oven\n").is_err());
        assert!(Assay::parse("assay a\nop x duration=1 device=mixer bogus=1\n").is_err());
    }

    #[test]
    fn dep_validation() {
        assert!(Assay::parse("assay a\nop x duration=1 device=mixer\ndep x x\n").is_err());
        assert!(Assay::parse("assay a\nop x duration=1 device=mixer\ndep x -> ghost\n").is_err());
        assert!(Assay::parse("assay a\nop x duration=1 device=mixer\ndep x -> x\n").is_err());
    }

    #[test]
    fn devices_validation() {
        assert!(Assay::parse("assay a\ndevices mixers=2\nop x duration=1 device=mixer\n").is_err());
        assert!(Assay::parse(
            "assay a\ndevices mixers=0 chambers=1\nop x duration=1 device=mixer\n"
        )
        .is_err());
        assert!(Assay::parse(
            "assay a\ndevices mixers=2 chambers=1 ovens=1\nop x duration=1 device=mixer\n"
        )
        .is_err());
    }

    #[test]
    fn cycle_is_reported_with_op_ids() {
        let text = "\
assay loop
op a duration=1 device=mixer
op b duration=1 device=mixer
op c duration=1 device=chamber
dep a -> b
dep b -> c
dep c -> a
";
        let ScheduleError::Cycle { ops } = Assay::parse(text).unwrap_err() else {
            panic!("expected a cycle error");
        };
        assert_eq!(ops, vec!["a".to_string(), "b".into(), "c".into()]);
    }
}
