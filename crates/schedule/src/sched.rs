//! List scheduling of the assay DAG onto bounded devices.
//!
//! Classic critical-path list scheduling: every operation gets a
//! priority equal to its *bottom level* (its effective duration plus
//! the longest downstream chain, edge latencies included), the ready
//! set drains highest-priority-first, and each picked op lands on the
//! device of its class that lets it start earliest.
//!
//! Two knobs feed the storage pass back into the schedule:
//!
//! * `latency[edge]` delays a consumer relative to one producer — a
//!   transport that happens *between* the two ops;
//! * `extend[op]` stretches an op's device occupancy — the time its
//!   device spends loading fluids out to storage (producer side) or
//!   retrieving them back (consumer side). Extensions bind even when
//!   the edge itself has slack, which is exactly why storing a
//!   long-idle fluid in a dedicated chamber costs makespan while
//!   leaving it in the channel does not (see [`crate::storage`]).
//!
//! All tie-breaks are by operation name, so the schedule — and with it
//! the emitted netlist — is a pure function of the assay graph, not of
//! input line order.
//!
//! # Routability
//!
//! The emitted netlist is routed strictly left to right: every channel
//! flows from an earlier column to a later one, so the *device-level*
//! flow graph (devices as nodes, one edge per cross-device dependency)
//! must stay acyclic. Naive device reuse breaks this: handing a
//! downstream op back to an upstream device (elute on the mixer that
//! fed the capture chamber) bends the flow backwards and the layout
//! engine rejects the design as unroutable. The scheduler therefore
//! treats the declared bounds as a *preferred time-sharing pool*: a
//! device is eligible for an op only if taking it adds no cycle to the
//! device flow graph (checked by reachability), and when no bounded
//! device qualifies an *overflow* device is opened instead. Device
//! indices are compacted per class afterwards, so the timetable's
//! `mixers_used`/`chambers_used` may exceed the declared bounds — that
//! is the price of a chip that routes.

use std::collections::{HashMap, HashSet};

use crate::error::ScheduleError;
use crate::model::{Assay, DeviceBounds, DeviceClass};

/// One device instance of the bounded set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceRef {
    /// The device class.
    pub class: DeviceClass,
    /// Index within the class, contiguous from 0. Indices below the
    /// declared bounds are the preferred pool; anything above them is
    /// an overflow device opened to keep the flow graph acyclic.
    pub index: usize,
}

/// A device node in the routability quotient graph:
/// `(class index, device index)`.
type DevNode = (usize, usize);

/// Whether `from` can reach `to` through the device flow graph.
fn reaches(adj: &HashMap<DevNode, Vec<DevNode>>, from: DevNode, to: DevNode) -> bool {
    if from == to {
        return true;
    }
    let mut seen: HashSet<DevNode> = HashSet::new();
    let mut stack = vec![from];
    while let Some(node) = stack.pop() {
        if node == to {
            return true;
        }
        if !seen.insert(node) {
            continue;
        }
        if let Some(next) = adj.get(&node) {
            stack.extend(next.iter().copied());
        }
    }
    false
}

/// One scheduled operation.
#[derive(Debug, Clone, PartialEq)]
pub struct Assignment {
    /// Index of the op in [`Assay::ops`].
    pub op: usize,
    /// The device it runs on.
    pub device: DeviceRef,
    /// Start time, seconds from assay start.
    pub start_s: f64,
    /// End time (`start_s` + effective duration, transport extensions
    /// included).
    pub end_s: f64,
}

/// A complete schedule: one [`Assignment`] per op (indexed by op) and
/// the makespan.
#[derive(Debug, Clone, PartialEq)]
pub struct Timetable {
    /// Per-op assignments, indexed by op index.
    pub assignments: Vec<Assignment>,
    /// Completion time of the last operation, seconds.
    pub makespan_s: f64,
    /// Mixers actually used (`max index + 1`). May exceed the declared
    /// bounds when overflow mixers were opened for routability.
    pub mixers_used: usize,
    /// Chambers actually used; same overflow caveat.
    pub chambers_used: usize,
}

/// Schedules `assay` onto `bounds` devices. `latency` delays each
/// dependency edge by that many seconds; `extend` stretches each op's
/// device occupancy (both zero-filled for the first pass; storage
/// transport penalties for the second).
///
/// Device choice is routability-aware: among the devices of the op's
/// class whose reuse keeps the device flow graph acyclic (see the
/// module docs), the op lands on the one that lets it start earliest;
/// when none qualifies, a fresh overflow device is opened.
///
/// # Errors
///
/// The validation errors of [`Assay::topo_order`]; `latency` must have
/// one entry per dependency edge and `extend` one per op.
pub fn list_schedule(
    assay: &Assay,
    bounds: DeviceBounds,
    latency: &[f64],
    extend: &[f64],
) -> Result<Timetable, ScheduleError> {
    bounds.validate()?;
    let ops = assay.ops();
    let deps = assay.deps();
    if latency.len() != deps.len() {
        return Err(ScheduleError::Invalid(format!(
            "latency table has {} entries for {} dependencies",
            latency.len(),
            deps.len()
        )));
    }
    if extend.len() != ops.len() {
        return Err(ScheduleError::Invalid(format!(
            "extension table has {} entries for {} operations",
            extend.len(),
            ops.len()
        )));
    }
    let dur = |i: usize| ops[i].duration_s + extend[i];

    // Bottom levels over the reverse topological order.
    let order = assay.topo_order()?;
    let mut bottom = vec![0.0f64; ops.len()];
    for &i in order.iter().rev() {
        let mut tail = 0.0f64;
        for (e, d) in deps.iter().enumerate() {
            if d.from == i {
                tail = tail.max(latency[e] + bottom[d.to]);
            }
        }
        bottom[i] = dur(i) + tail;
    }

    let mut indeg = vec![0usize; ops.len()];
    for d in deps {
        indeg[d.to] += 1;
    }
    let mut ready: Vec<usize> = (0..ops.len()).filter(|&i| indeg[i] == 0).collect();
    let mut free = [
        vec![0.0f64; bounds.mixers],   // DeviceClass::Mixer
        vec![0.0f64; bounds.chambers], // DeviceClass::Chamber
    ];
    let class_idx = |c: DeviceClass| match c {
        DeviceClass::Mixer => 0usize,
        DeviceClass::Chamber => 1,
    };
    let mut done: Vec<Option<Assignment>> = vec![None; ops.len()];
    let mut makespan = 0.0f64;
    // Device flow graph so far: an edge per scheduled cross-device
    // dependency. Kept acyclic by the eligibility check below.
    let mut adj: HashMap<DevNode, Vec<DevNode>> = HashMap::new();
    while !ready.is_empty() {
        // Highest bottom level first; ties by name for determinism.
        let pick = ready
            .iter()
            .enumerate()
            .max_by(|&(_, &a), &(_, &b)| {
                bottom[a]
                    .partial_cmp(&bottom[b])
                    .expect("bottom levels are finite")
                    .then_with(|| ops[b].name.cmp(&ops[a].name))
            })
            .map(|(pos, _)| pos)
            .expect("ready set is non-empty");
        let op = ready.swap_remove(pick);
        let earliest = deps
            .iter()
            .enumerate()
            .filter(|(_, d)| d.to == op)
            .map(|(e, d)| {
                done[d.from]
                    .as_ref()
                    .expect("predecessors scheduled before successors")
                    .end_s
                    + latency[e]
            })
            .fold(0.0f64, f64::max);
        let ci = class_idx(ops[op].class);
        let pred_devices: Vec<DevNode> = deps
            .iter()
            .filter(|d| d.to == op)
            .map(|d| {
                let a = done[d.from]
                    .as_ref()
                    .expect("predecessors scheduled before successors");
                (class_idx(a.device.class), a.device.index)
            })
            .collect();
        // A device is eligible iff giving it this op adds no cycle to
        // the device flow graph: none of the op's predecessor devices
        // may already be reachable *from* it (same-device reuse adds no
        // edge, so it is always safe).
        let eligible = |di: usize| {
            pred_devices
                .iter()
                .all(|&pd| pd == (ci, di) || !reaches(&adj, (ci, di), pd))
        };
        let slots = &mut free[ci];
        let (device_index, device_free) = match slots
            .iter()
            .copied()
            .enumerate()
            .filter(|&(di, _)| eligible(di))
            .min_by(|&(ai, af), &(bi, bf)| {
                af.max(earliest)
                    .partial_cmp(&bf.max(earliest))
                    .expect("device times are finite")
                    .then_with(|| ai.cmp(&bi))
            }) {
            Some(choice) => choice,
            None => {
                // Reusing any bounded device would bend the flow
                // backwards; open an overflow device instead.
                slots.push(0.0);
                (slots.len() - 1, 0.0)
            }
        };
        let start = earliest.max(device_free);
        let end = start + dur(op);
        slots[device_index] = end;
        makespan = makespan.max(end);
        done[op] = Some(Assignment {
            op,
            device: DeviceRef {
                class: ops[op].class,
                index: device_index,
            },
            start_s: start,
            end_s: end,
        });
        let node = (ci, device_index);
        for pd in pred_devices {
            if pd != node {
                adj.entry(pd).or_default().push(node);
            }
        }
        for d in deps {
            if d.from == op {
                indeg[d.to] -= 1;
                if indeg[d.to] == 0 {
                    ready.push(d.to);
                }
            }
        }
    }
    let mut assignments: Vec<Assignment> = done
        .into_iter()
        .map(|a| a.expect("acyclic graph schedules every op"))
        .collect();
    // Eligibility filtering can leave gaps in the index space (a low
    // index skipped for routability, a higher one taken); compact each
    // class to contiguous indices so the netlist gets mix0..mixN.
    for class in [DeviceClass::Mixer, DeviceClass::Chamber] {
        let mut idxs: Vec<usize> = assignments
            .iter()
            .filter(|a| a.device.class == class)
            .map(|a| a.device.index)
            .collect();
        idxs.sort_unstable();
        idxs.dedup();
        let remap: HashMap<usize, usize> = idxs
            .iter()
            .enumerate()
            .map(|(new, &old)| (old, new))
            .collect();
        for a in &mut assignments {
            if a.device.class == class {
                a.device.index = *remap
                    .get(&a.device.index)
                    .expect("every used index was collected");
            }
        }
    }
    let used = |class: DeviceClass| {
        assignments
            .iter()
            .filter(|a| a.device.class == class)
            .map(|a| a.device.index + 1)
            .max()
            .unwrap_or(0)
    };
    Ok(Timetable {
        mixers_used: used(DeviceClass::Mixer),
        chambers_used: used(DeviceClass::Chamber),
        assignments,
        makespan_s: makespan,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bounds(m: usize, c: usize) -> DeviceBounds {
        DeviceBounds {
            mixers: m,
            chambers: c,
        }
    }

    fn zeros(assay: &Assay) -> (Vec<f64>, Vec<f64>) {
        (vec![0.0; assay.deps().len()], vec![0.0; assay.ops().len()])
    }

    fn chain(n: usize) -> Assay {
        let mut a = Assay::new("chain").unwrap();
        let mut prev = None;
        for i in 0..n {
            let op = a.add_op(format!("s{i}"), 10.0, DeviceClass::Mixer).unwrap();
            if let Some(p) = prev {
                a.add_dep(p, op).unwrap();
            }
            prev = Some(op);
        }
        a
    }

    #[test]
    fn chain_serializes_on_one_device() {
        let a = chain(4);
        let (lat, ext) = zeros(&a);
        let t = list_schedule(&a, bounds(2, 1), &lat, &ext).unwrap();
        assert_eq!(t.makespan_s, 40.0);
        assert_eq!(t.mixers_used, 1, "a chain never needs a second mixer");
    }

    #[test]
    fn independent_ops_run_in_parallel() {
        let mut a = Assay::new("par").unwrap();
        for i in 0..4 {
            a.add_op(format!("x{i}"), 10.0, DeviceClass::Mixer).unwrap();
        }
        let (lat, ext) = zeros(&a);
        let t = list_schedule(&a, bounds(2, 1), &lat, &ext).unwrap();
        assert_eq!(t.makespan_s, 20.0, "4 ops on 2 mixers take 2 rounds");
        assert_eq!(t.mixers_used, 2);
        let t1 = list_schedule(&a, bounds(1, 1), &lat, &ext).unwrap();
        assert_eq!(t1.makespan_s, 40.0, "1 mixer serializes them");
    }

    #[test]
    fn latency_delays_the_consumer() {
        let mut a = Assay::new("lat").unwrap();
        let p = a.add_op("p", 10.0, DeviceClass::Mixer).unwrap();
        let c = a.add_op("c", 10.0, DeviceClass::Mixer).unwrap();
        a.add_dep(p, c).unwrap();
        let t0 = list_schedule(&a, bounds(2, 1), &[0.0], &[0.0, 0.0]).unwrap();
        assert_eq!(t0.makespan_s, 20.0);
        let t1 = list_schedule(&a, bounds(2, 1), &[5.0], &[0.0, 0.0]).unwrap();
        assert_eq!(t1.makespan_s, 25.0);
        assert_eq!(t1.assignments[c].start_s, 15.0);
        assert_eq!(t1.assignments[p].end_s, 10.0);
    }

    #[test]
    fn extension_stretches_device_occupancy() {
        let mut a = Assay::new("ext").unwrap();
        let p = a.add_op("p", 10.0, DeviceClass::Mixer).unwrap();
        let c = a.add_op("c", 10.0, DeviceClass::Mixer).unwrap();
        a.add_dep(p, c).unwrap();
        let t = list_schedule(&a, bounds(1, 1), &[0.0], &[0.5, 1.0]).unwrap();
        assert_eq!(t.assignments[p].end_s, 10.5);
        assert_eq!(t.assignments[c].start_s, 10.5);
        assert_eq!(t.makespan_s, 21.5);
    }

    #[test]
    fn no_overlap_per_device() {
        let mut a = Assay::new("mix").unwrap();
        for i in 0..7 {
            a.add_op(format!("m{i}"), 3.0 + i as f64, DeviceClass::Mixer)
                .unwrap();
        }
        for i in 0..3 {
            a.add_dep(i, i + 4).unwrap();
        }
        let (lat, ext) = zeros(&a);
        let t = list_schedule(&a, bounds(2, 1), &lat, &ext).unwrap();
        let mut per_device: std::collections::HashMap<usize, Vec<(f64, f64)>> =
            std::collections::HashMap::new();
        for asg in &t.assignments {
            per_device
                .entry(asg.device.index)
                .or_default()
                .push((asg.start_s, asg.end_s));
        }
        for intervals in per_device.values_mut() {
            intervals.sort_by(|x, y| x.0.partial_cmp(&y.0).unwrap());
            for w in intervals.windows(2) {
                assert!(w[0].1 <= w[1].0 + 1e-9, "overlap: {w:?}");
            }
        }
    }

    #[test]
    fn device_reuse_never_creates_routing_cycles() {
        // Prep fan-in → capture (chamber) → elute (mixer): reusing a
        // prep mixer for elute would route the chamber's output back
        // into an upstream mixer, which the left-to-right layout
        // cannot place. Elute must land on an overflow mixer.
        let mut a = Assay::new("cap").unwrap();
        let capture = a.add_op("capture", 120.0, DeviceClass::Chamber).unwrap();
        let elute = a.add_op("elute", 20.0, DeviceClass::Mixer).unwrap();
        a.add_dep(capture, elute).unwrap();
        for i in 0..3 {
            let p = a
                .add_op(format!("prep{i}"), 15.0, DeviceClass::Mixer)
                .unwrap();
            a.add_dep(p, capture).unwrap();
        }
        let (lat, ext) = zeros(&a);
        let t = list_schedule(&a, bounds(2, 1), &lat, &ext).unwrap();
        assert_eq!(t.mixers_used, 3, "elute needs an overflow mixer");
        assert_eq!(t.assignments[elute].device.index, 2, "{t:?}");
        // the device flow graph must topologically sort: collect the
        // cross-device edges and run a Kahn pass over them
        let dev = |op: usize| {
            let d = t.assignments[op].device;
            (d.class, d.index)
        };
        let mut edges: std::collections::HashSet<_> = std::collections::HashSet::new();
        for d in a.deps() {
            if dev(d.from) != dev(d.to) {
                edges.insert((dev(d.from), dev(d.to)));
            }
        }
        let nodes: std::collections::HashSet<_> = edges.iter().flat_map(|&(f, t)| [f, t]).collect();
        let mut remaining = edges.clone();
        let mut placed = 0usize;
        let mut frontier: Vec<_> = nodes
            .iter()
            .filter(|&&n| !remaining.iter().any(|&(_, t)| t == n))
            .copied()
            .collect();
        let mut seen = std::collections::HashSet::new();
        while let Some(n) = frontier.pop() {
            if !seen.insert(n) {
                continue;
            }
            placed += 1;
            remaining.retain(|&(f, _)| f != n);
            frontier.extend(
                nodes
                    .iter()
                    .filter(|&&m| !seen.contains(&m) && !remaining.iter().any(|&(_, t)| t == m))
                    .copied(),
            );
        }
        assert_eq!(placed, nodes.len(), "device flow graph has a cycle");
    }

    #[test]
    fn wrong_table_sizes_are_rejected() {
        let a = chain(3);
        assert!(list_schedule(&a, bounds(1, 1), &[0.0], &[0.0; 3]).is_err());
        assert!(list_schedule(&a, bounds(1, 1), &[0.0; 2], &[0.0]).is_err());
    }
}
