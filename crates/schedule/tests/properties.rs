//! Property tests for the schedule → netlist contract:
//!
//! * every emitted netlist parses back through `columba-netlist` and
//!   canonicalizes stably (same assay + options ⇒ same text, which is
//!   what makes service cache hits work);
//! * schedules respect dependencies and device capacity — no two ops
//!   overlap on one device, consumers start after their producers end;
//! * every stored fluid has a home for its whole idle interval, and no
//!   two fluids share a storage slot at the same time.

use columba_netlist::Netlist;
use columba_prng::Rng;
use columba_schedule::{
    generators, schedule, Assay, DeviceClass, ScheduleOptions, ScheduleReport, StorageHome,
    StoragePolicy,
};

const POLICIES: [StoragePolicy; 3] = [
    StoragePolicy::Dedicated,
    StoragePolicy::Distributed,
    StoragePolicy::Spill,
];

const EPS: f64 = 1e-9;

fn check_invariants(assay: &Assay, report: &ScheduleReport) {
    let tt = &report.timetable;
    assert_eq!(tt.assignments.len(), assay.ops().len());

    // (a) emitted netlist parses back and canonicalizes stably
    let reparsed = Netlist::parse(&report.netlist_text).expect("emitted netlist parses back");
    assert_eq!(reparsed.canonical_text(), report.netlist_text);

    // (c1) dependencies: a consumer starts no earlier than its producer ends
    for d in assay.deps() {
        let (p, c) = (&tt.assignments[d.from], &tt.assignments[d.to]);
        assert!(
            c.start_s + EPS >= p.end_s,
            "dep {} -> {} violated: producer ends {} but consumer starts {}",
            assay.ops()[d.from].name,
            assay.ops()[d.to].name,
            p.end_s,
            c.start_s
        );
    }

    // (c2) device capacity: no two ops overlap on one device
    let mut by_device: std::collections::HashMap<(DeviceClass, usize), Vec<(f64, f64)>> =
        std::collections::HashMap::new();
    for a in &tt.assignments {
        assert!(a.end_s > a.start_s - EPS);
        assert!(a.end_s <= tt.makespan_s + EPS);
        by_device
            .entry((a.device.class, a.device.index))
            .or_default()
            .push((a.start_s, a.end_s));
    }
    for ((class, index), mut spans) in by_device {
        spans.sort_by(|a, b| a.0.total_cmp(&b.0));
        for w in spans.windows(2) {
            assert!(
                w[1].0 + EPS >= w[0].1,
                "overlap on {class}{index}: {:?} then {:?}",
                w[0],
                w[1]
            );
        }
    }

    // (c3) stored fluids have a home for their whole idle interval,
    // and slot residents never overlap
    let mut by_slot: std::collections::HashMap<String, Vec<(f64, f64)>> =
        std::collections::HashMap::new();
    for s in &report.storage.ops {
        let d = assay.deps()[s.dep];
        let (p, c) = (&tt.assignments[d.from], &tt.assignments[d.to]);
        assert!(
            s.from_s <= p.end_s + EPS && s.until_s + EPS >= c.start_s,
            "storage for {} does not cover the idle interval [{}, {}]: [{}, {}]",
            s.fluid,
            p.end_s,
            c.start_s,
            s.from_s,
            s.until_s
        );
        let key = match s.home {
            StorageHome::Channel => continue,
            StorageHome::Chamber { slot } => format!("store{slot}"),
            StorageHome::Rotary { slot } => format!("rot{slot}"),
        };
        by_slot.entry(key).or_default().push((s.from_s, s.until_s));
    }
    for (slot, mut spans) in by_slot {
        spans.sort_by(|a, b| a.0.total_cmp(&b.0));
        for w in spans.windows(2) {
            assert!(
                w[1].0 + EPS >= w[0].1,
                "two fluids share slot {slot}: {:?} then {:?}",
                w[0],
                w[1]
            );
        }
    }
}

#[test]
fn random_assays_hold_all_invariants_under_every_policy() {
    for seed in 0..12u64 {
        let assay = generators::random_assay(&mut Rng::seed_from_u64(seed), 32);
        for policy in POLICIES {
            let opts = ScheduleOptions {
                policy,
                ..ScheduleOptions::default()
            };
            let report = schedule(&assay, &opts).expect("schedules");
            check_invariants(&assay, &report);
        }
    }
}

#[test]
fn same_assay_and_options_produce_identical_output() {
    // Determinism is what makes the service's content-addressed cache
    // hit on resubmission: same canonical assay + options ⇒ same
    // netlist text ⇒ same ContentKey.
    for seed in [3u64, 7, 11] {
        let assay = generators::random_assay(&mut Rng::seed_from_u64(seed), 24);
        let opts = ScheduleOptions::default();
        let a = schedule(&assay, &opts).unwrap();
        let b = schedule(&assay, &opts).unwrap();
        assert_eq!(a.netlist_text, b.netlist_text);
        assert_eq!(assay.canonical_text(), assay.canonical_text());
    }
}

#[test]
fn canonical_text_is_invariant_under_line_reordering() {
    let text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../cases/pooled_capture.assay"
    ))
    .expect("bundled case");
    let assay = Assay::parse(&text).unwrap();
    // rebuild the text with op and dep statements each in reverse
    // order (deps must still follow the ops they reference)
    let mut lines: Vec<&str> = Vec::new();
    let mut ops: Vec<&str> = Vec::new();
    let mut deps: Vec<&str> = Vec::new();
    for line in text.lines() {
        let t = line.trim();
        if t.starts_with("op ") {
            ops.push(line);
        } else if t.starts_with("dep ") {
            deps.push(line);
        } else if !t.is_empty() && !t.starts_with('#') {
            lines.push(line);
        }
    }
    ops.reverse();
    deps.reverse();
    lines.extend(ops);
    lines.extend(deps);
    let shuffled = Assay::parse(&lines.join("\n")).unwrap();
    assert_eq!(assay.canonical_text(), shuffled.canonical_text());
    let a = schedule(&assay, &ScheduleOptions::default()).unwrap();
    let b = schedule(&shuffled, &ScheduleOptions::default()).unwrap();
    assert_eq!(a.netlist_text, b.netlist_text);
}

#[test]
fn bundled_cases_schedule_under_every_policy() {
    for case in ["pooled_capture", "library_prep"] {
        let path = format!("{}/../../cases/{case}.assay", env!("CARGO_MANIFEST_DIR"));
        let assay = Assay::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        let mut makespans = Vec::new();
        for policy in POLICIES {
            let opts = ScheduleOptions {
                policy,
                ..ScheduleOptions::default()
            };
            let report = schedule(&assay, &opts).expect("schedules");
            check_invariants(&assay, &report);
            makespans.push((policy, report.makespan_s));
        }
        // the sweep acceptance check: dedicated storage pays transport
        // time that distributed channel storage does not
        let dedicated = makespans[0].1;
        let distributed = makespans[1].1;
        assert!(
            (dedicated - distributed).abs() > EPS,
            "{case}: dedicated {dedicated} vs distributed {distributed} should differ"
        );
    }
}
