//! Seeded random-mutation test: the assay parser must return `Ok` or a
//! structured `ScheduleError` on arbitrarily corrupted input — never
//! panic. Modeled on the `columba-netlist` mutation harness.
//!
//! Each iteration corrupts a valid assay text with byte flips,
//! truncations, duplications and insertions of format-relevant tokens,
//! then parses the result. The mutations are seeded, so a failure
//! reproduces by seed alone.

use columba_prng::Rng;
use columba_schedule::{generators, Assay};

const TOKENS: &[&str] = &[
    "assay",
    "devices",
    "op",
    "dep",
    "->",
    "duration=",
    "device=",
    "mixers=",
    "chambers=",
    "mixer",
    "chamber",
    "#",
    "=",
    ".",
    "1e308",
    "-1",
    "nan",
    "inf",
    "\n",
    "\u{fffd}",
    "\0",
];

fn mutate(rng: &mut Rng, text: &str) -> String {
    let mut bytes = text.as_bytes().to_vec();
    let edits = rng.gen_range(1..8usize);
    for _ in 0..edits {
        if bytes.is_empty() {
            break;
        }
        match rng.gen_range(0..5usize) {
            // flip one byte to an arbitrary value
            0 => {
                let i = rng.gen_range(0..bytes.len());
                bytes[i] = (rng.next_u64() & 0xff) as u8;
            }
            // truncate at a random point
            1 => {
                let i = rng.gen_range(0..bytes.len());
                bytes.truncate(i);
            }
            // delete a random span
            2 => {
                let i = rng.gen_range(0..bytes.len());
                let j = (i + rng.gen_range(1..32usize)).min(bytes.len());
                bytes.drain(i..j);
            }
            // duplicate a random span somewhere else
            3 => {
                let i = rng.gen_range(0..bytes.len());
                let j = (i + rng.gen_range(1..32usize)).min(bytes.len());
                let span: Vec<u8> = bytes[i..j].to_vec();
                let at = rng.gen_range(0..=bytes.len());
                bytes.splice(at..at, span);
            }
            // insert a format-relevant token (worst case for the parser)
            _ => {
                let tok = TOKENS[rng.gen_range(0..TOKENS.len())];
                let at = rng.gen_range(0..=bytes.len());
                bytes.splice(at..at, tok.bytes());
            }
        }
    }
    String::from_utf8_lossy(&bytes).into_owned()
}

#[test]
fn parser_never_panics_on_corrupted_text() {
    let seeds: Vec<(&str, String)> = vec![
        ("pooled", generators::pooled_capture(3).to_text()),
        ("dilution", generators::serial_dilution(8).to_text()),
    ];
    let mut rng = Rng::seed_from_u64(0x00A5_5A11);
    for round in 0..400 {
        for (name, text) in &seeds {
            let corrupted = mutate(&mut rng, text);
            // Ok or Err are both fine; a panic fails the test with the
            // round number for seed-exact reproduction
            let result = std::panic::catch_unwind(|| Assay::parse(&corrupted));
            assert!(
                result.is_ok(),
                "parser panicked on {name} round {round}:\n{corrupted}"
            );
        }
    }
}

#[test]
fn parser_still_accepts_the_unmutated_seeds() {
    for a in [
        generators::pooled_capture(3),
        generators::serial_dilution(8),
    ] {
        let reparsed = Assay::parse(&a.to_text()).expect("round-trips");
        assert_eq!(reparsed.canonical_text(), a.canonical_text());
    }
}
