//! Design-rule checker.
//!
//! Verifies that a [`Design`] obeys the geometric rules the synthesis flow
//! promises: containment, same-layer clearance, the Columba S straight
//! channel routing discipline, fluid-inlet pitch `d'` and valve placement.
//!
//! The checker is deliberately independent of the synthesis code — it
//! recomputes everything from raw geometry so it can catch synthesis bugs.

use std::fmt;

use columba_geom::{Layer, Rect, INLET_PITCH, MIN_CHANNEL_SPACING};

use crate::ir::{Design, InletKind, ValveKind};

/// Which rule a violation breaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// Geometry outside the chip outline.
    ChipContainment,
    /// Two module footprints overlap.
    ModuleOverlap,
    /// Two same-layer channels overlap (excluding same-module internals).
    SameLayerClearance,
    /// A transport flow channel runs through a foreign module.
    ModuleChannelConflict,
    /// A `FlowTransport`/`Control` channel bends or runs the wrong way.
    StraightDiscipline,
    /// Fluid inlets closer than `d'` on the same boundary.
    InletPitch,
    /// A valve pad does not touch the channels it connects.
    ValvePlacement,
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Rule::ChipContainment => "chip-containment",
            Rule::ModuleOverlap => "module-overlap",
            Rule::SameLayerClearance => "same-layer-clearance",
            Rule::ModuleChannelConflict => "module-channel-conflict",
            Rule::StraightDiscipline => "straight-discipline",
            Rule::InletPitch => "inlet-pitch",
            Rule::ValvePlacement => "valve-placement",
        };
        f.write_str(s)
    }
}

/// One rule violation with a human-readable diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The rule broken.
    pub rule: Rule,
    /// Diagnostic text naming the offending objects.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.rule, self.message)
    }
}

/// The outcome of a DRC run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DrcReport {
    /// All violations found, in rule order.
    pub violations: Vec<Violation>,
}

impl DrcReport {
    /// `true` when no rule is violated.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Violations of one specific rule.
    #[must_use]
    pub fn of_rule(&self, rule: Rule) -> Vec<&Violation> {
        self.violations.iter().filter(|v| v.rule == rule).collect()
    }
}

impl fmt::Display for DrcReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            return f.write_str("DRC clean");
        }
        writeln!(f, "{} DRC violations:", self.violations.len())?;
        for v in &self.violations {
            writeln!(f, "  {v}")?;
        }
        Ok(())
    }
}

/// Runs all design-rule checks on `design`.
#[must_use]
pub fn check(design: &Design) -> DrcReport {
    let mut report = DrcReport::default();
    check_containment(design, &mut report);
    check_module_overlap(design, &mut report);
    check_same_layer_clearance(design, &mut report);
    check_module_channel_conflicts(design, &mut report);
    check_straight_discipline(design, &mut report);
    check_inlet_pitch(design, &mut report);
    check_valve_placement(design, &mut report);
    report
}

fn check_containment(d: &Design, report: &mut DrcReport) {
    for m in &d.modules {
        if !d.chip.contains_rect(&m.rect) {
            report.violations.push(Violation {
                rule: Rule::ChipContainment,
                message: format!("module `{}` {} leaves the chip {}", m.name, m.rect, d.chip),
            });
        }
    }
    for (i, c) in d.channels.iter().enumerate() {
        if let Some(bb) = c.bounding_rect() {
            if !d.chip.contains_rect(&bb) {
                report.violations.push(Violation {
                    rule: Rule::ChipContainment,
                    message: format!(
                        "channel #{i} ({:?}) {bb} leaves the chip {}",
                        c.role, d.chip
                    ),
                });
            }
        }
    }
    for (i, v) in d.valves.iter().enumerate() {
        if !d.chip.contains_rect(&v.rect) {
            report.violations.push(Violation {
                rule: Rule::ChipContainment,
                message: format!("valve #{i} ({:?}) {} leaves the chip", v.kind, v.rect),
            });
        }
    }
}

fn check_module_overlap(d: &Design, report: &mut DrcReport) {
    for (i, a) in d.modules.iter().enumerate() {
        for b in &d.modules[i + 1..] {
            if a.rect.overlaps(&b.rect) {
                report.violations.push(Violation {
                    rule: Rule::ModuleOverlap,
                    message: format!(
                        "modules `{}` {} and `{}` {} overlap",
                        a.name, a.rect, b.name, b.rect
                    ),
                });
            }
        }
    }
}

fn check_same_layer_clearance(d: &Design, report: &mut DrcReport) {
    for (i, a) in d.channels.iter().enumerate() {
        for (jo, b) in d.channels[i + 1..].iter().enumerate() {
            let j = i + 1 + jo;
            if a.layer() != b.layer() {
                continue;
            }
            // internal geometry of one module is that module's business
            if a.owner.is_some() && a.owner == b.owner {
                continue;
            }
            for (si, sa) in a.path.iter().enumerate() {
                for (sj, sb) in b.path.iter().enumerate() {
                    if sa.to_rect().overlaps(&sb.to_rect()) && !overlap_is_junction(sa, sb) {
                        report.violations.push(Violation {
                            rule: Rule::SameLayerClearance,
                            message: format!(
                                "{} channels #{i}.{si} and #{j}.{sj} overlap: {} vs {}",
                                a.layer(),
                                sa,
                                sb
                            ),
                        });
                    }
                }
            }
        }
    }
}

/// Two same-layer segments may legitimately overlap where they join:
/// either they are collinear (one electrical line continuing through a
/// module, e.g. a shared control channel of a parallel group), or the
/// overlap sits within one spacing unit `d` of a segment endpoint (a T- or
/// L-junction between connected runs). Overlap in the *middle* of two
/// unrelated runs is a genuine short and is reported.
fn overlap_is_junction(sa: &columba_geom::Segment, sb: &columba_geom::Segment) -> bool {
    use columba_geom::Orientation;
    // collinear same-centreline runs are the same physical channel
    if sa.orientation() == sb.orientation() {
        return match sa.orientation() {
            Orientation::Vertical => sa.start().x == sb.start().x,
            Orientation::Horizontal => sa.start().y == sb.start().y,
        };
    }
    let Some(overlap) = sa.to_rect().intersection(&sb.to_rect()) else {
        return false;
    };
    let d = MIN_CHANNEL_SPACING;
    let near = |p: columba_geom::Point| -> bool {
        let grown = Rect::new(
            overlap.x_l() - d,
            overlap.x_r() + d,
            overlap.y_b() - d,
            overlap.y_t() + d,
        );
        grown.contains_point(p)
    };
    near(sa.start()) || near(sa.end()) || near(sb.start()) || near(sb.end())
}

fn check_module_channel_conflicts(d: &Design, report: &mut DrcReport) {
    for (i, c) in d.channels.iter().enumerate() {
        // only flow-layer transport/MUX channels conflict with module bodies;
        // control channels fly over on the other layer
        if c.layer() != Layer::Flow || c.owner.is_some() {
            continue;
        }
        for (mi, m) in d.modules.iter().enumerate() {
            for s in &c.path {
                if s.to_rect().overlaps(&m.rect) {
                    report.violations.push(Violation {
                        rule: Rule::ModuleChannelConflict,
                        message: format!(
                            "flow channel #{i} {s} runs through module `{}` (#{mi})",
                            m.name
                        ),
                    });
                }
            }
        }
    }
}

fn check_straight_discipline(d: &Design, report: &mut DrcReport) {
    for (i, c) in d.channels.iter().enumerate() {
        let Some(required) = c.role.required_orientation() else {
            continue;
        };
        if c.path.len() != 1 {
            report.violations.push(Violation {
                rule: Rule::StraightDiscipline,
                message: format!(
                    "{:?} channel #{i} has {} segments; the discipline demands one straight run",
                    c.role,
                    c.path.len()
                ),
            });
            continue;
        }
        let seg = &c.path[0];
        if seg.length() > columba_geom::Um(0) && seg.orientation() != required {
            report.violations.push(Violation {
                rule: Rule::StraightDiscipline,
                message: format!("{:?} channel #{i} {seg} must run {required}", c.role),
            });
        }
    }
}

fn check_inlet_pitch(d: &Design, report: &mut DrcReport) {
    let fluid: Vec<_> = d
        .inlets
        .iter()
        .filter(|i| i.kind == InletKind::Fluid)
        .collect();
    for (i, a) in fluid.iter().enumerate() {
        for b in &fluid[i + 1..] {
            if a.side != b.side {
                continue;
            }
            let dist = a.position.manhattan_distance(b.position);
            if dist < INLET_PITCH {
                report.violations.push(Violation {
                    rule: Rule::InletPitch,
                    message: format!(
                        "fluid inlets `{}` and `{}` on the {} boundary are {dist} apart (< d' = {})",
                        a.name, b.name, a.side, INLET_PITCH
                    ),
                });
            }
        }
    }
    let pressure: Vec<_> = d
        .inlets
        .iter()
        .filter(|i| i.kind == InletKind::Pressure)
        .collect();
    let min = MIN_CHANNEL_SPACING * 2;
    for (i, a) in pressure.iter().enumerate() {
        for b in &pressure[i + 1..] {
            if a.side != b.side {
                continue;
            }
            let dist = a.position.manhattan_distance(b.position);
            if dist < min {
                report.violations.push(Violation {
                    rule: Rule::InletPitch,
                    message: format!(
                        "pressure inlets `{}` and `{}` are {dist} apart (< 2d = {min})",
                        a.name, b.name
                    ),
                });
            }
        }
    }
}

fn check_valve_placement(d: &Design, report: &mut DrcReport) {
    let touch = |valve_rect: &Rect, ch: crate::ir::ChannelId| -> bool {
        d.channel(ch)
            .path
            .iter()
            .any(|s| s.to_rect().touches(valve_rect))
    };
    for (i, v) in d.valves.iter().enumerate() {
        if let Some(ctrl) = v.control {
            if !touch(&v.rect, ctrl) {
                report.violations.push(Violation {
                    rule: Rule::ValvePlacement,
                    message: format!(
                        "valve #{i} ({:?}) {} does not touch its control channel #{}",
                        v.kind, v.rect, ctrl.0
                    ),
                });
            }
        }
        if let Some(blocked) = v.blocks {
            if !touch(&v.rect, blocked) {
                report.violations.push(Violation {
                    rule: Rule::ValvePlacement,
                    message: format!(
                        "valve #{i} ({:?}) {} does not touch the channel it blocks (#{})",
                        v.kind, v.rect, blocked.0
                    ),
                });
            }
        }
        if v.kind == ValveKind::Mux && v.control.is_some() {
            report.violations.push(Violation {
                rule: Rule::ValvePlacement,
                message: format!(
                    "MUX valve #{i} must be actuated by a MUX-flow line, not a control channel"
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Channel, ChannelRole, Design, Inlet, PlacedModule, Valve};
    use columba_geom::{Point, Segment, Side, Um};
    use columba_netlist::ComponentId;

    fn base() -> Design {
        Design::new("t", Rect::new(Um(0), Um(30_000), Um(0), Um(20_000)))
    }

    fn module(name: &str, rect: Rect) -> PlacedModule {
        PlacedModule {
            component: ComponentId(0),
            name: name.into(),
            rect,
        }
    }

    #[test]
    fn clean_design_is_clean() {
        let mut d = base();
        d.modules.push(module(
            "m1",
            Rect::new(Um(1_000), Um(4_000), Um(1_000), Um(2_500)),
        ));
        d.channels.push(Channel::straight(
            ChannelRole::FlowTransport,
            Segment::horizontal(Um(1_750), Um(4_000), Um(8_000), Um(100)),
            None,
        ));
        d.channels.push(Channel::straight(
            ChannelRole::Control,
            Segment::vertical(Um(2_000), Um(0), Um(1_000), Um(100)),
            None,
        ));
        let r = check(&d);
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn out_of_chip_flagged() {
        let mut d = base();
        d.modules.push(module(
            "m1",
            Rect::new(Um(29_000), Um(31_000), Um(0), Um(1_000)),
        ));
        let r = check(&d);
        assert_eq!(r.of_rule(Rule::ChipContainment).len(), 1);
    }

    #[test]
    fn module_overlap_flagged() {
        let mut d = base();
        d.modules
            .push(module("a", Rect::new(Um(0), Um(2_000), Um(0), Um(2_000))));
        d.modules.push(module(
            "b",
            Rect::new(Um(1_000), Um(3_000), Um(0), Um(2_000)),
        ));
        let r = check(&d);
        assert_eq!(r.of_rule(Rule::ModuleOverlap).len(), 1);
        // flush placement is fine
        let mut d2 = base();
        d2.modules
            .push(module("a", Rect::new(Um(0), Um(2_000), Um(0), Um(2_000))));
        d2.modules.push(module(
            "b",
            Rect::new(Um(2_000), Um(4_000), Um(0), Um(2_000)),
        ));
        assert!(check(&d2).is_clean());
    }

    #[test]
    fn same_layer_overlap_flagged_cross_layer_allowed() {
        let mut d = base();
        d.channels.push(Channel::straight(
            ChannelRole::FlowTransport,
            Segment::horizontal(Um(1_000), Um(0), Um(5_000), Um(100)),
            None,
        ));
        // parallel run 50um higher: rectangles overlap, distinct centreline
        d.channels.push(Channel::straight(
            ChannelRole::FlowTransport,
            Segment::horizontal(Um(1_050), Um(2_000), Um(7_000), Um(100)),
            None,
        ));
        // crossing control channel: different layer, no violation
        d.channels.push(Channel::straight(
            ChannelRole::Control,
            Segment::vertical(Um(3_000), Um(0), Um(4_000), Um(100)),
            None,
        ));
        let r = check(&d);
        assert_eq!(r.of_rule(Rule::SameLayerClearance).len(), 1, "{r}");
    }

    #[test]
    fn collinear_continuation_is_one_line() {
        // a shared control channel passing straight through a module meets
        // the module's own collinear stub: same centreline, same line
        let mut d = base();
        d.channels.push(Channel::straight(
            ChannelRole::Control,
            Segment::vertical(Um(2_000), Um(0), Um(9_000), Um(100)),
            None,
        ));
        d.channels.push(Channel::straight(
            ChannelRole::InternalControl,
            Segment::vertical(Um(2_000), Um(4_000), Um(5_000), Um(100)),
            Some(crate::ir::ModuleId(0)),
        ));
        assert!(check(&d).is_clean());
    }

    #[test]
    fn mid_run_perpendicular_short_flagged_but_junction_allowed() {
        // internal control jog crossing a foreign control channel mid-run
        let mut d = base();
        d.channels.push(Channel::straight(
            ChannelRole::Control,
            Segment::vertical(Um(3_000), Um(0), Um(9_000), Um(100)),
            None,
        ));
        d.channels.push(Channel::straight(
            ChannelRole::InternalControl,
            Segment::horizontal(Um(5_000), Um(1_000), Um(6_000), Um(100)),
            Some(crate::ir::ModuleId(1)),
        ));
        assert_eq!(check(&d).of_rule(Rule::SameLayerClearance).len(), 1);

        // ...but a jog *ending on* the channel is a junction
        let mut d2 = base();
        d2.channels.push(Channel::straight(
            ChannelRole::Control,
            Segment::vertical(Um(3_000), Um(0), Um(9_000), Um(100)),
            None,
        ));
        d2.channels.push(Channel::straight(
            ChannelRole::InternalControl,
            Segment::horizontal(Um(5_000), Um(1_000), Um(3_000), Um(100)),
            Some(crate::ir::ModuleId(1)),
        ));
        assert!(check(&d2).is_clean());
    }

    #[test]
    fn same_module_internals_exempt() {
        let mut d = base();
        let owner = Some(crate::ir::ModuleId(0));
        d.channels.push(Channel::straight(
            ChannelRole::InternalFlow,
            Segment::horizontal(Um(1_000), Um(0), Um(2_000), Um(100)),
            owner,
        ));
        d.channels.push(Channel::straight(
            ChannelRole::InternalFlow,
            Segment::horizontal(Um(1_000), Um(500), Um(1_500), Um(100)),
            owner,
        ));
        assert!(check(&d).is_clean());
    }

    #[test]
    fn transport_through_foreign_module_flagged() {
        let mut d = base();
        d.modules.push(module(
            "m1",
            Rect::new(Um(2_000), Um(5_000), Um(500), Um(2_000)),
        ));
        d.channels.push(Channel::straight(
            ChannelRole::FlowTransport,
            Segment::horizontal(Um(1_000), Um(0), Um(10_000), Um(100)),
            None,
        ));
        let r = check(&d);
        assert_eq!(r.of_rule(Rule::ModuleChannelConflict).len(), 1);
    }

    #[test]
    fn bent_transport_channel_flagged() {
        let mut d = base();
        d.channels.push(Channel {
            role: ChannelRole::FlowTransport,
            path: vec![
                Segment::horizontal(Um(1_000), Um(0), Um(2_000), Um(100)),
                Segment::vertical(Um(2_000), Um(1_000), Um(3_000), Um(100)),
            ],
            owner: None,
        });
        let r = check(&d);
        assert_eq!(r.of_rule(Rule::StraightDiscipline).len(), 1);
    }

    #[test]
    fn vertical_flow_channel_flagged() {
        let mut d = base();
        d.channels.push(Channel::straight(
            ChannelRole::FlowTransport,
            Segment::vertical(Um(1_000), Um(0), Um(2_000), Um(100)),
            None,
        ));
        assert_eq!(check(&d).of_rule(Rule::StraightDiscipline).len(), 1);
    }

    #[test]
    fn inlet_pitch_enforced() {
        let mut d = base();
        for (i, x) in [0i64, 500].into_iter().enumerate() {
            d.inlets.push(Inlet {
                name: format!("f{i}"),
                position: Point::new(Um(x), Um(0)),
                kind: InletKind::Fluid,
                side: Side::Left,
            });
        }
        assert_eq!(check(&d).of_rule(Rule::InletPitch).len(), 1);
        // same distance on different boundaries is fine
        let mut d2 = base();
        d2.inlets.push(Inlet {
            name: "a".into(),
            position: Point::new(Um(0), Um(0)),
            kind: InletKind::Fluid,
            side: Side::Left,
        });
        d2.inlets.push(Inlet {
            name: "b".into(),
            position: Point::new(Um(0), Um(500)),
            kind: InletKind::Fluid,
            side: Side::Right,
        });
        assert!(check(&d2).is_clean());
    }

    #[test]
    fn valve_must_touch_its_channels() {
        let mut d = base();
        let ch = d.add_channel(Channel::straight(
            ChannelRole::Control,
            Segment::vertical(Um(5_000), Um(0), Um(3_000), Um(100)),
            None,
        ));
        d.valves.push(Valve {
            kind: ValveKind::Isolation,
            rect: Rect::new(Um(10_000), Um(10_200), Um(500), Um(700)),
            control: Some(ch),
            blocks: None,
            owner: None,
        });
        let r = check(&d);
        assert_eq!(r.of_rule(Rule::ValvePlacement).len(), 1);
    }

    #[test]
    fn mux_valve_must_not_have_control_channel() {
        let mut d = base();
        let ch = d.add_channel(Channel::straight(
            ChannelRole::Control,
            Segment::vertical(Um(5_000), Um(0), Um(3_000), Um(100)),
            None,
        ));
        d.valves.push(Valve {
            kind: ValveKind::Mux,
            rect: Rect::new(Um(4_900), Um(5_100), Um(500), Um(700)),
            control: Some(ch),
            blocks: Some(ch),
            owner: None,
        });
        let r = check(&d);
        assert_eq!(r.of_rule(Rule::ValvePlacement).len(), 1);
    }

    #[test]
    fn report_display() {
        let mut d = base();
        d.modules.push(module(
            "far",
            Rect::new(Um(40_000), Um(41_000), Um(0), Um(100)),
        ));
        let r = check(&d);
        assert!(!r.is_clean());
        assert!(r.to_string().contains("chip-containment"));
        assert_eq!(check(&base()).to_string(), "DRC clean");
    }
}
