//! Physical design intermediate representation, statistics and DRC.
//!
//! A [`Design`] is the output of physical synthesis: placed modules, routed
//! channels on both layers, valves, fluid/pressure inlets and multiplexer
//! units, all in exact micrometre geometry. It is consumed by the CAD
//! writers, the behavioural simulator and the design-rule checker, and it
//! exposes the metrics reported in the paper's Table 1 via
//! [`Design::stats`]:
//!
//! * chip dimension (`v_x_max × v_y_max`),
//! * functional-region flow-channel length `L_f` (MUX-internal flow
//!   channels excluded, as in the paper),
//! * number of control inlets `#c_in` and fluid inlets.
//!
//! [`drc::check`] verifies the design rules: same-layer clearance, the
//! straight-routing discipline, chip containment, inlet pitch `d'` and valve
//! positioning.
//!
//! # Examples
//!
//! ```
//! use columba_design::{Channel, ChannelRole, Design};
//! use columba_geom::{Layer, Rect, Segment, Um};
//!
//! let mut d = Design::new("demo", Rect::new(Um(0), Um(10_000), Um(0), Um(8_000)));
//! d.channels.push(Channel::straight(
//!     ChannelRole::FlowTransport,
//!     Segment::horizontal(Um(4_000), Um(0), Um(10_000), Um(100)),
//!     None,
//! ));
//! assert_eq!(d.stats().flow_channel_length, Um(10_000));
//! assert!(columba_design::drc::check(&d).is_clean());
//! ```

pub mod drc;
mod ir;
mod stats;

pub use ir::{
    Channel, ChannelId, ChannelRole, ControlLine, Design, Inlet, InletId, InletKind, ModuleId,
    MuxUnit, MuxValve, PlacedModule, Valve, ValveId, ValveKind,
};
pub use stats::DesignStats;
