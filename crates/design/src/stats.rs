//! Table 1 metrics extracted from a design.

use std::fmt;

use columba_geom::Um;

use crate::ir::{ChannelRole, Design, InletKind};

/// The design features reported in the paper's Table 1, plus a few extras.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DesignStats {
    /// Chip x dimension (`v_x_max`).
    pub width: Um,
    /// Chip y dimension (`v_y_max`).
    pub height: Um,
    /// Total flow channel length `L_f` in the functional region
    /// (MUX-internal and module-internal channels excluded).
    pub flow_channel_length: Um,
    /// Number of control (pressure) inlets `#c_in`.
    pub control_inlets: usize,
    /// Number of fluid inlets.
    pub fluid_inlets: usize,
    /// Number of valves, all kinds.
    pub valves: usize,
    /// Number of placed modules.
    pub modules: usize,
    /// Number of control channels entering the MUX boundaries.
    pub control_channels: usize,
}

impl DesignStats {
    /// Chip area in mm².
    #[must_use]
    pub fn area_mm2(&self) -> f64 {
        self.width.to_mm() * self.height.to_mm()
    }
}

impl fmt::Display for DesignStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.2}x{:.2}mm, L_f={:.2}mm, #c_in={}, fluid inlets={}, {} valves, {} modules",
            self.width.to_mm(),
            self.height.to_mm(),
            self.flow_channel_length.to_mm(),
            self.control_inlets,
            self.fluid_inlets,
            self.valves,
            self.modules
        )
    }
}

impl Design {
    /// Computes the Table 1 feature values for this design.
    #[must_use]
    pub fn stats(&self) -> DesignStats {
        let flow_channel_length = self
            .channels
            .iter()
            .filter(|c| c.role.counts_toward_flow_length())
            .map(super::Channel::length)
            .sum();
        DesignStats {
            width: self.chip.width(),
            height: self.chip.height(),
            flow_channel_length,
            control_inlets: self
                .inlets
                .iter()
                .filter(|i| i.kind == InletKind::Pressure)
                .count(),
            fluid_inlets: self
                .inlets
                .iter()
                .filter(|i| i.kind == InletKind::Fluid)
                .count(),
            valves: self.valves.len(),
            modules: self.modules.len(),
            control_channels: self.channels_with_role(ChannelRole::Control).count(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Channel, Inlet};
    use columba_geom::{Point, Rect, Segment, Side};

    #[test]
    fn stats_respect_role_filters() {
        let mut d = Design::new("t", Rect::new(Um(0), Um(20_000), Um(0), Um(10_000)));
        d.channels.push(Channel::straight(
            ChannelRole::FlowTransport,
            Segment::horizontal(Um(1_000), Um(0), Um(5_000), Um(100)),
            None,
        ));
        d.channels.push(Channel::straight(
            ChannelRole::MuxFlow,
            Segment::horizontal(Um(2_000), Um(0), Um(9_000), Um(100)),
            None,
        ));
        d.channels.push(Channel::straight(
            ChannelRole::Control,
            Segment::vertical(Um(500), Um(0), Um(7_000), Um(100)),
            None,
        ));
        d.inlets.push(Inlet {
            name: "p1".into(),
            position: Point::ORIGIN,
            kind: InletKind::Pressure,
            side: Side::Bottom,
        });
        d.inlets.push(Inlet {
            name: "f1".into(),
            position: Point::new(Um(0), Um(1_000)),
            kind: InletKind::Fluid,
            side: Side::Left,
        });
        let s = d.stats();
        assert_eq!(
            s.flow_channel_length,
            Um(5_000),
            "MUX flow excluded from L_f"
        );
        assert_eq!(s.control_inlets, 1);
        assert_eq!(s.fluid_inlets, 1);
        assert_eq!(s.control_channels, 1);
        assert_eq!(s.width, Um(20_000));
        assert!((s.area_mm2() - 200.0).abs() < 1e-9);
        assert!(s.to_string().contains("L_f=5.00mm"));
    }
}
