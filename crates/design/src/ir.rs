//! Design IR types.
//!
//! These are passive data structures in the C spirit: synthesis fills them
//! in, downstream passes (DRC, simulation, CAD export) read them. Fields are
//! public by design.

use columba_geom::{Layer, Orientation, Point, Rect, Segment, Side, Um};
use columba_netlist::ComponentId;

/// Index of a module within [`Design::modules`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ModuleId(pub usize);

/// Index of a channel within [`Design::channels`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ChannelId(pub usize);

/// Index of a valve within [`Design::valves`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ValveId(pub usize);

/// Index of an inlet within [`Design::inlets`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InletId(pub usize);

/// What a channel is for; determines which layer it lives on, its canonical
/// orientation under the straight-routing discipline, and whether it counts
/// towards `L_f`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChannelRole {
    /// Horizontal fluid-transport channel in the functional region. Counts
    /// towards `L_f`.
    FlowTransport,
    /// Vertical control channel carrying pressure from a MUX boundary to
    /// valves.
    Control,
    /// Pressurised flow-layer channel inside a multiplexer (used for
    /// multiplexing, not fluid manipulation; excluded from `L_f`).
    MuxFlow,
    /// Flow-layer channel inside a module (mixer ring, switch spine, ...);
    /// may bend, excluded from `L_f`.
    InternalFlow,
    /// Control-layer stub inside a module.
    InternalControl,
    /// Control-layer supply bus inside a multiplexer (joins every control
    /// channel to the common pressure inlet).
    MuxControl,
}

impl ChannelRole {
    /// The physical layer this role occupies.
    #[must_use]
    pub fn layer(self) -> Layer {
        match self {
            ChannelRole::FlowTransport | ChannelRole::MuxFlow | ChannelRole::InternalFlow => {
                Layer::Flow
            }
            ChannelRole::Control | ChannelRole::InternalControl | ChannelRole::MuxControl => {
                Layer::Control
            }
        }
    }

    /// The orientation the straight-routing discipline demands, or `None`
    /// when the role is exempt (module-internal geometry may bend).
    #[must_use]
    pub fn required_orientation(self) -> Option<Orientation> {
        match self {
            ChannelRole::FlowTransport => Some(Orientation::Horizontal),
            ChannelRole::Control => Some(Orientation::Vertical),
            _ => None,
        }
    }

    /// `true` when the channel length counts towards `L_f`.
    #[must_use]
    pub fn counts_toward_flow_length(self) -> bool {
        matches!(self, ChannelRole::FlowTransport)
    }
}

/// A routed channel: one or more connected axis-aligned segments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Channel {
    /// Purpose (fixes the layer).
    pub role: ChannelRole,
    /// The centreline path. Straight channels have exactly one segment.
    pub path: Vec<Segment>,
    /// The module this channel belongs to, for internal channels; `None`
    /// for transport/control/MUX channels owned by the chip.
    pub owner: Option<ModuleId>,
}

impl Channel {
    /// A single-segment channel.
    #[must_use]
    pub fn straight(role: ChannelRole, segment: Segment, owner: Option<ModuleId>) -> Channel {
        Channel {
            role,
            path: vec![segment],
            owner,
        }
    }

    /// Total centreline length.
    #[must_use]
    pub fn length(&self) -> Um {
        self.path.iter().map(Segment::length).sum()
    }

    /// The physical layer.
    #[must_use]
    pub fn layer(&self) -> Layer {
        self.role.layer()
    }

    /// Bounding rectangle of the whole path (inflated by channel widths).
    ///
    /// Returns `None` for an empty path.
    #[must_use]
    pub fn bounding_rect(&self) -> Option<Rect> {
        let rects: Vec<Rect> = self.path.iter().map(Segment::to_rect).collect();
        Rect::bounding(rects.iter())
    }
}

/// Kinds of valves in the module model library and the multiplexers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValveKind {
    /// Peristaltic pumping valve of a rotary mixer.
    Pumping,
    /// Sieve valve (washing support, Fig 3(c)).
    Sieve,
    /// Separation valve / cell trap (Fig 3(d)).
    Separation,
    /// Fluid-guidance valve at a switch junction.
    Switch,
    /// Multiplexer valve: a MUX-flow channel inflating over a control
    /// channel.
    Mux,
    /// Plain isolation valve on a transport channel.
    Isolation,
}

/// A valve: the membrane pad where a control segment crosses a flow segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Valve {
    /// Valve type.
    pub kind: ValveKind,
    /// The membrane pad area.
    pub rect: Rect,
    /// The control channel that actuates this valve (`None` for MUX valves,
    /// which are actuated by their MUX-flow channel instead).
    pub control: Option<ChannelId>,
    /// The flow channel this valve blocks when inflated (for
    /// [`ValveKind::Mux`], the *control* channel being blocked is stored
    /// here — MUX valves invert the roles).
    pub blocks: Option<ChannelId>,
    /// Owning module, if any.
    pub owner: Option<ModuleId>,
}

/// Whether an inlet carries fluid or pressure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InletKind {
    /// Fluid inlet/outlet on a flow boundary.
    Fluid,
    /// Pressure inlet feeding a control channel or a MUX.
    Pressure,
}

/// A chip-boundary inlet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Inlet {
    /// Human-readable name (port name or MUX role).
    pub name: String,
    /// Punch position.
    pub position: Point,
    /// Fluid or pressure.
    pub kind: InletKind,
    /// Which chip boundary it sits on.
    pub side: Side,
}

/// A placed module: the physical footprint of one netlist component.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlacedModule {
    /// The netlist component this realises.
    pub component: ComponentId,
    /// Component name (copied for convenience).
    pub name: String,
    /// Placed footprint.
    pub rect: Rect,
}

/// One multiplexer valve assignment: which MUX-flow line holds a valve over
/// which control channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MuxValve {
    /// Address bit index (0 = least significant).
    pub bit: usize,
    /// `true` when this valve sits on the *complement* line of the bit pair
    /// (the line inflated when the bit is 0).
    pub on_complement_line: bool,
    /// Index into [`MuxUnit::controlled`].
    pub channel: usize,
    /// The valve in [`Design::valves`].
    pub valve: ValveId,
}

/// A synthesized binary multiplexer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MuxUnit {
    /// Which chip boundary the MUX occupies ([`Side::Bottom`] or
    /// [`Side::Top`]).
    pub side: Side,
    /// The control channels this MUX drives, in index order (channel `i`
    /// has binary address `i`).
    pub controlled: Vec<ChannelId>,
    /// Region occupied by the MUX.
    pub region: Rect,
    /// The pressure-supply inlet.
    pub supply: InletId,
    /// One `(line, complement-line)` pressure inlet pair per address bit.
    pub bit_inlets: Vec<(InletId, InletId)>,
    /// The MUX-flow channels, one pair per bit, `(line, complement)`.
    pub bit_lines: Vec<(ChannelId, ChannelId)>,
    /// All MUX valves.
    pub valves: Vec<MuxValve>,
}

impl MuxUnit {
    /// Number of address bits (`ceil(log2(n))`).
    #[must_use]
    pub fn bits(&self) -> usize {
        self.bit_lines.len()
    }

    /// Pressure inlets used by this MUX: `2·bits + 1`.
    #[must_use]
    pub fn inlet_count(&self) -> usize {
        2 * self.bits() + 1
    }
}

/// One independent control line: a vertical control channel reaching a MUX
/// boundary, together with every valve it actuates (several, when parallel
/// units share the line or a valve group is ganged).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ControlLine {
    /// Line name (module + pin role).
    pub name: String,
    /// The external [`ChannelRole::Control`] channel.
    pub channel: ChannelId,
    /// Valves actuated when this line is pressurised.
    pub valves: Vec<ValveId>,
}

/// A complete physical design.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Design {
    /// Chip name (from the netlist).
    pub name: String,
    /// Chip outline including flow boundaries and MUX regions.
    pub chip: Rect,
    /// The functional region (all fluid manipulation happens here).
    pub functional_region: Rect,
    /// Placed modules.
    pub modules: Vec<PlacedModule>,
    /// All channels on both layers.
    pub channels: Vec<Channel>,
    /// All valves.
    pub valves: Vec<Valve>,
    /// All chip-boundary inlets.
    pub inlets: Vec<Inlet>,
    /// Synthesized multiplexers (0, 1 or 2).
    pub muxes: Vec<MuxUnit>,
    /// Independent control lines (channel → valves actuated).
    pub control_lines: Vec<ControlLine>,
}

impl Design {
    /// An empty design whose functional region equals the chip outline.
    #[must_use]
    pub fn new(name: impl Into<String>, chip: Rect) -> Design {
        Design {
            name: name.into(),
            chip,
            functional_region: chip,
            modules: Vec::new(),
            channels: Vec::new(),
            valves: Vec::new(),
            inlets: Vec::new(),
            muxes: Vec::new(),
            control_lines: Vec::new(),
        }
    }

    /// Adds a channel and returns its id.
    pub fn add_channel(&mut self, channel: Channel) -> ChannelId {
        self.channels.push(channel);
        ChannelId(self.channels.len() - 1)
    }

    /// Adds a valve and returns its id.
    pub fn add_valve(&mut self, valve: Valve) -> ValveId {
        self.valves.push(valve);
        ValveId(self.valves.len() - 1)
    }

    /// Adds an inlet and returns its id.
    pub fn add_inlet(&mut self, inlet: Inlet) -> InletId {
        self.inlets.push(inlet);
        InletId(self.inlets.len() - 1)
    }

    /// The channel behind `id`.
    #[must_use]
    pub fn channel(&self, id: ChannelId) -> &Channel {
        &self.channels[id.0]
    }

    /// The valve behind `id`.
    #[must_use]
    pub fn valve(&self, id: ValveId) -> &Valve {
        &self.valves[id.0]
    }

    /// The inlet behind `id`.
    #[must_use]
    pub fn inlet(&self, id: InletId) -> &Inlet {
        &self.inlets[id.0]
    }

    /// Channels with a given role.
    pub fn channels_with_role(
        &self,
        role: ChannelRole,
    ) -> impl Iterator<Item = (ChannelId, &Channel)> {
        self.channels
            .iter()
            .enumerate()
            .filter(move |(_, c)| c.role == role)
            .map(|(i, c)| (ChannelId(i), c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg_h() -> Segment {
        Segment::horizontal(Um(500), Um(0), Um(2_000), Um(100))
    }

    #[test]
    fn role_layer_and_orientation() {
        assert_eq!(ChannelRole::FlowTransport.layer(), Layer::Flow);
        assert_eq!(ChannelRole::Control.layer(), Layer::Control);
        assert_eq!(ChannelRole::MuxFlow.layer(), Layer::Flow);
        assert_eq!(
            ChannelRole::FlowTransport.required_orientation(),
            Some(Orientation::Horizontal)
        );
        assert_eq!(
            ChannelRole::Control.required_orientation(),
            Some(Orientation::Vertical)
        );
        assert_eq!(ChannelRole::InternalFlow.required_orientation(), None);
        assert!(ChannelRole::FlowTransport.counts_toward_flow_length());
        assert!(!ChannelRole::MuxFlow.counts_toward_flow_length());
    }

    #[test]
    fn channel_length_sums_path() {
        let c = Channel {
            role: ChannelRole::InternalFlow,
            path: vec![
                Segment::horizontal(Um(0), Um(0), Um(300), Um(100)),
                Segment::vertical(Um(300), Um(0), Um(200), Um(100)),
            ],
            owner: Some(ModuleId(0)),
        };
        assert_eq!(c.length(), Um(500));
        let bb = c.bounding_rect().unwrap();
        assert_eq!(bb, Rect::new(Um(0), Um(350), Um(-50), Um(200)));
    }

    #[test]
    fn design_id_accessors() {
        let mut d = Design::new("t", Rect::new(Um(0), Um(5_000), Um(0), Um(5_000)));
        let ch = d.add_channel(Channel::straight(ChannelRole::FlowTransport, seg_h(), None));
        let v = d.add_valve(Valve {
            kind: ValveKind::Isolation,
            rect: Rect::new(Um(900), Um(1_100), Um(400), Um(600)),
            control: None,
            blocks: Some(ch),
            owner: None,
        });
        let inl = d.add_inlet(Inlet {
            name: "in".into(),
            position: Point::new(Um(0), Um(500)),
            kind: InletKind::Fluid,
            side: Side::Left,
        });
        assert_eq!(d.channel(ch).role, ChannelRole::FlowTransport);
        assert_eq!(d.valve(v).blocks, Some(ch));
        assert_eq!(d.inlet(inl).kind, InletKind::Fluid);
        assert_eq!(d.channels_with_role(ChannelRole::FlowTransport).count(), 1);
        assert_eq!(d.channels_with_role(ChannelRole::Control).count(), 0);
    }

    #[test]
    fn mux_inlet_arithmetic() {
        let m = MuxUnit {
            side: Side::Bottom,
            controlled: (0..15).map(ChannelId).collect(),
            region: Rect::new(Um(0), Um(1_000), Um(0), Um(1_000)),
            supply: InletId(0),
            bit_inlets: (0..4)
                .map(|i| (InletId(2 * i + 1), InletId(2 * i + 2)))
                .collect(),
            bit_lines: (0..4)
                .map(|i| (ChannelId(100 + 2 * i), ChannelId(101 + 2 * i)))
                .collect(),
            valves: Vec::new(),
        };
        assert_eq!(m.bits(), 4);
        assert_eq!(m.inlet_count(), 9, "2*ceil(log2(15)) + 1 = 9");
    }
}
