//! Grid maze router (Lee algorithm with congestion marking).
//!
//! Columba 2.0 routes channels around modules with detours; this router
//! reproduces that behaviour: nets are routed one after another on a coarse
//! grid, around module footprints and around everything routed before them
//! on the same layer.

use std::collections::VecDeque;
use std::fmt;

use columba_geom::{Point, Rect, Um};

/// Grid cell pitch: `2d` (one channel track per cell).
pub const CELL: Um = Um(200);

/// Routing error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouteError {
    /// Source or target lies outside the grid.
    OutOfGrid(Point),
    /// No path exists between the terminals.
    NoPath {
        /// Source terminal.
        from: Point,
        /// Target terminal.
        to: Point,
    },
}

impl fmt::Display for RouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteError::OutOfGrid(p) => write!(f, "terminal {p} outside the routing grid"),
            RouteError::NoPath { from, to } => write!(f, "no route from {from} to {to}"),
        }
    }
}

impl std::error::Error for RouteError {}

/// A routing grid over a chip area.
#[derive(Debug, Clone)]
pub struct Grid {
    origin: Point,
    cols: usize,
    rows: usize,
    blocked: Vec<bool>,
}

impl Grid {
    /// Creates an all-free grid covering `area`.
    #[must_use]
    pub fn new(area: Rect) -> Grid {
        let cols = (area.width().raw() / CELL.raw()).max(1) as usize + 1;
        let rows = (area.height().raw() / CELL.raw()).max(1) as usize + 1;
        Grid {
            origin: area.origin(),
            cols,
            rows,
            blocked: vec![false; cols * rows],
        }
    }

    /// Number of cells.
    #[must_use]
    pub fn size(&self) -> (usize, usize) {
        (self.cols, self.rows)
    }

    fn cell_of(&self, p: Point) -> Option<usize> {
        let dx = (p.x - self.origin.x).raw();
        let dy = (p.y - self.origin.y).raw();
        if dx < 0 || dy < 0 {
            return None;
        }
        let (c, r) = ((dx / CELL.raw()) as usize, (dy / CELL.raw()) as usize);
        (c < self.cols && r < self.rows).then_some(r * self.cols + c)
    }

    fn center(&self, idx: usize) -> Point {
        let (r, c) = (idx / self.cols, idx % self.cols);
        Point::new(
            self.origin.x + CELL * c as i64 + CELL / 2,
            self.origin.y + CELL * r as i64 + CELL / 2,
        )
    }

    /// Marks every cell overlapping `rect` as an obstacle.
    pub fn block_rect(&mut self, rect: &Rect) {
        let lo_c = (((rect.x_l() - self.origin.x).raw()) / CELL.raw()).max(0) as usize;
        let hi_c = (((rect.x_r() - self.origin.x).raw()) / CELL.raw()).max(0) as usize;
        let lo_r = (((rect.y_b() - self.origin.y).raw()) / CELL.raw()).max(0) as usize;
        let hi_r = (((rect.y_t() - self.origin.y).raw()) / CELL.raw()).max(0) as usize;
        for r in lo_r..=hi_r.min(self.rows - 1) {
            for c in lo_c..=hi_c.min(self.cols - 1) {
                self.blocked[r * self.cols + c] = true;
            }
        }
    }

    /// Unblocks the cell containing `p` (terminals must be enterable).
    pub fn free_cell(&mut self, p: Point) {
        if let Some(i) = self.cell_of(p) {
            self.blocked[i] = false;
        }
    }

    /// Fraction of blocked cells (congestion measure).
    #[must_use]
    pub fn congestion(&self) -> f64 {
        self.blocked.iter().filter(|&&b| b).count() as f64 / self.blocked.len() as f64
    }
}

/// Routes a net from `from` to `to` with BFS (shortest rectilinear path
/// around obstacles), marks the path as blocked for subsequent nets, and
/// returns the path's length plus its bend count.
///
/// # Errors
///
/// Returns [`RouteError`] when a terminal is off-grid or fully walled in.
pub fn route(grid: &mut Grid, from: Point, to: Point) -> Result<(Um, usize), RouteError> {
    let s = grid.cell_of(from).ok_or(RouteError::OutOfGrid(from))?;
    let t = grid.cell_of(to).ok_or(RouteError::OutOfGrid(to))?;
    // terminals may sit on module boundaries that were blocked
    grid.blocked[s] = false;
    grid.blocked[t] = false;
    if s == t {
        return Ok((Um::ZERO, 0));
    }

    let mut prev = vec![usize::MAX; grid.blocked.len()];
    let mut queue = VecDeque::new();
    prev[s] = s;
    queue.push_back(s);
    let (cols, rows) = (grid.cols, grid.rows);
    'search: while let Some(v) = queue.pop_front() {
        let (r, c) = (v / cols, v % cols);
        let neighbours = [
            (c > 0).then(|| v - 1),
            (c + 1 < cols).then(|| v + 1),
            (r > 0).then(|| v - cols),
            (r + 1 < rows).then(|| v + cols),
        ];
        for w in neighbours.into_iter().flatten() {
            if prev[w] != usize::MAX || grid.blocked[w] {
                continue;
            }
            prev[w] = v;
            if w == t {
                break 'search;
            }
            queue.push_back(w);
        }
    }
    if prev[t] == usize::MAX {
        return Err(RouteError::NoPath { from, to });
    }

    // walk back, marking cells used and counting bends
    let mut length = Um::ZERO;
    let mut bends = 0usize;
    let mut cur = t;
    let mut last_dir: Option<i64> = None;
    while cur != s {
        grid.blocked[cur] = true;
        let p = prev[cur];
        let dir = cur as i64 - p as i64;
        if let Some(d) = last_dir {
            if d != dir {
                bends += 1;
            }
        }
        last_dir = Some(dir);
        length += grid.center(cur).manhattan_distance(grid.center(p));
        cur = p;
    }
    grid.blocked[s] = true;
    Ok((length, bends))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn area() -> Rect {
        Rect::new(Um(0), Um(10_000), Um(0), Um(10_000))
    }

    #[test]
    fn straight_route_has_no_bends() {
        let mut g = Grid::new(area());
        let (len, bends) = route(
            &mut g,
            Point::new(Um(100), Um(100)),
            Point::new(Um(5_000), Um(100)),
        )
        .unwrap();
        assert_eq!(bends, 0);
        assert!(
            len >= Um(4_600),
            "roughly the manhattan distance, got {len}"
        );
    }

    #[test]
    fn obstacle_forces_detour() {
        let a = Point::new(Um(100), Um(2_100));
        let b = Point::new(Um(9_900), Um(2_100));
        let mut free = Grid::new(area());
        let (direct, _) = route(&mut free, a, b).unwrap();

        let mut g = Grid::new(area());
        // a wall crossing the direct path
        g.block_rect(&Rect::new(Um(4_000), Um(4_400), Um(0), Um(8_000)));
        let (detour, bends) = route(&mut g, a, b).unwrap();
        assert!(
            detour > direct,
            "detour {detour} must exceed direct {direct}"
        );
        assert!(bends >= 2, "the wall forces at least two bends");
    }

    #[test]
    fn routed_nets_block_each_other() {
        let mut g = Grid::new(area());
        let (first, _) = route(
            &mut g,
            Point::new(Um(100), Um(5_000)),
            Point::new(Um(9_900), Um(5_000)),
        )
        .unwrap();
        // second net crossing the first must deviate
        let (second, bends) = route(
            &mut g,
            Point::new(Um(5_000), Um(100)),
            Point::new(Um(5_000), Um(9_900)),
        )
        .unwrap();
        let _ = first;
        assert!(bends >= 2, "crossing net must weave around the first");
        assert!(second > Um(9_600));
    }

    #[test]
    fn walled_in_terminal_reports_no_path() {
        let mut g = Grid::new(area());
        g.block_rect(&Rect::new(Um(0), Um(10_000), Um(4_000), Um(6_000)));
        let e = route(
            &mut g,
            Point::new(Um(100), Um(100)),
            Point::new(Um(100), Um(9_900)),
        )
        .unwrap_err();
        assert!(matches!(e, RouteError::NoPath { .. }));
    }

    #[test]
    fn off_grid_terminal_rejected() {
        let mut g = Grid::new(area());
        let e = route(
            &mut g,
            Point::new(Um(-5_000), Um(0)),
            Point::new(Um(100), Um(100)),
        )
        .unwrap_err();
        assert!(matches!(e, RouteError::OutOfGrid(_)));
    }

    #[test]
    fn congestion_grows_with_blocking() {
        let mut g = Grid::new(area());
        assert_eq!(g.congestion(), 0.0);
        g.block_rect(&Rect::new(Um(0), Um(5_000), Um(0), Um(5_000)));
        assert!(g.congestion() > 0.2);
    }
}
