//! Free-direction placement MILP + detour routing (the Columba 2.0 model).

use std::fmt;
use std::time::{Duration, Instant};

use columba_geom::{Point, Rect, Um};
use columba_milp::{Model, Sense, SolveParams, SolveStatus, VarId};
use columba_modules::ModuleModel;
use columba_netlist::{Endpoint, Netlist, NetlistError, UnitSide};

use crate::router::{route, Grid};

/// Budgets for the baseline solve.
#[derive(Debug, Clone)]
pub struct BaselineOptions {
    /// Branch & bound wall-clock budget. The paper reports Columba 2.0
    /// needing 300–750 s on the small cases and failing on the large ones;
    /// cap this to taste and the harness reports "≥ cap" on timeout.
    pub time_limit: Duration,
    /// Node budget.
    pub node_limit: usize,
}

impl Default for BaselineOptions {
    fn default() -> BaselineOptions {
        BaselineOptions {
            time_limit: Duration::from_secs(60),
            node_limit: 500_000,
        }
    }
}

/// Error raised by the baseline synthesizer.
#[derive(Debug)]
pub enum BaselineError {
    /// The netlist is not planarized/valid.
    Netlist(NetlistError),
    /// The MILP failed numerically.
    Milp(String),
    /// No feasible placement found within budget.
    NoPlacement,
}

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaselineError::Netlist(e) => write!(f, "netlist not ready: {e}"),
            BaselineError::Milp(m) => write!(f, "baseline MILP failed: {m}"),
            BaselineError::NoPlacement => f.write_str("no feasible placement within budget"),
        }
    }
}

impl std::error::Error for BaselineError {}

impl From<NetlistError> for BaselineError {
    fn from(e: NetlistError) -> BaselineError {
        BaselineError::Netlist(e)
    }
}

/// Table 1 metrics of a baseline run.
#[derive(Debug, Clone)]
pub struct BaselineResult {
    /// Chip width.
    pub width: Um,
    /// Chip height.
    pub height: Um,
    /// Total routed flow-channel length (with detours).
    pub flow_channel_length: Um,
    /// Control inlets under pairwise pressure sharing.
    pub control_inlets: usize,
    /// Fluid inlets (one per port connection).
    pub fluid_inlets: usize,
    /// Placement solver status.
    pub status: SolveStatus,
    /// Wall-clock time (placement + routing).
    pub elapsed: Duration,
    /// Placed module rectangles by component name.
    pub placements: Vec<(String, Rect)>,
    /// Total bends introduced by detour routing.
    pub bends: usize,
    /// Nets that could not be routed and were estimated instead.
    pub unrouted_nets: usize,
}

/// Runs the Columba 2.0-style synthesis on a **planarized** netlist.
///
/// # Errors
///
/// Returns [`BaselineError`] when the netlist is invalid, the MILP breaks
/// numerically, or no placement exists within the budget.
pub fn synthesize_baseline(
    netlist: &Netlist,
    options: &BaselineOptions,
) -> Result<BaselineResult, BaselineError> {
    netlist.validate_planarized()?;
    let start = Instant::now();

    // ---- module list ----
    struct Unit {
        name: String,
        w: Um,
        h: Um,
        lines: usize,
    }
    let units: Vec<Unit> = netlist
        .components()
        .iter()
        .map(|c| {
            let m = ModuleModel::for_component(&c.kind);
            Unit {
                name: c.name.clone(),
                w: m.width,
                h: m.length.unwrap_or(m.min_length),
                lines: m.control_pin_count,
            }
        })
        .collect();
    let n = units.len();
    let total_lines: usize = units.iter().map(|u| u.lines).sum();

    // ---- MILP: free placement with rotation, all-pairs disjunctions ----
    let bound_mm: f64 = units.iter().map(|u| (u.w + u.h).to_mm()).sum::<f64>() + 20.0;
    let big_m = bound_mm;
    let mut model = Model::new();
    let w_max = model.num_var("w", 0.0, bound_mm);
    let h_max = model.num_var("h", 0.0, bound_mm);

    struct UnitVars {
        xl: VarId,
        yb: VarId,
        rot: VarId,
    }
    let mut uv: Vec<UnitVars> = Vec::with_capacity(n);
    for (i, u) in units.iter().enumerate() {
        let xl = model.num_var(format!("x{i}"), 0.0, bound_mm);
        let yb = model.num_var(format!("y{i}"), 0.0, bound_mm);
        let rot = model.bin_var(format!("r{i}"));
        // confinement with rotation: xl + w + (h-w)rot <= W
        let (w, h) = (u.w.to_mm(), u.h.to_mm());
        model.constraint(
            Model::expr()
                .term(1.0, xl)
                .term(h - w, rot)
                .term(-1.0, w_max),
            Sense::Le,
            -w,
        );
        model.constraint(
            Model::expr()
                .term(1.0, yb)
                .term(w - h, rot)
                .term(-1.0, h_max),
            Sense::Le,
            -h,
        );
        uv.push(UnitVars { xl, yb, rot });
    }

    // all-pairs non-overlap (no order pruning: this is the point)
    for i in 0..n {
        for j in (i + 1)..n {
            let (wi, hi) = (units[i].w.to_mm(), units[i].h.to_mm());
            let (wj, hj) = (units[j].w.to_mm(), units[j].h.to_mm());
            let q: [VarId; 4] = std::array::from_fn(|k| model.bin_var(format!("q{i}_{j}_{k}")));
            // i left of j: xi + wi_eff <= xj + qM
            model.constraint(
                Model::expr()
                    .term(1.0, uv[i].xl)
                    .term(hi - wi, uv[i].rot)
                    .term(-1.0, uv[j].xl)
                    .term(-big_m, q[0]),
                Sense::Le,
                -wi,
            );
            model.constraint(
                Model::expr()
                    .term(1.0, uv[j].xl)
                    .term(hj - wj, uv[j].rot)
                    .term(-1.0, uv[i].xl)
                    .term(-big_m, q[1]),
                Sense::Le,
                -wj,
            );
            model.constraint(
                Model::expr()
                    .term(1.0, uv[i].yb)
                    .term(wi - hi, uv[i].rot)
                    .term(-1.0, uv[j].yb)
                    .term(-big_m, q[2]),
                Sense::Le,
                -hi,
            );
            model.constraint(
                Model::expr()
                    .term(1.0, uv[j].yb)
                    .term(wj - hj, uv[j].rot)
                    .term(-1.0, uv[i].yb)
                    .term(-big_m, q[3]),
                Sense::Le,
                -hj,
            );
            let mut sum = Model::expr();
            for &qv in &q {
                sum = sum.term(1.0, qv);
            }
            model.constraint(sum, Sense::Eq, 3.0);
        }
    }

    // nets: half-perimeter wirelength between unit centres
    let mut wl_terms: Vec<VarId> = Vec::new();
    let center_x = |i: usize| -> (VarId, VarId, f64, f64) {
        // cx = xl + w/2 + rot*(h-w)/2
        let (w, h) = (units[i].w.to_mm(), units[i].h.to_mm());
        (uv[i].xl, uv[i].rot, w / 2.0, (h - w) / 2.0)
    };
    let center_y = |i: usize| -> (VarId, VarId, f64, f64) {
        let (w, h) = (units[i].w.to_mm(), units[i].h.to_mm());
        (uv[i].yb, uv[i].rot, h / 2.0, (w - h) / 2.0)
    };
    for (ci, conn) in netlist.connections().iter().enumerate() {
        let (Endpoint::Unit { component: a, .. }, Endpoint::Unit { component: b, .. }) =
            (&conn.from, &conn.to)
        else {
            continue; // port nets priced at routing time
        };
        for (axis, (pa, pb)) in [
            (0, (center_x(a.0), center_x(b.0))),
            (1, (center_y(a.0), center_y(b.0))),
        ] {
            let d = model.num_var(format!("d{axis}_{ci}"), 0.0, bound_mm);
            let (va, ra, ca, sa) = pa;
            let (vb, rb, cb, sb) = pb;
            // d >= (ca_expr) - (cb_expr) and the reverse
            model.constraint(
                Model::expr()
                    .term(1.0, va)
                    .term(sa, ra)
                    .term(-1.0, vb)
                    .term(-sb, rb)
                    .term(-1.0, d),
                Sense::Le,
                cb - ca,
            );
            model.constraint(
                Model::expr()
                    .term(1.0, vb)
                    .term(sb, rb)
                    .term(-1.0, va)
                    .term(-sa, ra)
                    .term(-1.0, d),
                Sense::Le,
                ca - cb,
            );
            wl_terms.push(d);
        }
    }

    let mut obj = Model::expr().term(1.0, w_max).term(1.0, h_max);
    for &d in &wl_terms {
        obj = obj.term(0.2, d);
    }
    model.minimize(obj);

    // greedy row-packing incumbent (rot = 0)
    let dims: Vec<(f64, f64)> = units.iter().map(|u| (u.w.to_mm(), u.h.to_mm())).collect();
    let rots: Vec<VarId> = uv.iter().map(|u| u.rot).collect();
    let hint = row_pack_hint(&dims, &rots, &model);

    let params = SolveParams {
        time_limit: options.time_limit,
        node_limit: options.node_limit,
        ..SolveParams::default()
    };
    let result = model
        .solve_with_hint(&params, &hint)
        .map_err(|e| BaselineError::Milp(e.to_string()))?;
    let Some(sol) = result.solution() else {
        return Err(BaselineError::NoPlacement);
    };

    // ---- extract placement ----
    let mut placements = Vec::with_capacity(n);
    for (i, u) in units.iter().enumerate() {
        let rot = sol.value(uv[i].rot) > 0.5;
        let (w, h) = if rot { (u.h, u.w) } else { (u.w, u.h) };
        let x = Um::from_mm(sol.value(uv[i].xl));
        let y = Um::from_mm(sol.value(uv[i].yb));
        placements.push((u.name.clone(), Rect::new(x, x + w, y, y + h)));
    }
    let width = Um::from_mm(sol.value(w_max)).max(Um(1_000));
    let height = Um::from_mm(sol.value(h_max)).max(Um(1_000));

    // ---- detour routing ----
    let area = Rect::new(Um::ZERO, width, Um::ZERO, height);
    let mut grid = Grid::new(area);
    for (_, r) in &placements {
        grid.block_rect(r);
    }
    let mut flow_len = Um::ZERO;
    let mut bends = 0usize;
    let mut unrouted = 0usize;
    let mut fluid_inlets = 0usize;
    let terminal = |i: usize, side: UnitSide| -> Point {
        let r = &placements[i].1;
        let y = (r.y_b() + r.y_t()) / 2;
        match side {
            UnitSide::Left => Point::new(r.x_l(), y),
            UnitSide::Right => Point::new(r.x_r(), y),
        }
    };
    for conn in netlist.connections() {
        let ends: Vec<Point> = [conn.from, conn.to]
            .iter()
            .map(|e| match e {
                Endpoint::Unit { component, side } => terminal(component.0, *side),
                Endpoint::Port(_) => {
                    fluid_inlets += 1;
                    Point::new(Um::ZERO, height / 2) // resolved below
                }
            })
            .collect();
        let (a, b) = match (&conn.from, &conn.to) {
            (Endpoint::Port(_), Endpoint::Port(_)) => continue,
            (Endpoint::Port(_), _) => {
                // port enters from the nearer vertical boundary at pin height
                let u = ends[1];
                let px = if u.x < width / 2 { Um::ZERO } else { width };
                (Point::new(px, u.y), u)
            }
            (_, Endpoint::Port(_)) => {
                let u = ends[0];
                let px = if u.x < width / 2 { Um::ZERO } else { width };
                (u, Point::new(px, u.y))
            }
            _ => (ends[0], ends[1]),
        };
        match route(&mut grid, a, b) {
            Ok((len, bd)) => {
                flow_len += len;
                bends += bd;
            }
            Err(_) => {
                unrouted += 1;
                flow_len += a.manhattan_distance(b) * 3 / 2;
            }
        }
    }

    Ok(BaselineResult {
        width,
        height,
        flow_channel_length: flow_len,
        control_inlets: total_lines.div_ceil(2),
        fluid_inlets,
        status: result.status(),
        elapsed: start.elapsed(),
        placements,
        bends,
        unrouted_nets: unrouted,
    })
}

/// Greedy shelf packing for the warm-start incumbent: rows of units, no
/// rotation, disjunction binaries fixed accordingly.
fn row_pack_hint(dims: &[(f64, f64)], rots: &[VarId], model: &Model) -> Vec<(VarId, f64)> {
    let n = dims.len();
    let total_w: f64 = dims.iter().map(|&(w, _)| w).sum();
    let shelf_w =
        (total_w / (n as f64).sqrt()).max(dims.iter().map(|&(w, _)| w).fold(0.0, f64::max));
    let mut pos: Vec<(f64, f64)> = Vec::with_capacity(n);
    let (mut x, mut y, mut row_h) = (0.0f64, 0.0f64, 0.0f64);
    for &(w, h) in dims {
        if x + w > shelf_w + 1e-9 && x > 0.0 {
            y += row_h + 0.6;
            x = 0.0;
            row_h = 0.0;
        }
        pos.push((x, y));
        x += w + 0.6;
        row_h = row_h.max(h);
    }
    let rect = |i: usize| -> (f64, f64, f64, f64) {
        let (px, py) = pos[i];
        (px, px + dims[i].0, py, py + dims[i].1)
    };
    let mut hint: Vec<(VarId, f64)> = rots.iter().map(|&r| (r, 0.0)).collect();
    // q variables were created in (i, j) order with names q{i}_{j}_{k};
    // recover them by scanning the model's integer vars in order
    let mut q_iter = model
        .integer_vars()
        .into_iter()
        .filter(|&v| model.var_name(v).starts_with('q'));
    for i in 0..n {
        for j in (i + 1)..n {
            let a = rect(i);
            let b = rect(j);
            let zero = if a.1 <= b.0 {
                0
            } else if b.1 <= a.0 {
                1
            } else if a.3 <= b.2 {
                2
            } else {
                3
            };
            for k in 0..4 {
                let v = q_iter.next().expect("one q per (pair, relation)");
                hint.push((v, if k == zero { 0.0 } else { 1.0 }));
            }
        }
    }
    hint
}

#[cfg(test)]
mod tests {
    use super::*;
    use columba_netlist::{generators, MuxCount};
    use columba_planar::planarize;

    fn opts(secs: u64) -> BaselineOptions {
        BaselineOptions {
            time_limit: Duration::from_secs(secs),
            node_limit: 50_000,
        }
    }

    #[test]
    fn small_case_places_and_routes() {
        let (n, _) = planarize(&generators::nucleic_acid_processor(MuxCount::One));
        let r = synthesize_baseline(&n, &opts(10)).unwrap();
        assert!(r.status.has_solution());
        assert_eq!(r.placements.len(), n.components().len());
        assert!(r.width > Um::ZERO && r.height > Um::ZERO);
        assert!(r.flow_channel_length > Um::ZERO);
        // placements must not overlap
        for (i, (_, a)) in r.placements.iter().enumerate() {
            for (_, b) in &r.placements[i + 1..] {
                assert!(!a.overlaps(b), "{a} overlaps {b}");
            }
        }
    }

    #[test]
    fn pressure_sharing_counts_linear() {
        let (n, _) = planarize(&generators::chip_ip(4, MuxCount::One));
        let r = synthesize_baseline(&n, &opts(5)).unwrap();
        // 42 lines paired -> 21 inlets: linear in design size, far above the
        // 13 of the Columba S multiplexer
        assert_eq!(r.control_inlets, 21);
    }

    #[test]
    fn unplanarized_rejected() {
        let n = generators::chip_ip(4, MuxCount::One);
        assert!(matches!(
            synthesize_baseline(&n, &opts(1)),
            Err(BaselineError::Netlist(_))
        ));
    }
}
