//! Columba 2.0-style co-layout baseline.
//!
//! Table 1 of the paper compares Columba S against Columba 2.0, which is
//! closed source. This crate substitutes a synthesizer built from the
//! *published* Columba/2.0 model ingredients, preserving exactly the
//! behaviour the comparison depends on:
//!
//! * **free-direction placement MILP** — one rectangle per module (no
//!   parallel-unit merging, no channel merging), a rotation binary per
//!   module, all-pairs non-overlap disjunctions with *no* order pruning:
//!   the combinatorially larger search space that makes Columba 2.0's
//!   runtime explode with design size;
//! * **detour routing** — a grid maze router ([`route`]) realises every
//!   net after placement, routing around module footprints and previously
//!   routed channels, so flow-channel length carries the detours Columba S
//!   avoids (Table 1 trend 3);
//! * **pressure sharing** — control lines pair up on shared inlets when
//!   their actuation windows are compatible, modelled as at most two lines
//!   per inlet: `#c_in = ceil(lines / 2)`, which grows *linearly* with the
//!   design instead of logarithmically (Table 1 trend 2);
//! * **no multiplexer area overhead** — baseline chips are smaller on
//!   small designs (Table 1 trend 4).
//!
//! The solver budget is configurable; when it expires the incumbent found
//! so far is reported (the paper reports Columba 2.0 as unable to solve the
//! two large cases "within reasonable run time").

mod placer;
mod router;

pub use placer::{synthesize_baseline, BaselineOptions, BaselineResult};
pub use router::{route, Grid, RouteError};
