//! A tiny deterministic pseudo-random number generator.
//!
//! The workspace builds with **zero registry dependencies** (see the offline
//! build policy in `DESIGN.md`), so the netlist generators and the
//! randomized tests cannot use the `rand` crate. This crate provides the
//! small slice of functionality they need: a seedable, reproducible,
//! high-quality 64-bit generator.
//!
//! The implementation is xoshiro256++ by Blackman and Vigna (public
//! domain), seeded from a single `u64` through splitmix64 as the authors
//! recommend. It is *not* cryptographically secure and is not meant to be.
//!
//! # Examples
//!
//! ```
//! use columba_prng::Rng;
//!
//! let mut rng = Rng::seed_from_u64(42);
//! let coin = rng.gen_bool(0.5);
//! let lane = rng.gen_range(0usize..8);
//! assert!(lane < 8);
//! // same seed, same stream
//! let mut again = Rng::seed_from_u64(42);
//! assert_eq!(again.gen_bool(0.5), coin);
//! ```

/// splitmix64 step: turns any 64-bit value into a well-mixed successor.
#[must_use]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// xoshiro256++ generator. Construct with [`Rng::seed_from_u64`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Seeds the full 256-bit state from one `u64` via splitmix64.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Rng {
        let mut sm = seed;
        Rng {
            s: std::array::from_fn(|_| splitmix64(&mut sm)),
        }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform `f64` in `[0, 1)` (53 random mantissa bits).
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// A uniform value in the given (half-open or inclusive) range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// Debiased uniform integer in `[0, n)` via Lemire-style rejection.
    fn bounded(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty range");
        let threshold = n.wrapping_neg() % n;
        loop {
            let v = self.next_u64();
            let (hi, lo) = {
                let wide = u128::from(v) * u128::from(n);
                ((wide >> 64) as u64, wide as u64)
            };
            if lo >= threshold {
                return hi;
            }
        }
    }
}

/// Ranges [`Rng::gen_range`] can sample from.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one uniform value.
    fn sample(self, rng: &mut Rng) -> Self::Output;
}

impl SampleRange for std::ops::Range<usize> {
    type Output = usize;
    fn sample(self, rng: &mut Rng) -> usize {
        assert!(self.start < self.end, "empty range");
        self.start + rng.bounded((self.end - self.start) as u64) as usize
    }
}

impl SampleRange for std::ops::RangeInclusive<usize> {
    type Output = usize;
    fn sample(self, rng: &mut Rng) -> usize {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        lo + rng.bounded((hi - lo) as u64 + 1) as usize
    }
}

impl SampleRange for std::ops::Range<i64> {
    type Output = i64;
    fn sample(self, rng: &mut Rng) -> i64 {
        assert!(self.start < self.end, "empty range");
        self.start + rng.bounded(self.start.abs_diff(self.end)) as i64
    }
}

impl SampleRange for std::ops::RangeInclusive<i64> {
    type Output = i64;
    fn sample(self, rng: &mut Rng) -> i64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        lo + rng.bounded(lo.abs_diff(hi) + 1) as i64
    }
}

impl SampleRange for std::ops::Range<u64> {
    type Output = u64;
    fn sample(self, rng: &mut Rng) -> u64 {
        assert!(self.start < self.end, "empty range");
        self.start + rng.bounded(self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = Rng::seed_from_u64(7);
        let mut b = Rng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn splitmix_reference_values() {
        // reference output of splitmix64 for seed 0 (from the public-domain
        // reference implementation)
        let mut s = 0u64;
        assert_eq!(splitmix64(&mut s), 0xe220_a839_7b1d_cdaf);
        assert_eq!(splitmix64(&mut s), 0x6e78_9e6a_a1b9_65f4);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Rng::seed_from_u64(1);
        for _ in 0..1_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(5usize..=5);
            assert_eq!(w, 5);
            let x = rng.gen_range(-10i64..=10);
            assert!((-10..=10).contains(&x));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = Rng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 8 values appear in 1000 draws");
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Rng::seed_from_u64(3);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let f = rng.gen_f64();
            assert!((0.0..1.0).contains(&f));
            sum += f;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = Rng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "{hits} hits for p=0.3");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
