//! Simulator tests on a hand-built toy chip: one flow channel crossing
//! three valve-controlled segments, driven by a 3-channel bottom MUX.

use columba_design::{
    Channel, ChannelRole, ControlLine, Design, Inlet, InletId, InletKind, Valve, ValveKind,
};
use columba_geom::{Point, Rect, Segment, Side, Um};
use columba_mux::{required_height, synthesize};
use columba_sim::{Protocol, SimError, Simulator, VALVE_ACTUATION_MS};

/// Builds a design with `n` flow segments in a row (chained), each blocked
/// by one valve, each valve on its own control line, one bottom MUX.
fn toy(n: usize) -> Design {
    let mux_h = required_height(n);
    let chip = Rect::new(Um(0), Um(2_000 + 2_000 * n as i64), Um(0), Um(30_000));
    let mut d = Design::new("toy", chip);
    d.functional_region = Rect::new(chip.x_l(), chip.x_r(), mux_h, chip.y_t());
    let y = mux_h + Um(5_000);

    let mut control_ids = Vec::new();
    for i in 0..n {
        let x0 = Um(1_000 + 2_000 * i as i64);
        let x1 = x0 + Um(2_000);
        let seg = d.add_channel(Channel::straight(
            ChannelRole::FlowTransport,
            Segment::horizontal(y, x0, x1, Um(100)),
            None,
        ));
        let cx = (x0 + x1) / 2;
        let ctrl = d.add_channel(Channel::straight(
            ChannelRole::Control,
            Segment::vertical(cx, mux_h, y, Um(100)),
            None,
        ));
        let valve = d.add_valve(Valve {
            kind: ValveKind::Isolation,
            rect: Rect::new(cx - Um(100), cx + Um(100), y - Um(100), y + Um(100)),
            control: Some(ctrl),
            blocks: Some(seg),
            owner: None,
        });
        d.control_lines.push(ControlLine {
            name: format!("line{i}"),
            channel: ctrl,
            valves: vec![valve],
        });
        control_ids.push(ctrl);
    }
    // inlets at both ends of the chain
    d.add_inlet(Inlet {
        name: "in".into(),
        position: Point::new(Um(1_000), y),
        kind: InletKind::Fluid,
        side: Side::Left,
    });
    d.add_inlet(Inlet {
        name: "out".into(),
        position: Point::new(Um(1_000 + 2_000 * n as i64), y),
        kind: InletKind::Fluid,
        side: Side::Right,
    });
    let region = Rect::new(chip.x_l(), chip.x_r(), Um(0), mux_h);
    synthesize(&mut d, control_ids, Side::Bottom, region).expect("toy mux builds");
    d
}

#[test]
fn open_chip_lets_fluid_through() {
    let d = toy(3);
    let sim = Simulator::new(&d).expect("simulator builds");
    assert_eq!(sim.line_count(), 3);
    assert!(sim.fluid_path_exists(InletId(0), InletId(1)).unwrap());
}

#[test]
fn closing_any_valve_blocks_the_path_and_latching_holds() {
    let d = toy(3);
    let mut sim = Simulator::new(&d).unwrap();
    let ev = sim.actuate(1, true).unwrap();
    assert_eq!(ev.address, 1);
    assert_eq!(ev.mux_side, Side::Bottom);
    assert!(!sim.fluid_path_exists(InletId(0), InletId(1)).unwrap());
    // the MUX moves on to another line; line 1 stays latched
    sim.actuate(2, true).unwrap();
    assert!(sim.line_pressurized(1), "PDMS latching holds pressure");
    // vent both: path restored
    sim.actuate(1, false).unwrap();
    sim.actuate(2, false).unwrap();
    assert!(sim.fluid_path_exists(InletId(0), InletId(1)).unwrap());
}

#[test]
fn actuation_timing_accumulates() {
    let d = toy(4);
    let mut sim = Simulator::new(&d).unwrap();
    let mut p = Protocol::new();
    p.single(0, true).single(1, true).single(0, false);
    let report = sim.run_protocol(&p).unwrap();
    assert_eq!(report.actuations, 3);
    assert_eq!(report.slots, 3);
    assert_eq!(report.total_ms, 3 * VALVE_ACTUATION_MS);
    assert_eq!(sim.elapsed_ms(), 3 * VALVE_ACTUATION_MS);
}

#[test]
fn one_mux_rejects_simultaneous_pairs() {
    let d = toy(3);
    let mut sim = Simulator::new(&d).unwrap();
    assert_eq!(
        sim.actuate_pair((0, true), (1, true)).unwrap_err(),
        SimError::SameMuxSimultaneous
    );
}

#[test]
fn line_lookup_by_name() {
    let d = toy(2);
    let sim = Simulator::new(&d).unwrap();
    assert_eq!(sim.line_by_name("line1").unwrap(), 1);
    assert!(matches!(
        sim.line_by_name("nope"),
        Err(SimError::UnknownLine(_))
    ));
    assert_eq!(sim.line_name(0), "line0");
}

#[test]
fn valve_closed_tracks_lines() {
    let d = toy(2);
    let mut sim = Simulator::new(&d).unwrap();
    let v0 = d.control_lines[0].valves[0];
    assert!(!sim.valve_closed(v0));
    sim.actuate(0, true).unwrap();
    assert!(sim.valve_closed(v0));
}

#[test]
fn unmuxed_line_rejected_at_construction() {
    let mut d = toy(2);
    // add a control line whose channel no MUX drives
    let orphan = d.add_channel(Channel::straight(
        ChannelRole::Control,
        Segment::vertical(Um(500), Um(10_000), Um(12_000), Um(100)),
        None,
    ));
    d.control_lines.push(ControlLine {
        name: "orphan".into(),
        channel: orphan,
        valves: vec![],
    });
    assert!(matches!(Simulator::new(&d), Err(SimError::LineNotMuxed(_))));
}

#[test]
fn out_of_range_inputs_error() {
    let d = toy(2);
    let mut sim = Simulator::new(&d).unwrap();
    assert!(matches!(
        sim.actuate(99, true),
        Err(SimError::LineOutOfRange(99))
    ));
    assert!(matches!(
        sim.reachable_channels(InletId(99)),
        Err(SimError::UnknownInlet(99))
    ));
}
