//! Behavioural mLSI chip simulator.
//!
//! The paper demonstrates its designs on fabricated PDMS chips (Figs 7(c)
//! and 8); this crate demonstrates the same properties in software. A
//! [`Simulator`] wraps a synthesized [`Design`] and models:
//!
//! * **multiplexer addressing** — actuating a control line means setting the
//!   owning MUX's address to that line's channel and pushing/releasing
//!   pressure; the selection is evaluated from the synthesized valve matrix
//!   (via [`columba_mux::selection`]), so a mis-built MUX is caught here;
//! * **latching** — PDMS holds a valve's pressure for many minutes (§2.2),
//!   so previously actuated lines keep their state while the MUX moves on;
//!   only the *rate of change* is limited: one line per MUX at a time,
//!   hence one for 1-MUX designs and two for 2-MUX designs;
//! * **valve blocking and fluid reachability** — a pressurised line closes
//!   its valves; closed valves block their flow channels; reachability
//!   between fluid inlets is a BFS over touching flow-layer channels;
//! * **timing** — each actuation costs [`VALVE_ACTUATION_MS`] (10 ms,
//!   ref [22] of the paper), so protocols report execution time.
//!
//! # Examples
//!
//! See `examples/protocol.rs` in the repository root for a full scheduling
//! run on a synthesized chip.
//!
//! [`Design`]: columba_design::Design

mod flowgraph;
mod protocol;
mod simulator;

pub use protocol::{Protocol, ProtocolReport, Step};
pub use simulator::{ActuationEvent, SimError, Simulator, VALVE_ACTUATION_MS};
