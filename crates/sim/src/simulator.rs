//! The chip simulator core.

use std::collections::{HashMap, HashSet};
use std::fmt;

use columba_design::{ChannelId, Design, InletId, ValveId};
use columba_geom::Side;
use columba_mux::selection;

use crate::flowgraph::FlowGraph;

/// Valve actuation latency (ref [22] of the paper): 10 ms.
pub const VALVE_ACTUATION_MS: u64 = 10;

/// Errors raised by the simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The named control line does not exist.
    UnknownLine(String),
    /// Line index out of range.
    LineOutOfRange(usize),
    /// The line's control channel is not driven by any MUX.
    LineNotMuxed(usize),
    /// Two simultaneous actuations landed on the same MUX — Columba S can
    /// drive at most one line per MUX at a time (§2.2).
    SameMuxSimultaneous,
    /// The MUX valve matrix does not isolate the addressed channel (a
    /// synthesis bug caught at simulation time).
    SelectionBroken {
        /// Address applied.
        address: usize,
        /// Channels the matrix left open.
        open: Vec<usize>,
    },
    /// Unknown fluid inlet.
    UnknownInlet(usize),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UnknownLine(n) => write!(f, "unknown control line `{n}`"),
            SimError::LineOutOfRange(i) => write!(f, "control line #{i} out of range"),
            SimError::LineNotMuxed(i) => write!(f, "control line #{i} reaches no multiplexer"),
            SimError::SameMuxSimultaneous => {
                f.write_str("simultaneous actuations must use different multiplexers")
            }
            SimError::SelectionBroken { address, open } => {
                write!(f, "MUX address {address} leaves channels {open:?} open")
            }
            SimError::UnknownInlet(i) => write!(f, "unknown fluid inlet #{i}"),
        }
    }
}

impl std::error::Error for SimError {}

/// What one actuation did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ActuationEvent {
    /// Control line index.
    pub line: usize,
    /// `true` = pressurised (valves closed), `false` = vented.
    pub pressurized: bool,
    /// The MUX boundary used.
    pub mux_side: Side,
    /// The binary address applied to that MUX.
    pub address: usize,
    /// Simulation time after the actuation, in ms.
    pub time_ms: u64,
}

/// A behavioural simulation of one synthesized design.
///
/// The simulator indexes the design's control lines, multiplexers and flow
/// graph once at construction; actuations and queries are then cheap.
#[derive(Debug, Clone)]
pub struct Simulator<'a> {
    design: &'a Design,
    graph: FlowGraph,
    /// latched pressure per control line
    pressurized: Vec<bool>,
    /// control line index per channel
    line_of_channel: HashMap<ChannelId, usize>,
    /// (mux index, address) per control line
    mux_of_line: HashMap<usize, (usize, usize)>,
    time_ms: u64,
}

impl<'a> Simulator<'a> {
    /// Builds a simulator over `design`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::LineNotMuxed`] when a control line's channel is
    /// not driven by any synthesized MUX.
    pub fn new(design: &'a Design) -> Result<Simulator<'a>, SimError> {
        let graph = FlowGraph::build(design);
        let mut line_of_channel = HashMap::new();
        for (li, line) in design.control_lines.iter().enumerate() {
            line_of_channel.insert(line.channel, li);
        }
        let mut mux_of_line = HashMap::new();
        for (mi, m) in design.muxes.iter().enumerate() {
            for (addr, &ch) in m.controlled.iter().enumerate() {
                if let Some(&li) = line_of_channel.get(&ch) {
                    mux_of_line.insert(li, (mi, addr));
                }
            }
        }
        for li in 0..design.control_lines.len() {
            if !mux_of_line.contains_key(&li) {
                return Err(SimError::LineNotMuxed(li));
            }
        }
        Ok(Simulator {
            design,
            graph,
            pressurized: vec![false; design.control_lines.len()],
            line_of_channel,
            mux_of_line,
            time_ms: 0,
        })
    }

    /// Number of independent control lines.
    #[must_use]
    pub fn line_count(&self) -> usize {
        self.pressurized.len()
    }

    /// Finds a control line by name.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownLine`] when no line matches.
    pub fn line_by_name(&self, name: &str) -> Result<usize, SimError> {
        self.design
            .control_lines
            .iter()
            .position(|l| l.name == name)
            .ok_or_else(|| SimError::UnknownLine(name.to_string()))
    }

    /// Name of a control line.
    ///
    /// # Panics
    ///
    /// Panics if `line` is out of range.
    #[must_use]
    pub fn line_name(&self, line: usize) -> &str {
        &self.design.control_lines[line].name
    }

    /// Actuates one control line: addresses its MUX, pushes or vents the
    /// pressure, verifies the MUX isolates exactly that channel, and
    /// advances time by [`VALVE_ACTUATION_MS`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] for out-of-range lines and broken selections.
    pub fn actuate(&mut self, line: usize, pressurize: bool) -> Result<ActuationEvent, SimError> {
        if line >= self.pressurized.len() {
            return Err(SimError::LineOutOfRange(line));
        }
        let &(mi, addr) = self
            .mux_of_line
            .get(&line)
            .ok_or(SimError::LineNotMuxed(line))?;
        let mux = &self.design.muxes[mi];
        // evaluate the synthesized valve matrix: exactly this channel open
        let sel = selection(mux, addr);
        let open = sel.open_channels();
        if open != vec![addr] {
            return Err(SimError::SelectionBroken {
                address: addr,
                open,
            });
        }
        self.pressurized[line] = pressurize;
        self.time_ms += VALVE_ACTUATION_MS;
        Ok(ActuationEvent {
            line,
            pressurized: pressurize,
            mux_side: mux.side,
            address: addr,
            time_ms: self.time_ms,
        })
    }

    /// Actuates two lines simultaneously — only possible on a 2-MUX design
    /// with the lines on different multiplexers (§2.2). Costs one
    /// [`VALVE_ACTUATION_MS`], not two.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::SameMuxSimultaneous`] when both lines share a
    /// MUX, plus the per-line errors of [`Simulator::actuate`].
    pub fn actuate_pair(
        &mut self,
        a: (usize, bool),
        b: (usize, bool),
    ) -> Result<(ActuationEvent, ActuationEvent), SimError> {
        let ma = self
            .mux_of_line
            .get(&a.0)
            .ok_or(SimError::LineOutOfRange(a.0))?
            .0;
        let mb = self
            .mux_of_line
            .get(&b.0)
            .ok_or(SimError::LineOutOfRange(b.0))?
            .0;
        if ma == mb {
            return Err(SimError::SameMuxSimultaneous);
        }
        let ea = self.actuate(a.0, a.1)?;
        let mut eb = self.actuate(b.0, b.1)?;
        // the pair shares one actuation slot
        self.time_ms -= VALVE_ACTUATION_MS;
        eb.time_ms = self.time_ms;
        Ok((ea, eb))
    }

    /// `true` when the line is currently pressurised (its valves closed).
    ///
    /// # Panics
    ///
    /// Panics if `line` is out of range.
    #[must_use]
    pub fn line_pressurized(&self, line: usize) -> bool {
        self.pressurized[line]
    }

    /// `true` when the valve is inflated (its control line is pressurised).
    /// MUX valves are not controlled by lines and always report `false`.
    #[must_use]
    pub fn valve_closed(&self, valve: ValveId) -> bool {
        self.design
            .control_lines
            .iter()
            .enumerate()
            .any(|(li, l)| self.pressurized[li] && l.valves.contains(&valve))
    }

    /// Channels a fluid entering at `inlet` can currently reach.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownInlet`] for an invalid id.
    pub fn reachable_channels(&self, inlet: InletId) -> Result<HashSet<ChannelId>, SimError> {
        if inlet.0 >= self.design.inlets.len() {
            return Err(SimError::UnknownInlet(inlet.0));
        }
        let passable = self.passable();
        Ok(self.graph.reachable(inlet, &passable))
    }

    /// `true` when fluid can currently travel between the two inlets.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownInlet`] for invalid ids.
    pub fn fluid_path_exists(&self, from: InletId, to: InletId) -> Result<bool, SimError> {
        let reach = self.reachable_channels(from)?;
        let taps = self
            .graph
            .inlet_taps
            .get(&to)
            .ok_or(SimError::UnknownInlet(to.0))?;
        Ok(taps.iter().any(|&t| reach.contains(&self.graph.nodes[t])))
    }

    /// Simulated time in milliseconds.
    #[must_use]
    pub fn elapsed_ms(&self) -> u64 {
        self.time_ms
    }

    /// The control line driving `channel`, if any.
    #[must_use]
    pub fn line_of_channel(&self, channel: ChannelId) -> Option<usize> {
        self.line_of_channel.get(&channel).copied()
    }

    fn passable(&self) -> Vec<bool> {
        let mut blocked: HashSet<ChannelId> = HashSet::new();
        for (li, line) in self.design.control_lines.iter().enumerate() {
            if !self.pressurized[li] {
                continue;
            }
            for &v in &line.valves {
                if let Some(b) = self.design.valve(v).blocks {
                    blocked.insert(b);
                }
            }
        }
        self.graph
            .nodes
            .iter()
            .map(|id| !blocked.contains(id))
            .collect()
    }
}
