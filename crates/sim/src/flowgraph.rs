//! Fluid connectivity graph over the flow layer.

use std::collections::{HashMap, HashSet, VecDeque};

use columba_design::{ChannelId, ChannelRole, Design, InletId, InletKind};
use columba_geom::Layer;

/// Static connectivity: which flow channels touch which, and which channels
/// each fluid inlet feeds.
#[derive(Debug, Clone)]
pub(crate) struct FlowGraph {
    /// Channel ids participating in fluid transport (MUX-flow excluded).
    pub nodes: Vec<ChannelId>,
    /// Adjacency by *position in `nodes`*.
    pub adj: Vec<Vec<usize>>,
    /// Fluid inlet → node positions it feeds.
    pub inlet_taps: HashMap<InletId, Vec<usize>>,
    /// Channel id → node position.
    #[cfg_attr(not(test), allow(dead_code))]
    pub index: HashMap<ChannelId, usize>,
}

impl FlowGraph {
    pub(crate) fn build(design: &Design) -> FlowGraph {
        let nodes: Vec<ChannelId> = design
            .channels
            .iter()
            .enumerate()
            .filter(|(_, c)| c.layer() == Layer::Flow && c.role != ChannelRole::MuxFlow)
            .map(|(i, _)| ChannelId(i))
            .collect();
        let index: HashMap<ChannelId, usize> = nodes
            .iter()
            .enumerate()
            .map(|(pos, &id)| (id, pos))
            .collect();
        let mut adj = vec![Vec::new(); nodes.len()];
        for (pi, &a) in nodes.iter().enumerate() {
            for (pj, &b) in nodes.iter().enumerate().skip(pi + 1) {
                let touch = design.channel(a).path.iter().any(|sa| {
                    design
                        .channel(b)
                        .path
                        .iter()
                        .any(|sb| sa.to_rect().touches(&sb.to_rect()))
                });
                if touch {
                    adj[pi].push(pj);
                    adj[pj].push(pi);
                }
            }
        }
        let mut inlet_taps: HashMap<InletId, Vec<usize>> = HashMap::new();
        for (ii, inlet) in design.inlets.iter().enumerate() {
            if inlet.kind != InletKind::Fluid {
                continue;
            }
            let taps: Vec<usize> = nodes
                .iter()
                .enumerate()
                .filter(|(_, &id)| {
                    design.channel(id).path.iter().any(|s| {
                        s.to_rect()
                            .expanded(columba_geom::Um(1))
                            .contains_point(inlet.position)
                    })
                })
                .map(|(pos, _)| pos)
                .collect();
            inlet_taps.insert(InletId(ii), taps);
        }
        FlowGraph {
            nodes,
            adj,
            inlet_taps,
            index,
        }
    }

    /// BFS over passable channels starting from the inlet's taps.
    pub(crate) fn reachable(&self, inlet: InletId, passable: &[bool]) -> HashSet<ChannelId> {
        let mut seen = vec![false; self.nodes.len()];
        let mut queue = VecDeque::new();
        for &tap in self.inlet_taps.get(&inlet).into_iter().flatten() {
            if passable[tap] && !seen[tap] {
                seen[tap] = true;
                queue.push_back(tap);
            }
        }
        let mut out = HashSet::new();
        while let Some(v) = queue.pop_front() {
            out.insert(self.nodes[v]);
            for &w in &self.adj[v] {
                if passable[w] && !seen[w] {
                    seen[w] = true;
                    queue.push_back(w);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use columba_design::{Channel, Inlet};
    use columba_geom::{Point, Rect, Segment, Side, Um};

    fn design() -> Design {
        let mut d = Design::new("t", Rect::new(Um(0), Um(10_000), Um(0), Um(10_000)));
        // chain: ch0 - ch1, disconnected ch2, mux flow ignored
        d.add_channel(Channel::straight(
            ChannelRole::FlowTransport,
            Segment::horizontal(Um(500), Um(0), Um(2_000), Um(100)),
            None,
        ));
        d.add_channel(Channel::straight(
            ChannelRole::FlowTransport,
            Segment::horizontal(Um(500), Um(2_000), Um(4_000), Um(100)),
            None,
        ));
        d.add_channel(Channel::straight(
            ChannelRole::FlowTransport,
            Segment::horizontal(Um(5_000), Um(0), Um(2_000), Um(100)),
            None,
        ));
        d.add_channel(Channel::straight(
            ChannelRole::MuxFlow,
            Segment::horizontal(Um(500), Um(0), Um(9_000), Um(100)),
            None,
        ));
        d.add_inlet(Inlet {
            name: "in".into(),
            position: Point::new(Um(0), Um(500)),
            kind: columba_design::InletKind::Fluid,
            side: Side::Left,
        });
        d
    }

    #[test]
    fn graph_excludes_mux_flow() {
        let d = design();
        let g = FlowGraph::build(&d);
        assert_eq!(g.nodes.len(), 3);
        assert!(!g.nodes.contains(&ChannelId(3)));
    }

    #[test]
    fn reachability_follows_touching_channels() {
        let d = design();
        let g = FlowGraph::build(&d);
        let all = vec![true; g.nodes.len()];
        let r = g.reachable(InletId(0), &all);
        assert!(r.contains(&ChannelId(0)));
        assert!(r.contains(&ChannelId(1)), "touching chain is connected");
        assert!(!r.contains(&ChannelId(2)), "distant channel is not");
    }

    #[test]
    fn blocking_cuts_the_chain() {
        let d = design();
        let g = FlowGraph::build(&d);
        let mut passable = vec![true; g.nodes.len()];
        passable[g.index[&ChannelId(1)]] = false;
        let r = g.reachable(InletId(0), &passable);
        assert!(r.contains(&ChannelId(0)));
        assert!(!r.contains(&ChannelId(1)));
    }
}
