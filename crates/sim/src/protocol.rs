//! Scheduling protocols: sequences of valve actuations with timing.

use std::fmt;

use crate::simulator::{SimError, Simulator};

/// One protocol step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Step {
    /// Actuate one line (`pressurize = true` closes its valves).
    Single {
        /// Control line index.
        line: usize,
        /// Push pressure or vent.
        pressurize: bool,
    },
    /// Actuate two lines in the same slot — requires a 2-MUX design with
    /// the lines on different multiplexers.
    Pair {
        /// First actuation `(line, pressurize)`.
        a: (usize, bool),
        /// Second actuation `(line, pressurize)`.
        b: (usize, bool),
    },
}

/// A valve actuation schedule. Because Columba S controls valves through
/// multiplexers, the same physical design runs *any* protocol — this is the
/// reconfigurability claim of §1 (second bullet).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Protocol {
    /// Steps in execution order.
    pub steps: Vec<Step>,
}

impl Protocol {
    /// An empty protocol.
    #[must_use]
    pub fn new() -> Protocol {
        Protocol::default()
    }

    /// Appends a single actuation.
    pub fn single(&mut self, line: usize, pressurize: bool) -> &mut Protocol {
        self.steps.push(Step::Single { line, pressurize });
        self
    }

    /// Appends a simultaneous pair.
    pub fn pair(&mut self, a: (usize, bool), b: (usize, bool)) -> &mut Protocol {
        self.steps.push(Step::Pair { a, b });
        self
    }
}

/// Outcome of running a protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolReport {
    /// Total simulated execution time in milliseconds.
    pub total_ms: u64,
    /// Number of actuation slots used.
    pub slots: usize,
    /// Number of individual line actuations.
    pub actuations: usize,
}

impl fmt::Display for ProtocolReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} actuations in {} slots, {} ms",
            self.actuations, self.slots, self.total_ms
        )
    }
}

impl Simulator<'_> {
    /// Runs `protocol` to completion.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] from the individual actuations; the simulator
    /// keeps the state reached so far.
    pub fn run_protocol(&mut self, protocol: &Protocol) -> Result<ProtocolReport, SimError> {
        let start = self.elapsed_ms();
        let mut actuations = 0usize;
        for step in &protocol.steps {
            match *step {
                Step::Single { line, pressurize } => {
                    self.actuate(line, pressurize)?;
                    actuations += 1;
                }
                Step::Pair { a, b } => {
                    self.actuate_pair(a, b)?;
                    actuations += 2;
                }
            }
        }
        Ok(ProtocolReport {
            total_ms: self.elapsed_ms() - start,
            slots: protocol.steps.len(),
            actuations,
        })
    }
}
