//! Property tests: the synthesized MUX hardware implements exact selection.

use columba_design::{Channel, ChannelRole, Design};
use columba_geom::{Rect, Segment, Side, Um};
use columba_mux::{address_bits, required_height, required_inlets, selection, synthesize};
use proptest::prelude::*;

fn build(n: usize) -> (Design, usize) {
    let mux_h = required_height(n);
    let chip = Rect::new(Um(0), Um(4_000 + 300 * n as i64), Um(0), Um(40_000));
    let mut d = Design::new("p", chip);
    let region = Rect::new(chip.x_l(), chip.x_r(), Um(0), mux_h);
    d.functional_region = Rect::new(chip.x_l(), chip.x_r(), mux_h, chip.y_t());
    let ids: Vec<_> = (0..n)
        .map(|i| {
            d.add_channel(Channel::straight(
                ChannelRole::Control,
                Segment::vertical(Um(1_000 + 300 * i as i64), mux_h, Um(30_000), Um(100)),
                None,
            ))
        })
        .collect();
    let mi = synthesize(&mut d, ids, Side::Bottom, region).expect("synthesis succeeds");
    (d, mi)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// For every channel count and every in-range address, exactly the
    /// addressed channel stays open; out-of-range addresses open nothing.
    #[test]
    fn exactly_one_channel_open(n in 1usize..70) {
        let (d, mi) = build(n);
        let mux = &d.muxes[mi];
        prop_assert_eq!(mux.inlet_count(), required_inlets(n));
        prop_assert_eq!(mux.valves.len(), n * address_bits(n));
        for a in 0..n {
            prop_assert_eq!(selection(mux, a).open_channels(), vec![a]);
        }
        for a in n..(1 << address_bits(n)) {
            prop_assert!(selection(mux, a).open_channels().is_empty());
        }
    }

    /// The synthesized geometry passes DRC for every channel count.
    #[test]
    fn mux_geometry_always_drc_clean(n in 1usize..50) {
        let (d, _) = build(n);
        let report = columba_design::drc::check(&d);
        prop_assert!(report.is_clean(), "{}", report);
    }
}
