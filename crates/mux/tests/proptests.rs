//! Exhaustive tests: the synthesized MUX hardware implements exact
//! selection for every channel count (no registry dependencies — the old
//! proptest sweep is now a deterministic loop over all counts).

use columba_design::{Channel, ChannelRole, Design};
use columba_geom::{Rect, Segment, Side, Um};
use columba_mux::{address_bits, required_height, required_inlets, selection, synthesize};

fn build(n: usize) -> (Design, usize) {
    let mux_h = required_height(n);
    let chip = Rect::new(Um(0), Um(4_000 + 300 * n as i64), Um(0), Um(40_000));
    let mut d = Design::new("p", chip);
    let region = Rect::new(chip.x_l(), chip.x_r(), Um(0), mux_h);
    d.functional_region = Rect::new(chip.x_l(), chip.x_r(), mux_h, chip.y_t());
    let ids: Vec<_> = (0..n)
        .map(|i| {
            d.add_channel(Channel::straight(
                ChannelRole::Control,
                Segment::vertical(Um(1_000 + 300 * i as i64), mux_h, Um(30_000), Um(100)),
                None,
            ))
        })
        .collect();
    let mi = synthesize(&mut d, ids, Side::Bottom, region).expect("synthesis succeeds");
    (d, mi)
}

/// For every channel count and every in-range address, exactly the
/// addressed channel stays open; out-of-range addresses open nothing.
#[test]
fn exactly_one_channel_open() {
    for n in 1usize..70 {
        let (d, mi) = build(n);
        let mux = &d.muxes[mi];
        assert_eq!(mux.inlet_count(), required_inlets(n), "n={n}");
        assert_eq!(mux.valves.len(), n * address_bits(n), "n={n}");
        for a in 0..n {
            assert_eq!(selection(mux, a).open_channels(), vec![a], "n={n} a={a}");
        }
        for a in n..(1 << address_bits(n)) {
            assert!(selection(mux, a).open_channels().is_empty(), "n={n} a={a}");
        }
    }
}

/// The synthesized geometry passes DRC across the channel-count range.
#[test]
fn mux_geometry_always_drc_clean() {
    for n in [
        1usize, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 23, 31, 32, 33, 42, 49,
    ] {
        let (d, _) = build(n);
        let report = columba_design::drc::check(&d);
        assert!(report.is_clean(), "n={n}: {report}");
    }
}
