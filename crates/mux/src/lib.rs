//! Binary multiplexer synthesis and addressing logic (paper §2.2, Fig 4).
//!
//! A Columba S multiplexer drives `n` independent control channels with
//! `2·ceil(log2 n) + 1` pressure inlets. Each control channel is indexed
//! with a `ceil(log2 n)`-bit binary number; each bit is implemented by a
//! *pair* of pressurised MUX-flow channels crossing all control channels.
//! A control channel carries a valve on the pair's **true line** where its
//! bit is 0 and on the **complement line** where its bit is 1, so
//! pressurising, for every bit, the line that contradicts the target
//! address leaves exactly one control channel open to the common pressure
//! supply.
//!
//! [`synthesize`] emits the full MUX geometry into a design (MUX-flow
//! lines, supply bus, valves, inlets) and registers a
//! [`MuxUnit`]; [`selection`] evaluates which control channels an address
//! leaves open, from the synthesized valve matrix — not from arithmetic —
//! so tests genuinely verify the hardware.
//!
//! # Examples
//!
//! ```
//! use columba_mux::address_bits;
//!
//! assert_eq!(address_bits(15), 4); // Fig 4: 15 channels, 4-bit index
//! assert_eq!(address_bits(1), 0);  // a single channel needs no bits
//! // inlets = 2 * bits + 1
//! assert_eq!(2 * address_bits(15) + 1, 9);
//! ```
//!
//! [`MuxUnit`]: columba_design::MuxUnit

mod logic;
mod synth;

pub use logic::{address_bits, required_inlets, selection, simultaneous_limit, MuxSelection};
pub use synth::{required_height, synthesize, MuxError};
