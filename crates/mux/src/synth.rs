//! Multiplexer geometry synthesis.

use std::fmt;

use columba_design::{
    Channel, ChannelId, ChannelRole, Design, Inlet, InletKind, MuxUnit, MuxValve, Valve, ValveKind,
};
use columba_geom::{Orientation, Point, Rect, Segment, Side, Um, MIN_CHANNEL_SPACING};

use crate::logic::address_bits;

const D: Um = MIN_CHANNEL_SPACING;
const CHANNEL_W: Um = MIN_CHANNEL_SPACING;

/// Error raised by [`synthesize`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MuxError {
    /// No channels to control.
    NoChannels,
    /// A channel is not a single-segment vertical [`ChannelRole::Control`]
    /// channel.
    NotAControlChannel(ChannelId),
    /// Two control channels share an x position; their MUX valves would
    /// stack.
    DuplicateChannelX(Um),
    /// The reserved region is too small; carries the required height.
    RegionTooSmall {
        /// Height needed for this channel count.
        required: Um,
        /// Height available.
        available: Um,
    },
    /// A control channel lies outside the region's x range.
    ChannelOutsideRegion(ChannelId),
}

impl fmt::Display for MuxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MuxError::NoChannels => f.write_str("multiplexer needs at least one control channel"),
            MuxError::NotAControlChannel(id) => {
                write!(
                    f,
                    "channel #{} is not a straight vertical control channel",
                    id.0
                )
            }
            MuxError::DuplicateChannelX(x) => {
                write!(f, "two control channels share x = {x}")
            }
            MuxError::RegionTooSmall {
                required,
                available,
            } => {
                write!(f, "MUX region height {available} < required {required}")
            }
            MuxError::ChannelOutsideRegion(id) => {
                write!(f, "control channel #{} lies outside the MUX region", id.0)
            }
        }
    }
}

impl std::error::Error for MuxError {}

/// The region height a MUX for `n` channels needs: one `2d` row per
/// MUX-flow line (`2·bits`), one for the supply bus, plus `2d` margins.
#[must_use]
pub fn required_height(n: usize) -> Um {
    let bits = address_bits(n) as i64;
    D * 2 * (2 * bits + 1) + D * 4
}

/// Synthesizes a multiplexer over `channels` inside `region` on `side`
/// ([`Side::Bottom`] or [`Side::Top`]) of the functional region:
///
/// 1. extends every control channel through the region to the supply bus,
/// 2. lays one pair of horizontal MUX-flow lines per address bit,
/// 3. places a [`ValveKind::Mux`] valve for every (channel, bit) pair on
///    the line matching the channel's bit value,
/// 4. punches the supply inlet and one inlet pair per bit,
/// 5. registers the [`MuxUnit`] on the design and returns its index.
///
/// Channel `i` in `channels` receives binary address `i`.
///
/// # Errors
///
/// Returns [`MuxError`] when the channels are malformed or the region
/// cannot fit the MUX (use [`required_height`] to reserve space).
///
/// # Panics
///
/// Panics if `side` is [`Side::Left`] or [`Side::Right`] — MUXs occupy the
/// bottom/top boundaries under the Columba S framework.
pub fn synthesize(
    design: &mut Design,
    channels: Vec<ChannelId>,
    side: Side,
    region: Rect,
) -> Result<usize, MuxError> {
    assert!(
        matches!(side, Side::Bottom | Side::Top),
        "MUX boundaries are bottom/top, got {side}"
    );
    if channels.is_empty() {
        return Err(MuxError::NoChannels);
    }
    let n = channels.len();
    let bits = address_bits(n);
    let required = required_height(n);
    if region.height() < required {
        return Err(MuxError::RegionTooSmall {
            required,
            available: region.height(),
        });
    }

    // validate channels and collect their x positions
    let mut xs = Vec::with_capacity(n);
    for &id in &channels {
        let c = design.channel(id);
        // a zero-length channel (pin directly on the MUX boundary) is fine:
        // the MUX extends it into its region
        let ok = c.role == ChannelRole::Control
            && c.path.len() == 1
            && (c.path[0].orientation() == Orientation::Vertical || c.path[0].length() == Um(0));
        if !ok {
            return Err(MuxError::NotAControlChannel(id));
        }
        let x = c.path[0].start().x;
        if x < region.x_l() + D * 2 || x > region.x_r() - D * 2 {
            return Err(MuxError::ChannelOutsideRegion(id));
        }
        xs.push(x);
    }
    let mut sorted = xs.clone();
    sorted.sort_unstable();
    for w in sorted.windows(2) {
        if w[0] == w[1] {
            return Err(MuxError::DuplicateChannelX(w[0]));
        }
    }

    // row ys: closest to the functional region first
    let row_y = |k: i64| -> Um {
        match side {
            Side::Bottom => region.y_t() - D * 2 - D * 2 * k,
            Side::Top => region.y_b() + D * 2 + D * 2 * k,
            _ => unreachable!(),
        }
    };
    let bus_y = row_y(2 * bits as i64);
    let x_min = xs.iter().copied().fold(xs[0], Um::min);
    let x_max = xs.iter().copied().fold(xs[0], Um::max);
    let line_l = (x_min - D * 4).max(region.x_l());
    let line_r = (x_max + D * 4).min(region.x_r());

    // 1. extend the control channels to the bus
    for (&id, &x) in channels.iter().zip(&xs) {
        let seg = design.channels[id.0].path[0];
        let (y1, y2) = (seg.start().y, seg.end().y);
        let (lo, hi) = match side {
            Side::Bottom => (bus_y, y1.max(y2)),
            Side::Top => (y1.min(y2), bus_y),
            _ => unreachable!(),
        };
        design.channels[id.0].path[0] = Segment::vertical(x, lo, hi, seg.width());
    }

    // 2. MUX-flow line pairs + 4. their inlets
    let mut bit_lines = Vec::with_capacity(bits);
    let mut bit_inlets = Vec::with_capacity(bits);
    for b in 0..bits {
        let true_y = row_y(2 * b as i64);
        let compl_y = row_y(2 * b as i64 + 1);
        let true_line = design.add_channel(Channel::straight(
            ChannelRole::MuxFlow,
            Segment::horizontal(true_y, line_l, line_r, CHANNEL_W),
            None,
        ));
        let compl_line = design.add_channel(Channel::straight(
            ChannelRole::MuxFlow,
            Segment::horizontal(compl_y, line_l, line_r, CHANNEL_W),
            None,
        ));
        bit_lines.push((true_line, compl_line));
        let ti = design.add_inlet(Inlet {
            name: format!("mux_{side}_bit{b}"),
            position: Point::new(line_l, true_y),
            kind: InletKind::Pressure,
            side,
        });
        let ci = design.add_inlet(Inlet {
            name: format!("mux_{side}_bit{b}c"),
            position: Point::new(line_l, compl_y),
            kind: InletKind::Pressure,
            side,
        });
        bit_inlets.push((ti, ci));
    }

    // supply bus + inlet
    design.add_channel(Channel::straight(
        ChannelRole::MuxControl,
        Segment::horizontal(bus_y, line_l, line_r, CHANNEL_W),
        None,
    ));
    let supply = design.add_inlet(Inlet {
        name: format!("mux_{side}_supply"),
        position: Point::new(line_l, bus_y),
        kind: InletKind::Pressure,
        side,
    });

    // 3. the valve matrix: channel i, bit b -> valve on the line matching
    // the channel's bit value (true line for 0, complement line for 1)
    let mut mux_valves = Vec::with_capacity(n * bits);
    for (i, (&ch, &x)) in channels.iter().zip(&xs).enumerate() {
        for b in 0..bits {
            let on_complement_line = (i >> b) & 1 == 1;
            let y = row_y(2 * b as i64 + i64::from(on_complement_line));
            let pad = Rect::new(x - D, x + D, y - D, y + D);
            let valve = design.add_valve(Valve {
                kind: ValveKind::Mux,
                rect: pad,
                control: None,
                blocks: Some(ch),
                owner: None,
            });
            mux_valves.push(MuxValve {
                bit: b,
                on_complement_line,
                channel: i,
                valve,
            });
        }
    }

    design.muxes.push(MuxUnit {
        side,
        controlled: channels,
        region,
        supply,
        bit_inlets,
        bit_lines,
        valves: mux_valves,
    });
    Ok(design.muxes.len() - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logic::{required_inlets, selection};
    use columba_design::drc;

    /// A design with `n` vertical control channels above a bottom MUX region.
    fn scaffold(n: usize) -> (Design, Vec<ChannelId>, Rect) {
        let mux_h = required_height(n);
        let chip = Rect::new(Um(0), Um(4_000 + 400 * n as i64), Um(0), Um(20_000));
        let mut d = Design::new("t", chip);
        let region = Rect::new(chip.x_l(), chip.x_r(), Um(0), mux_h);
        d.functional_region = Rect::new(chip.x_l(), chip.x_r(), mux_h, chip.y_t());
        let ids: Vec<ChannelId> = (0..n)
            .map(|i| {
                let x = Um(1_000 + 400 * i as i64);
                d.add_channel(Channel::straight(
                    ChannelRole::Control,
                    Segment::vertical(x, mux_h, Um(15_000), CHANNEL_W),
                    None,
                ))
            })
            .collect();
        (d, ids, region)
    }

    #[test]
    fn fig4_fifteen_channels() {
        let (mut d, ids, region) = scaffold(15);
        let mi = synthesize(&mut d, ids.clone(), Side::Bottom, region).unwrap();
        let mux = &d.muxes[mi];
        assert_eq!(mux.bits(), 4);
        assert_eq!(mux.inlet_count(), 9);
        assert_eq!(d.inlets.len(), required_inlets(15));
        // one valve per (channel, bit)
        assert_eq!(mux.valves.len(), 15 * 4);
        assert_eq!(d.valves.len(), 60);
        // Fig 4 example: address 1001b = 9 opens exactly channel 9
        let sel = selection(mux, 9);
        assert_eq!(sel.open_channels(), vec![9]);
        // and the paper's line configuration: XO OX OX XO from MSB..LSB
        // means bit3 true inflated, bit2/bit1 complement, bit0 true
        assert!(sel.inflated_lines.contains(&(3, false)));
        assert!(sel.inflated_lines.contains(&(2, true)));
        assert!(sel.inflated_lines.contains(&(1, true)));
        assert!(sel.inflated_lines.contains(&(0, false)));
    }

    #[test]
    fn every_address_selects_its_channel() {
        let (mut d, ids, region) = scaffold(11);
        let mi = synthesize(&mut d, ids, Side::Bottom, region).unwrap();
        let mux = &d.muxes[mi];
        for a in 0..11 {
            let sel = selection(mux, a);
            assert_eq!(sel.open_channels(), vec![a], "address {a}");
        }
        // out-of-range addresses open nothing (for a full power of two the
        // range is exactly the channel count; 11 < 16 leaves spares)
        for a in 11..16 {
            assert!(selection(mux, a).open_channels().is_empty(), "address {a}");
        }
    }

    #[test]
    fn single_channel_mux_needs_no_bits() {
        let (mut d, ids, region) = scaffold(1);
        let mi = synthesize(&mut d, ids, Side::Bottom, region).unwrap();
        let mux = &d.muxes[mi];
        assert_eq!(mux.bits(), 0);
        assert_eq!(mux.inlet_count(), 1);
        assert!(mux.valves.is_empty());
        assert_eq!(selection(mux, 0).open_channels(), vec![0]);
    }

    #[test]
    fn control_channels_reach_the_bus() {
        let (mut d, ids, region) = scaffold(5);
        synthesize(&mut d, ids.clone(), Side::Bottom, region).unwrap();
        for id in ids {
            let seg = d.channel(id).path[0];
            assert!(
                seg.start().y < region.y_t(),
                "channel extended into the MUX region"
            );
        }
    }

    #[test]
    fn geometry_is_drc_clean() {
        let (mut d, ids, region) = scaffold(15);
        synthesize(&mut d, ids, Side::Bottom, region).unwrap();
        let r = drc::check(&d);
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn top_side_mux_mirrors() {
        let n = 6;
        let mux_h = required_height(n);
        let chip = Rect::new(Um(0), Um(8_000), Um(0), Um(20_000));
        let mut d = Design::new("t", chip);
        let region = Rect::new(chip.x_l(), chip.x_r(), chip.y_t() - mux_h, chip.y_t());
        let ids: Vec<ChannelId> = (0..n)
            .map(|i| {
                let x = Um(1_000 + 400 * i as i64);
                d.add_channel(Channel::straight(
                    ChannelRole::Control,
                    Segment::vertical(x, Um(5_000), region.y_b(), CHANNEL_W),
                    None,
                ))
            })
            .collect();
        let mi = synthesize(&mut d, ids, Side::Top, region).unwrap();
        let mux = &d.muxes[mi];
        for a in 0..n {
            assert_eq!(selection(mux, a).open_channels(), vec![a]);
        }
        let r = drc::check(&d);
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn errors_reported() {
        let (mut d, ids, region) = scaffold(4);
        assert_eq!(
            synthesize(&mut d, Vec::new(), Side::Bottom, region).unwrap_err(),
            MuxError::NoChannels
        );
        let tiny = Rect::new(region.x_l(), region.x_r(), Um(0), Um(100));
        assert!(matches!(
            synthesize(&mut d, ids.clone(), Side::Bottom, tiny).unwrap_err(),
            MuxError::RegionTooSmall { .. }
        ));
        // a flow channel is not controllable
        let bogus = d.add_channel(Channel::straight(
            ChannelRole::FlowTransport,
            Segment::horizontal(Um(9_000), Um(0), Um(2_000), CHANNEL_W),
            None,
        ));
        assert!(matches!(
            synthesize(&mut d, vec![bogus], Side::Bottom, region).unwrap_err(),
            MuxError::NotAControlChannel(_)
        ));
        // duplicate x
        let dup1 = d.add_channel(Channel::straight(
            ChannelRole::Control,
            Segment::vertical(Um(2_000), region.y_t(), Um(15_000), CHANNEL_W),
            None,
        ));
        let dup2 = d.add_channel(Channel::straight(
            ChannelRole::Control,
            Segment::vertical(Um(2_000), region.y_t(), Um(15_000), CHANNEL_W),
            None,
        ));
        assert!(matches!(
            synthesize(&mut d, vec![dup1, dup2], Side::Bottom, region).unwrap_err(),
            MuxError::DuplicateChannelX(_)
        ));
    }

    #[test]
    #[should_panic(expected = "bottom/top")]
    fn left_side_panics() {
        let (mut d, ids, region) = scaffold(2);
        let _ = synthesize(&mut d, ids, Side::Left, region);
    }
}
