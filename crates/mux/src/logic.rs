//! Multiplexer addressing logic.

use columba_design::MuxUnit;

/// Number of address bits for `n` control channels: `ceil(log2 n)`.
///
/// # Panics
///
/// Panics if `n == 0` — a MUX for zero channels is meaningless.
#[must_use]
pub fn address_bits(n: usize) -> usize {
    assert!(n > 0, "a multiplexer needs at least one channel");
    (usize::BITS - (n - 1).leading_zeros()) as usize
}

/// Pressure inlets needed for `n` channels: `2·ceil(log2 n) + 1` (the `+1`
/// is the common supply).
#[must_use]
pub fn required_inlets(n: usize) -> usize {
    2 * address_bits(n) + 1
}

/// How many independent valves Columba S can hold actuated at once: one per
/// multiplexer (§2.2 — the trade-off against Columba 2.0's unrestricted
/// simultaneous control).
#[must_use]
pub fn simultaneous_limit(mux_count: usize) -> usize {
    mux_count
}

/// The result of applying an address to a synthesized MUX.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MuxSelection {
    /// For each controlled channel: `true` when the channel remains open
    /// (connected to the supply).
    pub open: Vec<bool>,
    /// The lines inflated for this address: `(bit, complement?)`.
    pub inflated_lines: Vec<(usize, bool)>,
}

impl MuxSelection {
    /// Indices of the open channels.
    #[must_use]
    pub fn open_channels(&self) -> Vec<usize> {
        self.open
            .iter()
            .enumerate()
            .filter_map(|(i, &o)| o.then_some(i))
            .collect()
    }
}

/// Evaluates the MUX hardware for a target `address`: inflates, for every
/// bit, the line whose valves contradict the address, then derives which
/// channels stay open *from the synthesized valve matrix* ([`MuxUnit::valves`]).
///
/// Channels whose index exceeds the address range are never selectable;
/// addresses ≥ the channel count simply open nothing.
#[must_use]
pub fn selection(mux: &MuxUnit, address: usize) -> MuxSelection {
    let bits = mux.bits();
    // line inflated for bit b: the true line if address bit is 1 blocks
    // bit-0 channels? No — convention: valves sit on the true line for
    // bit=0 channels, on the complement line for bit=1 channels. To keep
    // channels *matching* the address open, inflate the line whose valves
    // sit on non-matching channels:
    //   address bit = 1  -> inflate true line      (blocks bit-0 channels)
    //   address bit = 0  -> inflate complement line (blocks bit-1 channels)
    let inflated_lines: Vec<(usize, bool)> =
        (0..bits).map(|b| (b, (address >> b) & 1 == 0)).collect();
    let mut open = vec![true; mux.controlled.len()];
    for v in &mux.valves {
        let inflated = inflated_lines
            .iter()
            .any(|&(b, compl)| b == v.bit && compl == v.on_complement_line);
        if inflated {
            open[v.channel] = false;
        }
    }
    MuxSelection {
        open,
        inflated_lines,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_formula() {
        assert_eq!(address_bits(1), 0);
        assert_eq!(address_bits(2), 1);
        assert_eq!(address_bits(3), 2);
        assert_eq!(address_bits(4), 2);
        assert_eq!(address_bits(5), 3);
        assert_eq!(address_bits(15), 4);
        assert_eq!(address_bits(16), 4);
        assert_eq!(address_bits(17), 5);
        assert_eq!(address_bits(256), 8);
    }

    #[test]
    #[should_panic(expected = "at least one channel")]
    fn zero_channels_panics() {
        let _ = address_bits(0);
    }

    #[test]
    fn inlet_formula_matches_paper() {
        // §2.2: n independent valves with 2*ceil(log2 n) + 1 inlets
        assert_eq!(required_inlets(15), 9);
        assert_eq!(required_inlets(1), 1);
        assert_eq!(required_inlets(64), 13);
        assert_eq!(required_inlets(200), 17);
    }

    #[test]
    fn simultaneous_control_tradeoff() {
        assert_eq!(simultaneous_limit(1), 1);
        assert_eq!(
            simultaneous_limit(2),
            2,
            "2-MUX designs control two valves at once"
        );
    }
}
