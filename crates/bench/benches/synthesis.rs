//! Criterion micro-benchmarks of the Columba S synthesis stages.
//!
//! These complement the `table1` harness (which measures the end-to-end
//! runs the paper reports): they isolate where the time goes — parsing,
//! planarization, the layout-generation MILP in heuristic mode, the
//! multiplexer synthesis, and the behavioural simulator.

use std::time::Duration;

use columba_s::layout::{self, LayoutOptions};
use columba_s::netlist::{generators, MuxCount, Netlist};
use columba_s::planar::planarize;
use columba_s::sim::Simulator;
use columba_s::{Columba, SynthesisOptions};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_parse(c: &mut Criterion) {
    let text = generators::chip_ip(16, MuxCount::One).to_text();
    c.bench_function("netlist/parse_chip16", |b| {
        b.iter(|| Netlist::parse(std::hint::black_box(&text)).expect("parses"))
    });
}

fn bench_planarize(c: &mut Criterion) {
    let mut g = c.benchmark_group("planarize");
    for lanes in [4usize, 64] {
        let n = generators::chip_ip(lanes, MuxCount::One);
        g.bench_with_input(BenchmarkId::from_parameter(lanes), &n, |b, n| {
            b.iter(|| planarize(std::hint::black_box(n)))
        });
    }
    g.finish();
}

fn bench_layout_heuristic(c: &mut Criterion) {
    let mut g = c.benchmark_group("layout_heuristic");
    g.sample_size(10);
    for lanes in [4usize, 16, 64] {
        let (n, _) = planarize(&generators::chip_ip(lanes, MuxCount::One));
        let options = LayoutOptions::heuristic_only();
        g.bench_with_input(BenchmarkId::from_parameter(lanes), &n, |b, n| {
            b.iter(|| layout::synthesize(std::hint::black_box(n), &options).expect("synthesizes"))
        });
    }
    g.finish();
}

fn bench_full_flow_scaling(c: &mut Criterion) {
    // the paper's scalability claim: end-to-end synthesis time for the
    // ChIP family (Table 1 rows 2, 5, 6 correspond to lanes 4, 64, 128)
    let mut g = c.benchmark_group("full_flow");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(10));
    let flow = Columba::with_options(SynthesisOptions {
        layout: LayoutOptions::heuristic_only(),
        ..SynthesisOptions::default()
    });
    for lanes in [4usize, 64, 128] {
        let n = generators::chip_ip(lanes, MuxCount::One);
        g.bench_with_input(BenchmarkId::from_parameter(lanes), &n, |b, n| {
            b.iter(|| flow.synthesize(std::hint::black_box(n)).expect("synthesizes"))
        });
    }
    g.finish();
}

fn bench_mux_selection(c: &mut Criterion) {
    let flow = Columba::with_options(SynthesisOptions {
        layout: LayoutOptions::heuristic_only(),
        ..SynthesisOptions::default()
    });
    let out = flow
        .synthesize(&generators::chip_ip(16, MuxCount::One))
        .expect("synthesizes");
    let mux = out.design.muxes[0].clone();
    c.bench_function("mux/selection_walk", |b| {
        b.iter(|| {
            for a in 0..mux.controlled.len() {
                std::hint::black_box(columba_s::mux::selection(&mux, a));
            }
        })
    });
    c.bench_function("sim/actuate_all_lines", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(&out.design).expect("simulates");
            for li in 0..sim.line_count() {
                sim.actuate(li, true).expect("actuates");
            }
        })
    });
}

criterion_group!(
    benches,
    bench_parse,
    bench_planarize,
    bench_layout_heuristic,
    bench_full_flow_scaling,
    bench_mux_selection
);
criterion_main!(benches);
