//! Benchmarks the assay front end: seeded random assays of growing
//! size through the full `columba_schedule::schedule` pipeline (list
//! scheduling, storage synthesis, netlist emission), one batched case
//! per size and one per storage policy at the middle size.
//!
//! ```sh
//! cargo run -p columba-bench --release --bin schedule_bench
//! cargo run -p columba-bench --release --bin schedule_bench -- --iters 20
//! cargo run -p columba-bench --release --bin schedule_bench -- --out /tmp/bench
//! ```
//!
//! The machine-readable artifact lands at `<out>/BENCH_schedule.json`
//! (default `bench/` — the committed perf-gate baseline location).

use std::time::{Duration, Instant};

use columba_bench::{bench_json, out_path, secs, write_bench_json, CaseStats};
use columba_prng::Rng;
use columba_schedule::{generators, schedule, Assay, ScheduleOptions, StoragePolicy};

/// Times `f` over `iters` runs and returns the raw samples.
fn measure<T>(iters: usize, mut f: impl FnMut() -> T) -> Vec<Duration> {
    let mut samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t = Instant::now();
        std::hint::black_box(f());
        samples.push(t.elapsed());
    }
    samples
}

/// Prints the human-readable row and returns the machine-readable stats.
fn report(case: &str, iters: usize, samples: &[Duration]) -> CaseStats {
    let stats = CaseStats::from_samples(case, samples);
    println!(
        "{case:<34}{:>10} {:>10} {:>10}   ({iters} iters)",
        secs(Duration::from_secs_f64(stats.min_s)),
        secs(Duration::from_secs_f64(stats.mean_s)),
        secs(Duration::from_secs_f64(stats.max_s))
    );
    stats
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let iters = match args.iter().position(|a| a == "--iters") {
        None => 10usize,
        Some(i) => match args.get(i + 1).map(|v| v.parse()) {
            Some(Ok(n)) if n > 0 => n,
            _ => {
                eprintln!("error: --iters requires a positive integer");
                std::process::exit(2);
            }
        },
    };

    println!("assay scheduling micro-benchmarks ({iters} iterations per case)\n");
    println!("{:<34}{:>10} {:>10} {:>10}", "case", "min", "mean", "max");

    // Each timed sample schedules REPS distinct seeded assays of the
    // size: a single schedule lands near the perf gate's 5 ms noise
    // floor, where a p50 would gate on runner jitter rather than real
    // regressions — batching amortizes it.
    const SIZES: [usize; 4] = [16, 64, 256, 512];
    const REPS: usize = 4;
    let batches: Vec<Vec<Assay>> = SIZES
        .iter()
        .map(|&ops| {
            (0..REPS)
                .map(|r| {
                    let seed = (ops * REPS + r) as u64;
                    generators::random_assay(&mut Rng::seed_from_u64(seed), ops)
                })
                .collect()
        })
        .collect();

    let mut cases = Vec::new();
    let mut config: Vec<(&str, String)> = vec![("iters", iters.to_string())];

    let opts = ScheduleOptions::default();
    let mut makespans = Vec::new();
    for (batch, &ops) in batches.iter().zip(SIZES.iter()) {
        cases.push(report(
            &format!("schedule {REPS}x{ops} ops"),
            iters,
            &measure(iters, || {
                for assay in batch {
                    std::hint::black_box(schedule(assay, &opts).expect("schedules"));
                }
            }),
        ));
        makespans.push(format!(
            "{ops}:{:.1}",
            schedule(&batch[0], &opts).expect("schedules").makespan_s
        ));
    }

    // the three storage policies over the middle size — the policy
    // decision is where the storage pass does its real work
    for policy in [
        StoragePolicy::Dedicated,
        StoragePolicy::Distributed,
        StoragePolicy::Spill,
    ] {
        let opts = ScheduleOptions {
            policy,
            ..ScheduleOptions::default()
        };
        cases.push(report(
            &format!("schedule 64 ops ({policy})"),
            iters,
            &measure(iters, || {
                schedule(&batches[1][0], &opts).expect("schedules")
            }),
        ));
    }

    config.push(("makespans_s", makespans.join(" ")));
    write_bench_json(
        &out_path(&args, "BENCH_schedule.json"),
        &bench_json("schedule", &config, &cases),
    );
}
