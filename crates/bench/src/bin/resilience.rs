//! Exercises the resilient-synthesis escalation ladder on the chip4ip case
//! under progressively tighter wall-clock budgets, printing each run's
//! `AttemptLog` — the degradation story of paper §3.2 under pressure.
//!
//! ```sh
//! cargo run -p columba-bench --release --bin resilience
//! cargo run -p columba-bench --release --bin resilience -- --budget-ms 50
//! ```

use std::time::Duration;

use columba_s::netlist::{generators, MuxCount};
use columba_s::planar::planarize;
use columba_s::{synthesize_resilient, LayoutOptions, ResiliencePolicy};

fn run(label: &str, policy: &ResiliencePolicy, netlist: &columba_s::Netlist) {
    println!("== {label} ==");
    match synthesize_resilient(netlist, policy) {
        Ok(out) => {
            println!("{}", out.log);
            println!(
                "produced by: {} — extent {} x {}, DRC {}  [total {:.1?}]\n",
                out.rung,
                out.result.design.chip.width(),
                out.result.design.chip.height(),
                if out.result.drc.is_clean() {
                    "clean"
                } else {
                    "VIOLATIONS"
                },
                out.log.total,
            );
        }
        Err(e) => {
            println!("{}", e.log);
            println!("failed: {e}\n");
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let custom_ms = args
        .iter()
        .position(|a| a == "--budget-ms")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<u64>().ok());

    let (netlist, _) = planarize(&generators::chip_ip(4, MuxCount::One));

    let budgets: Vec<(String, Option<Duration>)> = match custom_ms {
        Some(ms) => vec![(format!("{ms} ms budget"), Some(Duration::from_millis(ms)))],
        None => vec![
            ("unconstrained (10 s solver limit)".into(), None),
            ("2 s ladder budget".into(), Some(Duration::from_secs(2))),
            (
                "50 ms ladder budget".into(),
                Some(Duration::from_millis(50)),
            ),
        ],
    };

    for (label, total_budget) in budgets {
        let policy = ResiliencePolicy {
            options: LayoutOptions {
                time_limit: Duration::from_secs(10),
                ..LayoutOptions::default()
            },
            total_budget,
            ..ResiliencePolicy::default()
        };
        run(&label, &policy, &netlist);
    }
}
