//! Serialises the six Table 1 netlists (plus the Fig 1 kinase case) into
//! `cases/` as plain-text netlist files, so the reconstructions are
//! inspectable and editable without touching the generators.
//!
//! ```sh
//! cargo run -p columba-bench --release --bin dump_cases
//! ```

use columba_s::netlist::{generators, MuxCount};

fn main() -> std::io::Result<()> {
    let dir = std::path::Path::new("cases");
    std::fs::create_dir_all(dir)?;
    let mut cases = generators::table1_cases(MuxCount::One);
    cases.push(("kinase (Fig 1)", generators::kinase_activity(MuxCount::One)));
    for (label, netlist) in cases {
        let file = dir.join(format!("{}.netlist", netlist.name));
        std::fs::write(&file, netlist.to_text())?;
        println!("{label:<16} -> {}", file.display());
    }
    Ok(())
}
