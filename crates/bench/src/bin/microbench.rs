//! Micro-benchmarks of the synthesis stages on a plain
//! [`std::time::Instant`] harness (no external benchmarking crates, so the
//! build stays offline). Each stage runs a fixed number of iterations and
//! reports min / mean / max wall time; the layout stage also prints the
//! solver telemetry ([`columba_s::milp::SolveStats`]) of its last run.
//!
//! ```sh
//! cargo run -p columba-bench --release --bin microbench
//! cargo run -p columba-bench --release --bin microbench -- --iters 10
//! ```

use std::time::{Duration, Instant};

use columba_bench::secs;
use columba_s::layout::{self, LayoutOptions};
use columba_s::netlist::{generators, MuxCount};
use columba_s::planar::planarize;
use columba_s::{Columba, SynthesisOptions};

/// Times `f` over `iters` runs and returns `(min, mean, max)`.
fn measure<T>(iters: usize, mut f: impl FnMut() -> T) -> (Duration, Duration, Duration) {
    let mut min = Duration::MAX;
    let mut max = Duration::ZERO;
    let mut total = Duration::ZERO;
    for _ in 0..iters {
        let t = Instant::now();
        std::hint::black_box(f());
        let d = t.elapsed();
        min = min.min(d);
        max = max.max(d);
        total += d;
    }
    (min, total / iters as u32, max)
}

fn report(stage: &str, iters: usize, (min, mean, max): (Duration, Duration, Duration)) {
    println!(
        "{stage:<34}{:>10} {:>10} {:>10}   ({iters} iters)",
        secs(min),
        secs(mean),
        secs(max)
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let iters = match args.iter().position(|a| a == "--iters") {
        None => 5usize,
        Some(i) => match args.get(i + 1).map(|v| v.parse()) {
            Some(Ok(n)) if n > 0 => n,
            _ => {
                eprintln!("error: --iters requires a positive integer");
                std::process::exit(2);
            }
        },
    };

    println!("synthesis-stage micro-benchmarks ({iters} iterations per stage)\n");
    println!("{:<34}{:>10} {:>10} {:>10}", "stage", "min", "mean", "max");

    let chip4 = generators::chip_ip(4, MuxCount::One);
    let chip64 = generators::chip_ip(64, MuxCount::One);

    report(
        "netlist generation (64 units)",
        iters,
        measure(iters, || generators::chip_ip(64, MuxCount::One)),
    );
    report(
        "planarize chip4",
        iters,
        measure(iters, || planarize(&chip4)),
    );
    report(
        "planarize chip64",
        iters,
        measure(iters, || planarize(&chip64)),
    );

    let (planar4, _) = planarize(&chip4);
    let heuristic = LayoutOptions::heuristic_only();
    report(
        "layout chip4 (heuristic)",
        iters,
        measure(iters, || {
            layout::synthesize(&planar4, &heuristic).expect("chip4 synthesizes")
        }),
    );

    let budget = LayoutOptions {
        time_limit: Duration::from_secs(2),
        node_limit: 50,
        ..LayoutOptions::default()
    };
    report(
        "layout chip4 (bounded search)",
        iters,
        measure(iters, || {
            layout::synthesize(&planar4, &budget).expect("chip4 synthesizes")
        }),
    );

    let (planar64, _) = planarize(&chip64);
    report(
        "layout chip64 (heuristic)",
        iters,
        measure(iters, || {
            layout::synthesize(&planar64, &heuristic).expect("chip64 synthesizes")
        }),
    );

    let flow = Columba::with_options(SynthesisOptions {
        layout: LayoutOptions {
            time_limit: Duration::from_secs(2),
            ..LayoutOptions::default()
        },
        ..SynthesisOptions::default()
    });
    report(
        "full flow chip4",
        iters,
        measure(iters, || {
            flow.synthesize(&chip4).expect("chip4 synthesizes")
        }),
    );

    // solver telemetry of one representative bounded search
    let searched = layout::synthesize(&planar4, &budget).expect("chip4 synthesizes");
    println!("\nsolver telemetry (chip4, bounded search):");
    println!("  {}", searched.laygen.solve);
    if let Some(u) = searched.laygen.solve.utilization() {
        let workers = searched.laygen.solve.worker_busy.len();
        println!(
            "  {} worker{}, {:.0}% mean utilization",
            workers,
            if workers == 1 { "" } else { "s" },
            u * 100.0
        );
    }
    for (at, obj) in searched.laygen.solve.trajectory() {
        println!("  incumbent {obj:.4} at {at:.3}s");
    }
}
