//! Micro-benchmarks of the synthesis stages on a plain
//! [`std::time::Instant`] harness (no external benchmarking crates, so the
//! build stays offline). Each stage runs a fixed number of iterations and
//! reports min / mean / max wall time; the layout stage also prints the
//! solver telemetry ([`columba_s::milp::SolveStats`]) of its last run.
//!
//! ```sh
//! cargo run -p columba-bench --release --bin microbench
//! cargo run -p columba-bench --release --bin microbench -- --iters 10
//! cargo run -p columba-bench --release --bin microbench -- --out /tmp/bench
//! ```
//!
//! The machine-readable artifact lands at `<out>/BENCH_microbench.json`
//! (default `bench/` — the committed perf-gate baseline location).

use std::time::{Duration, Instant};

use columba_bench::{bench_json, out_path, secs, write_bench_json, CaseStats};
use columba_s::layout::{self, LayoutOptions};
use columba_s::netlist::{generators, MuxCount};
use columba_s::planar::planarize;
use columba_s::{Columba, SynthesisOptions};

/// Times `f` over `iters` runs and returns the raw samples.
fn measure<T>(iters: usize, mut f: impl FnMut() -> T) -> Vec<Duration> {
    let mut samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t = Instant::now();
        std::hint::black_box(f());
        samples.push(t.elapsed());
    }
    samples
}

/// Prints the human-readable row and returns the machine-readable stats.
fn report(stage: &str, iters: usize, samples: &[Duration]) -> CaseStats {
    let stats = CaseStats::from_samples(stage, samples);
    println!(
        "{stage:<34}{:>10} {:>10} {:>10}   ({iters} iters)",
        secs(Duration::from_secs_f64(stats.min_s)),
        secs(Duration::from_secs_f64(stats.mean_s)),
        secs(Duration::from_secs_f64(stats.max_s))
    );
    stats
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let iters = match args.iter().position(|a| a == "--iters") {
        None => 5usize,
        Some(i) => match args.get(i + 1).map(|v| v.parse()) {
            Some(Ok(n)) if n > 0 => n,
            _ => {
                eprintln!("error: --iters requires a positive integer");
                std::process::exit(2);
            }
        },
    };

    println!("synthesis-stage micro-benchmarks ({iters} iterations per stage)\n");
    println!("{:<34}{:>10} {:>10} {:>10}", "stage", "min", "mean", "max");

    let chip4 = generators::chip_ip(4, MuxCount::One);
    let chip64 = generators::chip_ip(64, MuxCount::One);
    let mut cases = Vec::new();

    cases.push(report(
        "netlist generation (64 units)",
        iters,
        &measure(iters, || generators::chip_ip(64, MuxCount::One)),
    ));
    cases.push(report(
        "planarize chip4",
        iters,
        &measure(iters, || planarize(&chip4)),
    ));
    cases.push(report(
        "planarize chip64",
        iters,
        &measure(iters, || planarize(&chip64)),
    ));

    let (planar4, _) = planarize(&chip4);
    let heuristic = LayoutOptions::heuristic_only();
    cases.push(report(
        "layout chip4 (heuristic)",
        iters,
        &measure(iters, || {
            layout::synthesize(&planar4, &heuristic).expect("chip4 synthesizes")
        }),
    ));

    let budget = LayoutOptions {
        time_limit: Duration::from_secs(2),
        node_limit: 50,
        ..LayoutOptions::default()
    };
    cases.push(report(
        "layout chip4 (bounded search)",
        iters,
        &measure(iters, || {
            layout::synthesize(&planar4, &budget).expect("chip4 synthesizes")
        }),
    ));

    let (planar64, _) = planarize(&chip64);
    cases.push(report(
        "layout chip64 (heuristic)",
        iters,
        &measure(iters, || {
            layout::synthesize(&planar64, &heuristic).expect("chip64 synthesizes")
        }),
    ));

    let flow = Columba::with_options(SynthesisOptions {
        layout: LayoutOptions {
            time_limit: Duration::from_secs(2),
            ..LayoutOptions::default()
        },
        ..SynthesisOptions::default()
    });
    cases.push(report(
        "full flow chip4",
        iters,
        &measure(iters, || {
            flow.synthesize(&chip4).expect("chip4 synthesizes")
        }),
    ));

    write_bench_json(
        &out_path(&args, "BENCH_microbench.json"),
        &bench_json("microbench", &[("iters", iters.to_string())], &cases),
    );

    // solver telemetry of one representative bounded search
    let searched = layout::synthesize(&planar4, &budget).expect("chip4 synthesizes");
    println!("\nsolver telemetry (chip4, bounded search):");
    println!("  {}", searched.laygen.solve);
    if let Some(u) = searched.laygen.solve.utilization() {
        let workers = searched.laygen.solve.worker_busy.len();
        println!(
            "  {} worker{}, {:.0}% mean utilization",
            workers,
            if workers == 1 { "" } else { "s" },
            u * 100.0
        );
    }
    for (at, obj) in searched.laygen.solve.trajectory() {
        println!("  incumbent {obj:.4} at {at:.3}s");
    }
}
