//! Regenerates the paper's Fig 6(b): the layout-generation phase output for
//! the Fig 1(b) (kinase activity) design — the merged rectangle plan before
//! validation restores the full geometry. Prints every entity rectangle and
//! writes an SVG of the plan.
//!
//! ```sh
//! cargo run -p columba-bench --release --bin fig6
//! ```

use std::io::Write as _;
use std::time::Duration;

use columba_s::layout::{generate_only, BlockId, FlowKind, LayoutOptions};
use columba_s::netlist::{generators, MuxCount};
use columba_s::planar::planarize;

fn main() {
    let (netlist, _) = planarize(&generators::kinase_activity(MuxCount::One));
    let options = LayoutOptions {
        time_limit: Duration::from_secs(10),
        ..LayoutOptions::default()
    };
    let (plan, layout) = generate_only(&netlist, &options).expect("layout generation succeeds");

    println!(
        "Fig 6(b) — layout generation for the kinase design ({} blocks, {} flow entities, {} control entities)",
        plan.blocks.len(),
        plan.flows.len(),
        plan.controls.len()
    );
    println!(
        "MILP: {}; {} disjunctions kept, {} pruned by chain order; status {}\n",
        layout.report.model_stats,
        layout.report.disjunctions,
        layout.report.pruned_pairs,
        layout.report.status
    );

    println!("blocks (merged module rectangles, Fig 6(a) style):");
    for (b, r) in plan.blocks.iter().zip(&layout.block_rects) {
        println!(
            "  {:<18}{:>7.2}x{:<7.2} at ({:.2}, {:.2}) mm{}",
            b.label,
            r.width().to_mm(),
            r.height().to_mm(),
            r.x_l().to_mm(),
            r.y_b().to_mm(),
            if b.is_switch() {
                "  [y-extensible switch]"
            } else {
                ""
            }
        );
    }
    println!("\nmerged flow-channel rectangles (blue in the paper):");
    for (f, r) in plan.flows.iter().zip(&layout.flow_rects) {
        let kind = match f.kind {
            FlowKind::Thin => "thin".to_string(),
            FlowKind::FullHeight(BlockId(b)) => format!("full-height of {}", plan.blocks[b].label),
            FlowKind::InletBundle(n) => format!("inlet bundle x{n}"),
        };
        println!(
            "  n={:<3}{:<26}[{:.2}..{:.2}]x[{:.2}..{:.2}] mm",
            f.count,
            kind,
            r.x_l().to_mm(),
            r.x_r().to_mm(),
            r.y_b().to_mm(),
            r.y_t().to_mm()
        );
    }
    println!("\nmerged control-channel rectangles (green in the paper):");
    for (c, r) in plan.controls.iter().zip(&layout.control_rects) {
        println!(
            "  n={:<3}{:<26}[{:.2}..{:.2}]x[{:.2}..{:.2}] mm",
            c.count,
            format!("{:?} of {}", c.dir, plan.blocks[c.block.0].label),
            r.x_l().to_mm(),
            r.x_r().to_mm(),
            r.y_b().to_mm(),
            r.y_t().to_mm()
        );
    }

    // a minimal SVG of the rectangle plan
    let (xm, ym) = (layout.extent.0.to_mm(), layout.extent.1.to_mm());
    let mut svg = Vec::new();
    writeln!(
        svg,
        r#"<svg xmlns="http://www.w3.org/2000/svg" viewBox="0 0 {xm:.2} {ym:.2}" width="{:.0}" height="{:.0}">"#,
        xm * 10.0,
        ym * 10.0
    )
    .unwrap();
    let mut rect = |r: &columba_s::geom::Rect, style: &str| {
        writeln!(
            svg,
            r#"<rect x="{:.3}" y="{:.3}" width="{:.3}" height="{:.3}" {style}/>"#,
            r.x_l().to_mm(),
            ym - r.y_t().to_mm(),
            r.width().to_mm(),
            r.height().to_mm()
        )
        .unwrap();
    };
    for r in &layout.control_rects {
        rect(r, r##"fill="#2f9e44" fill-opacity="0.5""##);
    }
    for r in &layout.flow_rects {
        rect(r, r##"fill="#3b6fd4" fill-opacity="0.6""##);
    }
    for r in &layout.block_rects {
        rect(r, r##"fill="none" stroke="#333" stroke-width="0.08""##);
    }
    writeln!(svg, "</svg>").unwrap();
    let path = std::env::temp_dir().join("fig6_rect_plan.svg");
    std::fs::write(&path, svg).expect("svg written");
    println!("\nrectangle plan rendered to {}", path.display());
}
