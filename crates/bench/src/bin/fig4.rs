//! Regenerates the paper's Fig 4: a multiplexer over 15 control channels.
//! Prints the synthesized valve matrix as O/X rows per MUX-flow line and
//! demonstrates the paper's example — the bit configuration `1001` leaves
//! exactly control channel 9 open.
//!
//! ```sh
//! cargo run -p columba-bench --release --bin fig4
//! ```

use columba_s::design::{Channel, ChannelRole, Design};
use columba_s::geom::{Rect, Segment, Side, Um};
use columba_s::mux::{required_height, required_inlets, selection, synthesize};

fn main() {
    const N: usize = 15;
    let mux_h = required_height(N);
    let chip = Rect::new(Um(0), Um(2_000 + 600 * N as i64), Um(0), Um(20_000));
    let mut design = Design::new("fig4", chip);
    design.functional_region = Rect::new(chip.x_l(), chip.x_r(), mux_h, chip.y_t());
    let channels: Vec<_> = (0..N)
        .map(|i| {
            design.add_channel(Channel::straight(
                ChannelRole::Control,
                Segment::vertical(Um(1_000 + 600 * i as i64), mux_h, Um(15_000), Um(100)),
                None,
            ))
        })
        .collect();
    let region = Rect::new(chip.x_l(), chip.x_r(), Um(0), mux_h);
    let mi = synthesize(&mut design, channels, Side::Bottom, region).expect("mux builds");
    let mux = &design.muxes[mi];

    println!(
        "Fig 4 — {N}-channel multiplexer: {} address bits, {} pressure inlets",
        mux.bits(),
        mux.inlet_count()
    );
    assert_eq!(mux.inlet_count(), required_inlets(N));

    // valve matrix: one row per MUX-flow line, one column per channel
    println!("\nvalve positions (V = valve on that line over that channel):");
    print!("{:<12}", "line");
    for c in 0..N {
        print!("{c:>3}");
    }
    println!();
    for bit in (0..mux.bits()).rev() {
        for complement in [false, true] {
            print!("bit{bit}{:<7}", if complement { " (comp)" } else { "" });
            for c in 0..N {
                let has = mux
                    .valves
                    .iter()
                    .any(|v| v.bit == bit && v.on_complement_line == complement && v.channel == c);
                print!("{:>3}", if has { "V" } else { "." });
            }
            println!();
        }
    }

    // the paper's example: address 1001 (9) opens exactly channel 9
    let address = 0b1001;
    let sel = selection(mux, address);
    println!("\naddress {address:#06b}: inflated lines (X = inflated, O = open):");
    for bit in (0..mux.bits()).rev() {
        let compl_inflated = sel.inflated_lines.contains(&(bit, true));
        let (a, b) = if compl_inflated {
            ("O", "X")
        } else {
            ("X", "O")
        };
        println!("  bit{bit}: line={a} complement={b}");
    }
    let open = sel.open_channels();
    println!("open channels: {open:?}");
    assert_eq!(
        open,
        vec![address],
        "exactly the addressed channel stays open"
    );

    // exhaustive check across every address, as the paper's guarantee demands
    for a in 0..N {
        assert_eq!(selection(mux, a).open_channels(), vec![a]);
    }
    println!("\nverified: every address 0..{N} isolates exactly its channel.");
}
