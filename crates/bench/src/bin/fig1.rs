//! Regenerates the paper's Fig 1 comparison: the kinase-activity
//! application [17] synthesized by Columba 2.0 (baseline) and Columba S.
//! The paper reports run time 56 s vs 0.9 s, 22 vs 18 inlets, and
//! functional-region flow channel length 58.9 vs 39.85 mm.
//!
//! ```sh
//! cargo run -p columba-bench --release --bin fig1
//! ```

use std::time::Duration;

use columba_bench::{harness_flow, secs};
use columba_s::baseline::{synthesize_baseline, BaselineOptions};
use columba_s::netlist::{generators, MuxCount};
use columba_s::planar::planarize;

fn main() {
    let netlist = generators::kinase_activity(MuxCount::One);
    println!(
        "Fig 1 — kinase activity application ({} units)\n",
        netlist.functional_unit_count()
    );

    let flow = harness_flow(Duration::from_secs(10));
    let s = flow
        .synthesize(&netlist)
        .expect("Columba S synthesis succeeds");
    let ss = s.stats();
    let s_inlets = ss.control_inlets + ss.fluid_inlets;

    let (planar, _) = planarize(&netlist);
    let b = synthesize_baseline(
        &planar,
        &BaselineOptions {
            time_limit: Duration::from_secs(45),
            node_limit: 500_000,
        },
    )
    .expect("baseline synthesis succeeds");
    let b_inlets = b.control_inlets + b.fluid_inlets;

    println!("{:<24}{:>16}{:>16}", "", "Columba 2.0", "Columba S");
    println!(
        "{:<24}{:>16}{:>16}",
        "run time",
        secs(b.elapsed),
        secs(s.elapsed)
    );
    println!("{:<24}{:>16}{:>16}", "run time (paper)", "56s", "0.9s");
    println!("{:<24}{:>16}{:>16}", "inlets", b_inlets, s_inlets);
    println!("{:<24}{:>16}{:>16}", "inlets (paper)", 22, 18);
    println!(
        "{:<24}{:>16.1}{:>16.1}",
        "L_f (mm)",
        b.flow_channel_length.to_mm(),
        ss.flow_channel_length.to_mm()
    );
    println!("{:<24}{:>16}{:>16}", "L_f (paper, mm)", 58.9, 39.85);

    // write the Columba S design for visual comparison with Fig 1(b)
    let svg_path = std::env::temp_dir().join("fig1_columba_s.svg");
    std::fs::write(&svg_path, s.to_svg().expect("svg renders")).expect("svg written");
    println!("\nColumba S design rendered to {}", svg_path.display());
}
