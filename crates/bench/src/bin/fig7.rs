//! Regenerates the paper's Fig 7: the complete production flow for a
//! ChIP 4-IP application — (a) the plain-text netlist, (b) the synthesized
//! design — plus (d) the 2-MUX ChIP64 design partitioned into eight
//! parallel-execution groups. The fabricated chip of Fig 7(c) is
//! substituted by DRC + simulation (see `DESIGN.md`).
//!
//! ```sh
//! cargo run -p columba-bench --release --bin fig7
//! ```

use std::time::Duration;

use columba_bench::{harness_flow, secs};
use columba_s::netlist::{generators, MuxCount};
use columba_s::sim::Simulator;

fn main() {
    // (a) the netlist description
    let netlist = generators::chip_ip(4, MuxCount::One);
    println!("Fig 7(a) — plain-text netlist description (ChIP 4-IP):\n");
    println!("{}", netlist.to_text());

    // (b) the synthesized design
    let flow = harness_flow(Duration::from_secs(10));
    let out = flow.synthesize(&netlist).expect("ChIP 4-IP synthesizes");
    let s = out.stats();
    println!("Fig 7(b) — synthesized design: {s}");
    println!(
        "          synthesis time {}; DRC {}",
        secs(out.elapsed),
        out.drc
    );
    let path = std::env::temp_dir().join("fig7b_chip4.svg");
    std::fs::write(&path, out.to_svg().expect("svg renders")).expect("svg written");
    println!("          rendered to {}", path.display());

    // (c) fabrication feasibility, substituted by behavioural simulation
    let mut sim = Simulator::new(&out.design).expect("design simulates");
    let line = sim
        .line_by_name("pre.pump0")
        .expect("pre-mixer pump line exists");
    let ev = sim.actuate(line, true).expect("line actuates");
    println!(
        "Fig 7(c) [simulated] — actuated `{}` via MUX address {:#b}; design is operable",
        sim.line_name(line),
        ev.address
    );

    // (d) the 2-MUX ChIP64 design with 8 parallel-execution groups
    let big = generators::chip_ip(64, MuxCount::Two);
    println!(
        "\nFig 7(d) — ChIP64, 2-MUX: {} functional units in {} parallel-execution groups",
        big.functional_unit_count(),
        big.parallel_groups().len()
    );
    let out = flow.synthesize(&big).expect("ChIP64 synthesizes");
    let s = out.stats();
    println!("          {s}");
    println!(
        "          synthesis time {}; {} shared control lines drive {} valves",
        secs(out.elapsed),
        out.design.control_lines.len(),
        out.design
            .control_lines
            .iter()
            .map(|l| l.valves.len())
            .sum::<usize>()
    );
    assert!(out.drc.is_clean(), "{}", out.drc);
    let path = std::env::temp_dir().join("fig7d_chip64_2mux.svg");
    std::fs::write(&path, out.to_svg().expect("svg renders")).expect("svg written");
    println!("          rendered to {}", path.display());
}
