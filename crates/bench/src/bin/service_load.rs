//! Load benchmark for `columba-service`: measures end-to-end job latency
//! for cold solves versus content-addressed cache hits, under concurrent
//! client submission, on the plain `Instant` harness (no external
//! benchmarking crates, so the build stays offline).
//!
//! ```sh
//! cargo run -p columba-bench --release --bin service_load
//! cargo run -p columba-bench --release --bin service_load -- --clients 16 --hits 64
//! ```
//!
//! The machine-readable artifact lands at `<out>/BENCH_service.json`
//! (default `bench/` — the committed perf-gate baseline location;
//! override with `--out DIR`).

use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use columba_bench::{bench_json, out_path, secs, write_bench_json, CaseStats};
use columba_s::netlist::{generators, MuxCount};
use columba_s::{LayoutOptions, SynthesisOptions};
use columba_service::{JobState, Service, ServiceConfig};

fn arg(args: &[String], name: &str, default: usize) -> usize {
    match args.iter().position(|a| a == name) {
        None => default,
        Some(i) => match args.get(i + 1).map(|v| v.parse()) {
            Some(Ok(n)) if n > 0 => n,
            _ => {
                eprintln!("error: {name} requires a positive integer");
                std::process::exit(2);
            }
        },
    }
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn stats(mut samples: Vec<Duration>) -> (Duration, Duration, Duration, Duration) {
    samples.sort_unstable();
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    (
        samples[0],
        mean,
        percentile(&samples, 0.5),
        *samples.last().expect("non-empty samples"),
    )
}

fn run_to_done(service: &Service, text: &str) -> (Duration, bool) {
    let t = Instant::now();
    let id = service.submit_text(text).expect("bench queue has room");
    let status = service
        .wait(id, Duration::from_secs(600))
        .expect("job known");
    assert_eq!(
        status.state,
        JobState::Done,
        "bench job failed: {:?}",
        status.error
    );
    (t.elapsed(), status.from_cache)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let clients = arg(&args, "--clients", 8);
    let hits_per_client = arg(&args, "--hits", 16);

    let cases: Vec<(String, String)> = [4usize, 8, 16]
        .iter()
        .map(|&n| {
            (
                format!("chip{n}ip"),
                generators::chip_ip(n, MuxCount::One).to_text(),
            )
        })
        .collect();

    let service = Arc::new(Service::start(ServiceConfig {
        workers: 4,
        queue_capacity: clients * cases.len() * hits_per_client + cases.len(),
        options: SynthesisOptions {
            layout: LayoutOptions {
                time_limit: Duration::from_secs(15),
                node_limit: 200,
                threads: 1,
                ..LayoutOptions::default()
            },
            ..SynthesisOptions::default()
        },
        job_deadline: None,
        ..ServiceConfig::default()
    }));

    println!("service load benchmark: {clients} clients, {hits_per_client} cache hits each\n");
    println!("{:<12}{:>12} {:>12}", "case", "cold solve", "");

    // cold solves, serially (each is a cache miss)
    let mut cold = Vec::new();
    for (name, text) in &cases {
        let (latency, from_cache) = run_to_done(&service, text);
        assert!(!from_cache, "{name}: first submission must miss");
        println!("{name:<12}{:>12} {:>12}", secs(latency), "");
        cold.push(latency);
    }

    // hot: every client hammers every case; all hits
    let hot: Vec<Duration> = {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                let service = Arc::clone(&service);
                let cases = cases.clone();
                thread::spawn(move || {
                    let mut latencies = Vec::new();
                    for _ in 0..hits_per_client {
                        for (name, text) in &cases {
                            let (latency, from_cache) = run_to_done(&service, text);
                            assert!(from_cache, "{name}: resubmission must hit the cache");
                            latencies.push(latency);
                        }
                    }
                    latencies
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    };

    let cold_stats = CaseStats::from_samples("cold solve", &cold);
    let hot_stats = CaseStats::from_samples("cache hit", &hot);
    let (cold_min, cold_mean, cold_p50, cold_max) = stats(cold);
    let (hot_min, hot_mean, hot_p50, hot_max) = stats(hot);
    println!(
        "\n{:<12}{:>10} {:>10} {:>10} {:>10}",
        "", "min", "mean", "p50", "max"
    );
    println!(
        "{:<12}{:>10} {:>10} {:>10} {:>10}",
        "cold solve",
        secs(cold_min),
        secs(cold_mean),
        secs(cold_p50),
        secs(cold_max)
    );
    println!(
        "{:<12}{:>10} {:>10} {:>10} {:>10}",
        "cache hit",
        secs(hot_min),
        secs(hot_mean),
        secs(hot_p50),
        secs(hot_max)
    );
    let speedup = cold_p50.as_secs_f64() / hot_p50.as_secs_f64().max(1e-9);
    println!("\np50 speedup from the content-addressed cache: {speedup:.0}x");
    if speedup < 10.0 {
        eprintln!("warning: cache speedup below the 10x target");
    }

    write_bench_json(
        &out_path(&args, "BENCH_service.json"),
        &bench_json(
            "service_load",
            &[
                ("clients", clients.to_string()),
                ("hits_per_client", hits_per_client.to_string()),
                ("p50_speedup", format!("{speedup:.3}")),
            ],
            &[cold_stats, hot_stats],
        ),
    );

    println!("\nfinal service metrics:");
    for line in service.metrics().render().lines() {
        println!("  {line}");
    }
    service.shutdown();
}
