//! Overhead guard for the observability layer: asserts the runtime-disabled
//! instrumentation costs the chip4ip solve path less than 2% of its wall
//! time, so the spans shipped into `columba-milp` / `columba-layout` are
//! free when nobody is looking.
//!
//! Method: (1) measure the per-call cost of a disabled `span()` in a tight
//! loop; (2) count the spans one instrumented chip4ip solve actually opens
//! (recording run); (3) measure the disabled-path solve wall time. The
//! guard then requires `span_count x per_call_cost <= 2% of the solve
//! median` — a deterministic bound that does not depend on run-to-run
//! solver jitter, unlike differencing two noisy medians. Enabled-path
//! medians are printed for information only.
//!
//! The same deterministic-budget method bounds the tracking allocator:
//! the per-pair cost of `alloc::bookkeeping_probe` (exactly the relaxed
//! atomics + thread-local Cells one alloc/dealloc pair runs) times the
//! allocation pairs one solve makes must stay within 3% of the solve
//! median. With the `alloc-track` feature compiled out both factors are
//! zero by construction.
//!
//! ```sh
//! cargo run -p columba-bench --release --bin obs_overhead
//! cargo run -p columba-bench --release --bin obs_overhead -- --iters 9
//! ```

use std::time::{Duration, Instant};

use columba_bench::{secs, CaseStats};
use columba_obs::SpanRecorder;
use columba_s::layout::{self, LayoutOptions};
use columba_s::netlist::{generators, MuxCount, Netlist};
use columba_s::planar::planarize;

const OVERHEAD_BUDGET: f64 = 0.02;
const ALLOC_BUDGET: f64 = 0.03;

fn solve_samples(planar: &Netlist, opts: &LayoutOptions, iters: usize) -> Vec<Duration> {
    (0..iters)
        .map(|_| {
            let t = Instant::now();
            std::hint::black_box(layout::synthesize(planar, opts).expect("chip4ip synthesizes"));
            t.elapsed()
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let iters = match args.iter().position(|a| a == "--iters") {
        None => 5usize,
        Some(i) => match args.get(i + 1).map(|v| v.parse()) {
            Some(Ok(n)) if n > 0 => n,
            _ => {
                eprintln!("error: --iters requires a positive integer");
                std::process::exit(2);
            }
        },
    };

    let chip4 = generators::chip_ip(4, MuxCount::One);
    let (planar, _) = planarize(&chip4);
    let opts = LayoutOptions {
        time_limit: Duration::from_secs(2),
        node_limit: 50,
        threads: 1,
        ..LayoutOptions::default()
    };

    // 1) per-call cost of the disabled fast path (one relaxed atomic load)
    columba_obs::set_enabled(false);
    const CALLS: u32 = 4_000_000;
    let t = Instant::now();
    for _ in 0..CALLS {
        std::hint::black_box(columba_obs::span("overhead.probe"));
    }
    let per_call_ns = t.elapsed().as_nanos() as f64 / f64::from(CALLS);

    // 2) how many spans one instrumented solve opens (recording run)
    columba_obs::set_enabled(true);
    let recorder = SpanRecorder::new(1 << 20);
    {
        let _guard = recorder.install();
        std::hint::black_box(layout::synthesize(&planar, &opts).expect("chip4ip synthesizes"));
    }
    let span_count = recorder.len() as u64 + recorder.evicted();

    // enabled-path timing, informational only (recorder kept installed)
    let enabled = {
        let _guard = recorder.install();
        CaseStats::from_samples(
            "chip4ip solve (obs enabled)",
            &solve_samples(&planar, &opts, iters),
        )
    };

    // 3) disabled-path solve wall time
    columba_obs::set_enabled(false);
    let disabled = CaseStats::from_samples(
        "chip4ip solve (obs disabled)",
        &solve_samples(&planar, &opts, iters),
    );

    let estimated_overhead_s = per_call_ns * 1e-9 * span_count as f64;
    let fraction = estimated_overhead_s / disabled.median_s;

    // 4) allocator-tracking guard: per-pair bookkeeping cost x the
    // alloc/dealloc pairs one solve makes, against the same solve median.
    const PROBES: u32 = 4_000_000;
    let t = Instant::now();
    for i in 0..PROBES {
        columba_obs::alloc::bookkeeping_probe(u64::from(i & 0xFFF));
    }
    let per_pair_ns = t.elapsed().as_nanos() as f64 / f64::from(PROBES);
    let allocs_before = columba_obs::alloc::stats().total_allocs;
    std::hint::black_box(layout::synthesize(&planar, &opts).expect("chip4ip synthesizes"));
    let alloc_pairs = columba_obs::alloc::stats().total_allocs - allocs_before;
    let alloc_overhead_s = per_pair_ns * 1e-9 * alloc_pairs as f64;
    let alloc_fraction = alloc_overhead_s / disabled.median_s;

    println!("observability overhead guard (chip4ip, {iters} iters)\n");
    println!("disabled span() per call:     {per_call_ns:.1} ns");
    println!("spans per instrumented solve: {span_count}");
    println!(
        "disabled solve median:        {}",
        secs(Duration::from_secs_f64(disabled.median_s))
    );
    println!(
        "enabled solve median:         {}  (informational)",
        secs(Duration::from_secs_f64(enabled.median_s))
    );
    println!(
        "estimated disabled overhead:  {:.4}% of the solve median (budget {:.0}%)",
        fraction * 100.0,
        OVERHEAD_BUDGET * 100.0
    );

    println!(
        "alloc bookkeeping per pair:   {per_pair_ns:.1} ns  (tracking {})",
        if columba_obs::alloc::tracking_enabled() {
            "on"
        } else {
            "compiled out"
        }
    );
    println!("alloc pairs per solve:        {alloc_pairs}");
    println!(
        "estimated alloc overhead:     {:.4}% of the solve median (budget {:.0}%)",
        alloc_fraction * 100.0,
        ALLOC_BUDGET * 100.0
    );

    if fraction > OVERHEAD_BUDGET {
        eprintln!(
            "error: disabled-path observability overhead {:.3}% exceeds the {:.0}% budget",
            fraction * 100.0,
            OVERHEAD_BUDGET * 100.0
        );
        std::process::exit(1);
    }
    if alloc_fraction > ALLOC_BUDGET {
        eprintln!(
            "error: allocator-tracking overhead {:.3}% exceeds the {:.0}% budget",
            alloc_fraction * 100.0,
            ALLOC_BUDGET * 100.0
        );
        std::process::exit(1);
    }
    println!("\nOK: disabled-path and allocator overheads are within budget");
}
