//! Regenerates the paper's Fig 8: the multiplexing function on the
//! mRNA-isolation design [7]. The paper photographs the fabricated chip
//! with one bit configuration selecting a control channel whose valve then
//! blocks the fluid flow; here the same walk runs on the simulator.
//!
//! ```sh
//! cargo run -p columba-bench --release --bin fig8
//! ```

use std::time::Duration;

use columba_bench::{harness_flow, secs};
use columba_s::design::InletId;
use columba_s::netlist::{generators, MuxCount};
use columba_s::sim::Simulator;

fn main() {
    let netlist = generators::mrna_isolation(MuxCount::One);
    let flow = harness_flow(Duration::from_secs(5));
    let out = flow.synthesize(&netlist).expect("mRNA design synthesizes");
    println!(
        "Fig 8(a) — overview: {} ({} synthesis)",
        out.stats(),
        secs(out.elapsed)
    );
    assert!(out.drc.is_clean(), "{}", out.drc);

    let design = &out.design;
    let mut sim = Simulator::new(design).expect("design simulates");

    // the fluid path we watch: cells0 inlet -> cdna0 outlet on lane 0
    let inlet = |name: &str| {
        InletId(
            design
                .inlets
                .iter()
                .position(|i| i.name == name)
                .expect("inlet exists"),
        )
    };
    let (from, to) = (inlet("cells0"), inlet("cdna0"));

    // Fig 8(b): walk the MUX over every line of the capture mixer and show
    // the bit configuration that selects each
    println!("\nFig 8(b) — bit configurations selecting the capture0 lines:");
    let mux = &design.muxes[0];
    for li in 0..sim.line_count() {
        let name = sim.line_name(li).to_string();
        if !name.starts_with("capture0.") {
            continue;
        }
        let ev = sim.actuate(li, true).expect("line actuates");
        println!(
            "  {:<22} address {:0width$b}",
            name,
            ev.address,
            width = mux.bits()
        );
        sim.actuate(li, false).expect("line vents");
    }

    // Fig 8(c)/(d): pressurising the selected valve blocks the fluid flow
    let line = sim.line_by_name("capture0.iso_in").expect("line exists");
    println!(
        "\nFig 8(c) — valve open:   cells0 -> cdna0 fluid path: {}",
        sim.fluid_path_exists(from, to)
            .expect("reachability computes")
    );
    let ev = sim.actuate(line, true).expect("actuates");
    println!(
        "Fig 8(d) — valve closed (address {:#b}): cells0 -> cdna0 fluid path: {}",
        ev.address,
        sim.fluid_path_exists(from, to)
            .expect("reachability computes")
    );
    assert!(
        !sim.fluid_path_exists(from, to).unwrap(),
        "closed valve blocks the flow"
    );
    println!("\ntotal simulated actuation time: {} ms", sim.elapsed_ms());
}
