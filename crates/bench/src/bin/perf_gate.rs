//! `perf_gate` — compares fresh bench artifacts against the committed
//! baselines and fails on a p50 regression beyond tolerance.
//!
//! ```sh
//! perf_gate bench/BENCH_microbench.json /tmp/bench/BENCH_microbench.json
//! perf_gate base1.json cur1.json base2.json cur2.json --tolerance 0.10
//! perf_gate base.json cur.json --summary /tmp/gate.md
//! ```
//!
//! Positional arguments are `<baseline> <current>` pairs. Every baseline
//! case is *pinned*: it must be present in the current artifact, and its
//! median must not regress by more than the tolerance (default 10 %).
//! Cases whose baseline median sits under the noise floor (default 5 ms,
//! `--min-baseline-s`) are reported but never gate — micro-timings
//! jitter far beyond any tolerance on shared CI runners.
//!
//! The comparison is printed as a markdown table on stdout and, with
//! `--summary PATH`, appended to that file (point it at
//! `$GITHUB_STEP_SUMMARY` to land the table in the CI run page).
//! Exit status: 0 when every gate passes, 1 on any regression or
//! missing pinned case, 2 on usage or I/O errors.

use std::io::Write as _;
use std::process::ExitCode;

use columba_bench::compare_bench;

fn f64_flag(args: &[String], name: &str, default: f64) -> f64 {
    match args.iter().position(|a| a == name) {
        None => default,
        Some(i) => match args.get(i + 1).map(|v| v.parse()) {
            Some(Ok(v)) => v,
            _ => {
                eprintln!("error: {name} requires a number");
                std::process::exit(2);
            }
        },
    }
}

fn value_flag(args: &[String], name: &str) -> Option<String> {
    match args.iter().position(|a| a == name) {
        None => None,
        Some(i) => match args.get(i + 1) {
            Some(v) if !v.starts_with("--") => Some(v.clone()),
            _ => {
                eprintln!("error: {name} requires a value");
                std::process::exit(2);
            }
        },
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let tolerance = f64_flag(&args, "--tolerance", 0.10);
    let min_baseline_s = f64_flag(&args, "--min-baseline-s", 0.005);
    let summary = value_flag(&args, "--summary");

    // positional pairs, skipping flags and their values
    let mut files = Vec::new();
    let mut skip = false;
    for arg in &args {
        if skip {
            skip = false;
            continue;
        }
        if ["--tolerance", "--min-baseline-s", "--summary"].contains(&arg.as_str()) {
            skip = true;
            continue;
        }
        if arg.starts_with("--") {
            eprintln!("error: unknown flag {arg}");
            return ExitCode::from(2);
        }
        files.push(arg.clone());
    }
    if files.is_empty() || files.len() % 2 != 0 {
        eprintln!("usage: perf_gate <baseline.json> <current.json> [...more pairs]");
        eprintln!("       [--tolerance 0.10] [--min-baseline-s 0.005] [--summary PATH]");
        return ExitCode::from(2);
    }

    let mut tables = String::new();
    let mut all_passed = true;
    for pair in files.chunks(2) {
        let (base_path, cur_path) = (&pair[0], &pair[1]);
        let baseline = match std::fs::read_to_string(base_path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: cannot read baseline {base_path}: {e}");
                return ExitCode::from(2);
            }
        };
        let current = match std::fs::read_to_string(cur_path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: cannot read current {cur_path}: {e}");
                return ExitCode::from(2);
            }
        };
        let report = match compare_bench(&baseline, &current, tolerance, min_baseline_s) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("error: {base_path} vs {cur_path}: {e}");
                return ExitCode::from(2);
            }
        };
        all_passed &= report.passed();
        tables.push_str(&report.markdown());
        tables.push('\n');
    }

    print!("{tables}");
    if let Some(path) = summary {
        let appended = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .and_then(|mut f| f.write_all(tables.as_bytes()));
        if let Err(e) = appended {
            eprintln!("warning: could not append summary to {path}: {e}");
        }
    }
    if all_passed {
        println!("perf gate: pass (tolerance {:.0}%)", tolerance * 100.0);
        ExitCode::SUCCESS
    } else {
        println!(
            "perf gate: FAIL — p50 regression beyond {:.0}% (or missing pinned case)",
            tolerance * 100.0
        );
        println!("to refresh baselines after an intentional change: ci/perf_gate --refresh");
        ExitCode::FAILURE
    }
}
