//! Regenerates the paper's Table 1: design features of Columba 2.0 (our
//! baseline reconstruction) vs Columba S with one and two multiplexers on
//! all six test cases.
//!
//! ```sh
//! cargo run -p columba-bench --release --bin table1            # full run
//! cargo run -p columba-bench --release --bin table1 -- --fast  # short budgets
//! cargo run -p columba-bench --release --bin table1 -- --skip-baseline
//! ```
//!
//! Absolute numbers differ from the paper (our MILP solver replaces Gurobi,
//! the baseline replaces the closed-source Columba 2.0, and the four
//! literature netlists are reconstructions — see `DESIGN.md`). The *trends*
//! are what this table checks: runtime, inlet growth, flow-channel length
//! and area, called out in the footer.

use std::time::Duration;

use columba_bench::{dim, harness_flow, secs, table1_netlists, PAPER_TABLE1};
use columba_s::baseline::{synthesize_baseline, BaselineOptions};
use columba_s::netlist::MuxCount;
use columba_s::planar::planarize;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let fast = args.iter().any(|a| a == "--fast");
    let skip_baseline = args.iter().any(|a| a == "--skip-baseline");
    let search_budget = Duration::from_secs(if fast { 3 } else { 20 });
    let baseline_budget = Duration::from_secs(if fast { 10 } else { 60 });

    let flow = harness_flow(search_budget);
    let one = table1_netlists(MuxCount::One);
    let two = table1_netlists(MuxCount::Two);

    println!("Table 1 — design features: Columba 2.0 baseline vs Columba S");
    println!("(measured on this machine; paper values in parentheses)\n");
    println!(
        "{:<14}{:<26}{:<26}{:<26}",
        "case", "dimension (mm)", "L_f (mm)", "#c_in / runtime"
    );

    for (row_idx, paper) in PAPER_TABLE1.iter().enumerate() {
        println!("--- {} ---", paper.label);

        // Columba 2.0-style baseline (the paper could not solve the two
        // large cases "within reasonable run time"; neither do we try)
        if let Some((pw, ph, plf, pcin, prt)) = paper.columba20 {
            if skip_baseline {
                println!("{:<14}baseline skipped (--skip-baseline)", "2.0");
            } else {
                let (planar, _) = planarize(&one[row_idx]);
                match synthesize_baseline(
                    &planar,
                    &BaselineOptions {
                        time_limit: baseline_budget,
                        node_limit: 500_000,
                    },
                ) {
                    Ok(b) => println!(
                        "{:<14}{:<26}{:<26}{:<26}",
                        "2.0",
                        format!(
                            "{} ({})",
                            dim(b.width.to_mm(), b.height.to_mm()),
                            dim(pw, ph)
                        ),
                        format!("{:.1} ({plf:.1})", b.flow_channel_length.to_mm()),
                        format!(
                            "{} ({pcin}) / {} ({prt:.0}s) [{}]",
                            b.control_inlets,
                            secs(b.elapsed),
                            b.status
                        ),
                    ),
                    Err(e) => println!("{:<14}failed: {e}", "2.0"),
                }
            }
        } else {
            println!(
                "{:<14}not solvable within reasonable run time (as in the paper)",
                "2.0"
            );
        }

        for (tag, netlist, p) in [
            ("S 1-MUX", &one[row_idx], paper.s1),
            ("S 2-MUX", &two[row_idx], paper.s2),
        ] {
            let (pw, ph, plf, pcin, prt) = p;
            match flow.synthesize(netlist) {
                Ok(out) => {
                    let s = out.stats();
                    let drc = if out.drc.is_clean() { "" } else { " DRC!" };
                    println!(
                        "{:<14}{:<26}{:<26}{:<26}",
                        tag,
                        format!(
                            "{} ({})",
                            dim(s.width.to_mm(), s.height.to_mm()),
                            dim(pw, ph)
                        ),
                        format!("{:.1} ({plf:.1})", s.flow_channel_length.to_mm()),
                        format!(
                            "{} ({pcin}) / {} ({prt}s){drc}",
                            s.control_inlets,
                            secs(out.elapsed)
                        ),
                    );
                    println!("{:<14}solver: {}", "", out.layout.solve);
                }
                Err(e) => println!("{tag:<14}failed: {e}"),
            }
        }
    }

    println!("\ntrends checked (paper §4):");
    println!(" 1. runtime: Columba S is orders of magnitude faster than the baseline and");
    println!("    handles the 129/257-unit cases the baseline cannot attempt;");
    println!(" 2. #c_in: S 1-MUX < S 2-MUX, growth is logarithmic (2*ceil(log2 n)+1 per MUX),");
    println!("    the baseline's pressure-sharing count grows linearly;");
    println!(" 3. L_f: baseline detour routing exceeds Columba S's straight channels on the");
    println!("    large designs; 4. area: the MUX overhead makes S chips larger on small cases.");
}
