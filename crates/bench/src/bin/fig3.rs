//! Regenerates the paper's Fig 3: the Columba S module model library —
//! the rotary mixer in its three control-access configurations (b/c/d,
//! including sieve valves and cell traps), and the y-extensible switch with
//! bottom/top valve access (e/f). Prints the pin plans and writes one SVG
//! per module.
//!
//! ```sh
//! cargo run -p columba-bench --release --bin fig3
//! ```

use columba_s::design::{Design, PlacedModule};
use columba_s::geom::{Rect, Side, Um};
use columba_s::modules::{instantiate, ModuleModel, SwitchPlan};
use columba_s::netlist::{ChamberSpec, ComponentKind, ControlAccess, MixerSpec, SwitchSpec};

fn show(tag: &str, kind: &ComponentKind, plan: Option<&SwitchPlan>) {
    let model = ModuleModel::for_component(kind);
    let mut design = Design::new(tag, Rect::new(Um(0), Um(50_000), Um(0), Um(50_000)));
    let rect = match plan {
        Some(p) => {
            let ys: Vec<Um> = p.junctions.iter().map(|&(_, y)| y).collect();
            let lo = ys.iter().copied().fold(ys[0], Um::min) - Um(400);
            let hi = ys.iter().copied().fold(ys[0], Um::max) + Um(400);
            Rect::new(Um(10_000), Um(10_000) + model.width, lo, hi)
        }
        None => Rect::new(
            Um(10_000),
            Um(10_000) + model.width,
            Um(10_000),
            Um(10_000) + model.length.expect("fixed-length module"),
        ),
    };
    design.modules.push(PlacedModule {
        component: columba_s::netlist::ComponentId(0),
        name: tag.into(),
        rect,
    });
    let inst = instantiate(
        &mut design,
        columba_s::design::ModuleId(0),
        kind,
        rect,
        plan,
        None,
    )
    .expect("library module instantiates");

    println!("-- {tag} --");
    println!(
        "  footprint {:.2}x{:?}mm, {} flow pins, {} control lines, {} valves",
        model.width.to_mm(),
        model.length.map(|l| l.to_mm()),
        inst.flow_pins.len(),
        inst.control_pins.len(),
        design.valves.len(),
    );
    for p in &inst.control_pins {
        println!(
            "    line {:<22} {} boundary x={:.2}mm",
            p.name,
            p.side,
            p.position.x.to_mm()
        );
    }
    let report = columba_s::design::drc::check(&design);
    assert!(report.is_clean(), "library geometry is DRC clean: {report}");
    let path = std::env::temp_dir().join(format!("fig3_{tag}.svg"));
    let mut svg = Vec::new();
    columba_s::cad::write_svg(&design, &mut svg).expect("svg renders");
    std::fs::write(&path, svg).expect("svg written");
    println!("  svg: {}", path.display());
}

fn main() {
    println!("Fig 3 — the Columba S module model library\n");
    show(
        "mixer_b_top",
        &ComponentKind::Mixer(MixerSpec {
            access: ControlAccess::Top,
            ..MixerSpec::default()
        }),
        None,
    );
    show(
        "mixer_c_sieve",
        &ComponentKind::Mixer(MixerSpec {
            access: ControlAccess::Bottom,
            sieve_valves: true,
            ..MixerSpec::default()
        }),
        None,
    );
    show(
        "mixer_d_traps",
        &ComponentKind::Mixer(MixerSpec {
            access: ControlAccess::Both,
            cell_traps: true,
            ..MixerSpec::default()
        }),
        None,
    );
    show(
        "chamber",
        &ComponentKind::Chamber(ChamberSpec::default()),
        None,
    );
    show(
        "switch_e_bottom",
        &ComponentKind::Switch(SwitchSpec { junctions: 3 }),
        Some(&SwitchPlan {
            junctions: vec![
                (Side::Left, Um(10_600)),
                (Side::Right, Um(11_400)),
                (Side::Left, Um(12_300)),
            ],
            control_side: Side::Bottom,
        }),
    );
    show(
        "switch_f_top",
        &ComponentKind::Switch(SwitchSpec { junctions: 4 }),
        Some(&SwitchPlan {
            junctions: vec![
                (Side::Left, Um(10_600)),
                (Side::Right, Um(11_400)),
                (Side::Right, Um(12_200)),
                (Side::Left, Um(13_000)),
            ],
            control_side: Side::Top,
        }),
    );
    println!("\nall module geometries instantiated and DRC-verified.");
}
