//! Ablation study of the three scalability devices `DESIGN.md` calls out:
//!
//! 1. **chain-order pruning** — dropping non-overlap disjunctions between
//!    entity pairs whose left-to-right order is implied by the connection
//!    chains;
//! 2. **warm starting** — seeding branch & bound with the constructive
//!    placement (the basis of the scalable heuristic mode);
//! 3. **parallel-unit merging** — the paper's §3.2.1 model reduction that
//!    collapses each parallel-execution group into one rectangle.
//!
//! Each device is disabled in isolation and the MILP size, solve status,
//! objective and wall-clock time are compared under a fixed budget.
//!
//! ```sh
//! cargo run -p columba-bench --release --bin ablation
//! ```

use std::time::Duration;

use columba_s::layout::{self, LayoutOptions};
use columba_s::netlist::{generators, MuxCount, Netlist};
use columba_s::planar::planarize;

fn run(label: &str, netlist: &Netlist, options: &LayoutOptions) {
    match layout::synthesize(netlist, options) {
        Ok(result) => {
            let r = &result.laygen;
            let s = result.design.stats();
            println!(
                "{label:<26}{:<42}{:>6}{:>7}  {:>10}  {:>9.2}  {:>9}",
                r.model_stats.to_string(),
                r.disjunctions,
                r.pruned_pairs,
                r.status.to_string(),
                r.objective.unwrap_or(f64::NAN),
                format!("{:.2?}", result.elapsed + r.elapsed),
            );
            let _ = s;
        }
        Err(e) => println!("{label:<26}failed: {e}"),
    }
}

/// The same units and connections, but with the parallel-execution groups
/// stripped — every lane becomes an independent block in the MILP.
fn without_parallel_groups(netlist: &Netlist) -> Netlist {
    let mut out = Netlist::new(format!("{}_nogroups", netlist.name));
    out.mux_count = netlist.mux_count;
    for c in netlist.components() {
        out.add_component(c.name.clone(), c.kind)
            .expect("names stay unique");
    }
    for p in netlist.ports() {
        out.add_port(p.clone()).expect("names stay unique");
    }
    for c in netlist.connections() {
        out.connect(c.from, c.to).expect("connections stay valid");
    }
    out
}

fn main() {
    let budget = Duration::from_secs(8);
    let base = LayoutOptions {
        time_limit: budget,
        ..LayoutOptions::default()
    };
    println!(
        "{:<26}{:<42}{:>6}{:>7}  {:>10}  {:>9}  {:>9}",
        "configuration", "model", "disj", "pruned", "status", "objective", "time"
    );

    println!("\n== chain-order pruning & warm start (ChIP 4-IP, {budget:?} budget) ==");
    let (chip4, _) = planarize(&generators::chip_ip(4, MuxCount::One));
    run("full (defaults)", &chip4, &base);
    run(
        "no pruning",
        &chip4,
        &LayoutOptions {
            prune_ordered_pairs: false,
            ..base.clone()
        },
    );
    run(
        "no warm start",
        &chip4,
        &LayoutOptions {
            warm_start: false,
            ..base.clone()
        },
    );
    run(
        "no pruning, no warm start",
        &chip4,
        &LayoutOptions {
            prune_ordered_pairs: false,
            warm_start: false,
            ..base.clone()
        },
    );

    println!("\n== parallel-unit merging (ChIP 16-IP, heuristic mode) ==");
    let heuristic = LayoutOptions {
        node_limit: 0,
        ..base.clone()
    };
    let grouped = generators::chip_ip(16, MuxCount::One);
    let ungrouped = without_parallel_groups(&grouped);
    let (grouped, _) = planarize(&grouped);
    let (ungrouped, _) = planarize(&ungrouped);
    run("with merging (paper)", &grouped, &heuristic);
    run("without merging", &ungrouped, &heuristic);

    println!("\nreading the table:");
    println!(" - pruning removes disjunctions outright: fewer binaries, smaller LPs;");
    println!(" - without the warm start the search has no incumbent to prune with and");
    println!("   typically times out without proving anything near-optimal;");
    println!(" - merging collapses every 2-lane group into one rectangle, shrinking the");
    println!("   model the same way the paper's Fig 6(a) reduction does.");
}
