//! Benchmark harness support: the paper's reference numbers and shared
//! helpers for the `table1` / `fig*` binaries.
//!
//! Every table and figure of the paper's evaluation section has a binary in
//! `src/bin/` that regenerates it:
//!
//! | binary | reproduces |
//! |--------|------------|
//! | `table1` | Table 1 (all six cases, Columba 2.0 baseline vs S 1-/2-MUX) |
//! | `fig1` | Fig 1 comparison on the kinase-activity application |
//! | `fig3` | Fig 3 module model library geometries |
//! | `fig4` | Fig 4 fifteen-channel multiplexer, address 1001 |
//! | `fig6` | Fig 6(b) layout-generation rectangle plan |
//! | `fig7` | Fig 7 netlist → design flow and the ChIP64 partition |
//! | `fig8` | Fig 8 multiplexing function demonstration |
//!
//! Micro-benchmarks of the synthesis stages live in the `microbench`
//! binary — a plain [`std::time::Instant`] harness (no external
//! benchmarking crates), which also prints the solver telemetry
//! ([`columba_s::milp::SolveStats`]) of a bounded search.

use std::time::Duration;

use columba_s::netlist::{generators, MuxCount, Netlist};
use columba_s::{Columba, LayoutOptions, SynthesisOptions};

/// Paper reference values for one Table 1 row (`None` where the paper
/// prints `\` — Columba 2.0 could not solve the case).
#[derive(Debug, Clone, Copy)]
pub struct PaperRow {
    /// Row label as printed in the paper.
    pub label: &'static str,
    /// Functional units `#u`.
    pub units: usize,
    /// Columba 2.0: (w mm, h mm, L_f mm, #c_in, runtime s).
    pub columba20: Option<(f64, f64, f64, usize, f64)>,
    /// Columba S 1-MUX: (w, h, L_f, #c_in, runtime).
    pub s1: (f64, f64, f64, usize, f64),
    /// Columba S 2-MUX: (w, h, L_f, #c_in, runtime).
    pub s2: (f64, f64, f64, usize, f64),
}

/// The six rows of the paper's Table 1.
pub const PAPER_TABLE1: [PaperRow; 6] = [
    PaperRow {
        label: "[8] 6u",
        units: 6,
        columba20: Some((19.40, 23.15, 135.1, 17, 309.1)),
        s1: (19.80, 27.45, 77.05, 13, 0.8),
        s2: (19.80, 34.20, 78.45, 20, 0.6),
    },
    PaperRow {
        label: "[3] 9u",
        units: 9,
        columba20: Some((14.20, 41.50, 152.2, 26, 299.2)),
        s1: (28.00, 30.75, 114.2, 13, 0.7),
        s2: (28.00, 39.00, 113.1, 22, 0.9),
    },
    PaperRow {
        label: "[7] 8u",
        units: 8,
        columba20: Some((28.55, 23.95, 219.5, 23, 705.1)),
        s1: (22.20, 29.65, 146.85, 13, 0.7),
        s2: (22.20, 37.90, 147.25, 22, 0.9),
    },
    PaperRow {
        label: "[12] 21u",
        units: 21,
        columba20: Some((27.10, 57.70, 315.1, 31, 749.8)),
        s1: (29.60, 57.25, 172.25, 13, 1.5),
        s2: (29.60, 64.00, 172.25, 20, 1.5),
    },
    PaperRow {
        label: "ChIP64 129u",
        units: 129,
        columba20: None,
        s1: (132.60, 174.95, 3916.6, 17, 71.9),
        s2: (79.80, 184.70, 2096.0, 28, 72.7),
    },
    PaperRow {
        label: "ChIP128 257u",
        units: 257,
        columba20: None,
        s1: (145.40, 322.15, 8338.65, 17, 156.2),
        s2: (92.60, 333.40, 4827.4, 30, 157.7),
    },
];

/// The netlists behind the Table 1 rows, in row order.
#[must_use]
pub fn table1_netlists(mux: MuxCount) -> Vec<Netlist> {
    generators::table1_cases(mux)
        .into_iter()
        .map(|(_, n)| n)
        .collect()
}

/// A Columba S flow tuned for harness runs: `search_budget` bounds the
/// branch & bound on small cases; large cases auto-scale to the heuristic.
#[must_use]
pub fn harness_flow(search_budget: Duration) -> Columba {
    Columba::with_options(SynthesisOptions {
        layout: LayoutOptions {
            time_limit: search_budget,
            ..LayoutOptions::default()
        },
        ..SynthesisOptions::default()
    })
}

/// `"12.3x45.6"` dimension formatting.
#[must_use]
pub fn dim(w_mm: f64, h_mm: f64) -> String {
    format!("{w_mm:.1}x{h_mm:.1}")
}

/// Seconds with sub-second resolution.
#[must_use]
pub fn secs(d: Duration) -> String {
    if d.as_secs_f64() < 1.0 {
        format!("{:.0}ms", d.as_secs_f64() * 1e3)
    } else {
        format!("{:.1}s", d.as_secs_f64())
    }
}

/// Machine-readable stats of one benchmark case: exact order statistics
/// from the raw samples plus the log-bucketed histogram percentiles the
/// service's `/metrics` would report for the same latencies (so bench
/// artifacts and live telemetry are directly comparable).
#[derive(Debug, Clone)]
pub struct CaseStats {
    /// Case label.
    pub name: String,
    /// Samples measured.
    pub iters: usize,
    /// Exact minimum, seconds.
    pub min_s: f64,
    /// Exact mean, seconds.
    pub mean_s: f64,
    /// Exact median, seconds.
    pub median_s: f64,
    /// Exact maximum, seconds.
    pub max_s: f64,
    /// Histogram p50 (bucket upper bound), seconds.
    pub hist_p50_s: f64,
    /// Histogram p90 (bucket upper bound), seconds.
    pub hist_p90_s: f64,
    /// Histogram p99 (bucket upper bound), seconds.
    pub hist_p99_s: f64,
}

impl CaseStats {
    /// Computes the stats of one case from its raw samples.
    ///
    /// # Panics
    ///
    /// On an empty sample set.
    #[must_use]
    pub fn from_samples(name: &str, samples: &[Duration]) -> CaseStats {
        assert!(!samples.is_empty(), "case {name} measured no samples");
        let mut sorted: Vec<Duration> = samples.to_vec();
        sorted.sort_unstable();
        let hist = columba_obs::Histogram::new();
        for &d in samples {
            hist.record(d);
        }
        let snap = hist.snapshot();
        let (p50, p90, p99) = snap.percentiles_us();
        let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
        CaseStats {
            name: name.to_string(),
            iters: sorted.len(),
            min_s: sorted[0].as_secs_f64(),
            mean_s: mean.as_secs_f64(),
            median_s: sorted[sorted.len() / 2].as_secs_f64(),
            max_s: sorted[sorted.len() - 1].as_secs_f64(),
            hist_p50_s: p50 / 1e6,
            hist_p90_s: p90 / 1e6,
            hist_p99_s: p99 / 1e6,
        }
    }

    fn json_into(&self, out: &mut String) {
        use std::fmt::Write as _;
        out.push_str("{\"name\":");
        columba_obs::export::json_string_into(out, &self.name);
        let _ = write!(
            out,
            ",\"iters\":{},\"min_s\":{:.9},\"mean_s\":{:.9},\"median_s\":{:.9},\
             \"max_s\":{:.9},\"hist_p50_s\":{:.9},\"hist_p90_s\":{:.9},\"hist_p99_s\":{:.9}}}",
            self.iters,
            self.min_s,
            self.mean_s,
            self.median_s,
            self.max_s,
            self.hist_p50_s,
            self.hist_p90_s,
            self.hist_p99_s,
        );
    }
}

/// Renders a `BENCH_<name>.json` document: bench name, free-form config
/// pairs, and one stats object per case.
#[must_use]
pub fn bench_json(bench: &str, config: &[(&str, String)], cases: &[CaseStats]) -> String {
    let mut out = String::with_capacity(256 + cases.len() * 192);
    out.push_str("{\"bench\":");
    columba_obs::export::json_string_into(&mut out, bench);
    for (key, value) in config {
        out.push(',');
        columba_obs::export::json_string_into(&mut out, key);
        out.push(':');
        // numbers stay numbers, everything else is a string
        if value.parse::<f64>().is_ok() {
            out.push_str(value);
        } else {
            columba_obs::export::json_string_into(&mut out, value);
        }
    }
    out.push_str(",\"cases\":[");
    for (i, case) in cases.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        case.json_into(&mut out);
    }
    out.push_str("]}");
    out
}

/// Writes a bench artifact, reporting (never propagating) I/O failure —
/// a read-only working directory must not fail the bench itself.
pub fn write_bench_json(path: &str, body: &str) {
    match std::fs::write(path, body) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("\nwarning: could not write {path}: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_rows_match_generated_unit_counts() {
        let netlists = table1_netlists(MuxCount::One);
        for (row, n) in PAPER_TABLE1.iter().zip(&netlists) {
            assert_eq!(row.units, n.functional_unit_count(), "{}", row.label);
        }
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(dim(19.8, 27.4), "19.8x27.4");
        assert_eq!(secs(Duration::from_millis(800)), "800ms");
        assert_eq!(secs(Duration::from_secs_f64(71.9)), "71.9s");
    }

    #[test]
    fn bench_json_parses_and_keeps_exact_medians() {
        use columba_obs::{parse_json, Json};

        let samples: Vec<Duration> = [3u64, 1, 2, 5, 4]
            .iter()
            .map(|&ms| Duration::from_millis(ms))
            .collect();
        let case = CaseStats::from_samples("layout \"quoted\"", &samples);
        assert_eq!(case.iters, 5);
        assert!((case.median_s - 0.003).abs() < 1e-9);
        assert!(case.min_s <= case.mean_s && case.mean_s <= case.max_s);
        // the histogram bucket bound brackets the exact percentile
        assert!(case.hist_p50_s >= case.median_s);
        assert!(case.hist_p50_s <= case.hist_p90_s);
        assert!(case.hist_p90_s <= case.hist_p99_s);

        let body = bench_json(
            "microbench",
            &[("iters", "5".to_string()), ("host", "ci".to_string())],
            &[case],
        );
        let doc = parse_json(&body).expect("bench artifact is valid JSON");
        assert_eq!(doc.get("bench").and_then(Json::as_str), Some("microbench"));
        assert_eq!(doc.get("iters").and_then(Json::as_f64), Some(5.0));
        assert_eq!(doc.get("host").and_then(Json::as_str), Some("ci"));
        let cases = doc.get("cases").and_then(Json::as_arr).expect("cases");
        assert_eq!(cases.len(), 1);
        assert_eq!(
            cases[0].get("name").and_then(Json::as_str),
            Some("layout \"quoted\"")
        );
        assert!(cases[0]
            .get("median_s")
            .and_then(Json::as_f64)
            .is_some_and(|v| (v - 0.003).abs() < 1e-9));
    }
}
