//! Benchmark harness support: the paper's reference numbers and shared
//! helpers for the `table1` / `fig*` binaries.
//!
//! Every table and figure of the paper's evaluation section has a binary in
//! `src/bin/` that regenerates it:
//!
//! | binary | reproduces |
//! |--------|------------|
//! | `table1` | Table 1 (all six cases, Columba 2.0 baseline vs S 1-/2-MUX) |
//! | `fig1` | Fig 1 comparison on the kinase-activity application |
//! | `fig3` | Fig 3 module model library geometries |
//! | `fig4` | Fig 4 fifteen-channel multiplexer, address 1001 |
//! | `fig6` | Fig 6(b) layout-generation rectangle plan |
//! | `fig7` | Fig 7 netlist → design flow and the ChIP64 partition |
//! | `fig8` | Fig 8 multiplexing function demonstration |
//!
//! Micro-benchmarks of the synthesis stages live in the `microbench`
//! binary — a plain [`std::time::Instant`] harness (no external
//! benchmarking crates), which also prints the solver telemetry
//! ([`columba_s::milp::SolveStats`]) of a bounded search.

use std::path::{Path, PathBuf};
use std::time::Duration;

use columba_s::netlist::{generators, MuxCount, Netlist};
use columba_s::{Columba, LayoutOptions, SynthesisOptions};

/// Paper reference values for one Table 1 row (`None` where the paper
/// prints `\` — Columba 2.0 could not solve the case).
#[derive(Debug, Clone, Copy)]
pub struct PaperRow {
    /// Row label as printed in the paper.
    pub label: &'static str,
    /// Functional units `#u`.
    pub units: usize,
    /// Columba 2.0: (w mm, h mm, L_f mm, #c_in, runtime s).
    pub columba20: Option<(f64, f64, f64, usize, f64)>,
    /// Columba S 1-MUX: (w, h, L_f, #c_in, runtime).
    pub s1: (f64, f64, f64, usize, f64),
    /// Columba S 2-MUX: (w, h, L_f, #c_in, runtime).
    pub s2: (f64, f64, f64, usize, f64),
}

/// The six rows of the paper's Table 1.
pub const PAPER_TABLE1: [PaperRow; 6] = [
    PaperRow {
        label: "[8] 6u",
        units: 6,
        columba20: Some((19.40, 23.15, 135.1, 17, 309.1)),
        s1: (19.80, 27.45, 77.05, 13, 0.8),
        s2: (19.80, 34.20, 78.45, 20, 0.6),
    },
    PaperRow {
        label: "[3] 9u",
        units: 9,
        columba20: Some((14.20, 41.50, 152.2, 26, 299.2)),
        s1: (28.00, 30.75, 114.2, 13, 0.7),
        s2: (28.00, 39.00, 113.1, 22, 0.9),
    },
    PaperRow {
        label: "[7] 8u",
        units: 8,
        columba20: Some((28.55, 23.95, 219.5, 23, 705.1)),
        s1: (22.20, 29.65, 146.85, 13, 0.7),
        s2: (22.20, 37.90, 147.25, 22, 0.9),
    },
    PaperRow {
        label: "[12] 21u",
        units: 21,
        columba20: Some((27.10, 57.70, 315.1, 31, 749.8)),
        s1: (29.60, 57.25, 172.25, 13, 1.5),
        s2: (29.60, 64.00, 172.25, 20, 1.5),
    },
    PaperRow {
        label: "ChIP64 129u",
        units: 129,
        columba20: None,
        s1: (132.60, 174.95, 3916.6, 17, 71.9),
        s2: (79.80, 184.70, 2096.0, 28, 72.7),
    },
    PaperRow {
        label: "ChIP128 257u",
        units: 257,
        columba20: None,
        s1: (145.40, 322.15, 8338.65, 17, 156.2),
        s2: (92.60, 333.40, 4827.4, 30, 157.7),
    },
];

/// The netlists behind the Table 1 rows, in row order.
#[must_use]
pub fn table1_netlists(mux: MuxCount) -> Vec<Netlist> {
    generators::table1_cases(mux)
        .into_iter()
        .map(|(_, n)| n)
        .collect()
}

/// A Columba S flow tuned for harness runs: `search_budget` bounds the
/// branch & bound on small cases; large cases auto-scale to the heuristic.
#[must_use]
pub fn harness_flow(search_budget: Duration) -> Columba {
    Columba::with_options(SynthesisOptions {
        layout: LayoutOptions {
            time_limit: search_budget,
            ..LayoutOptions::default()
        },
        ..SynthesisOptions::default()
    })
}

/// `"12.3x45.6"` dimension formatting.
#[must_use]
pub fn dim(w_mm: f64, h_mm: f64) -> String {
    format!("{w_mm:.1}x{h_mm:.1}")
}

/// Seconds with sub-second resolution.
#[must_use]
pub fn secs(d: Duration) -> String {
    if d.as_secs_f64() < 1.0 {
        format!("{:.0}ms", d.as_secs_f64() * 1e3)
    } else {
        format!("{:.1}s", d.as_secs_f64())
    }
}

/// Machine-readable stats of one benchmark case: exact order statistics
/// from the raw samples plus the log-bucketed histogram percentiles the
/// service's `/metrics` would report for the same latencies (so bench
/// artifacts and live telemetry are directly comparable).
#[derive(Debug, Clone)]
pub struct CaseStats {
    /// Case label.
    pub name: String,
    /// Samples measured.
    pub iters: usize,
    /// Exact minimum, seconds.
    pub min_s: f64,
    /// Exact mean, seconds.
    pub mean_s: f64,
    /// Exact median, seconds.
    pub median_s: f64,
    /// Exact maximum, seconds.
    pub max_s: f64,
    /// Histogram p50 (bucket upper bound), seconds.
    pub hist_p50_s: f64,
    /// Histogram p90 (bucket upper bound), seconds.
    pub hist_p90_s: f64,
    /// Histogram p99 (bucket upper bound), seconds.
    pub hist_p99_s: f64,
}

impl CaseStats {
    /// Computes the stats of one case from its raw samples.
    ///
    /// # Panics
    ///
    /// On an empty sample set.
    #[must_use]
    pub fn from_samples(name: &str, samples: &[Duration]) -> CaseStats {
        assert!(!samples.is_empty(), "case {name} measured no samples");
        let mut sorted: Vec<Duration> = samples.to_vec();
        sorted.sort_unstable();
        let hist = columba_obs::Histogram::new();
        for &d in samples {
            hist.record(d);
        }
        let snap = hist.snapshot();
        let (p50, p90, p99) = snap.percentiles_us();
        let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
        CaseStats {
            name: name.to_string(),
            iters: sorted.len(),
            min_s: sorted[0].as_secs_f64(),
            mean_s: mean.as_secs_f64(),
            median_s: sorted[sorted.len() / 2].as_secs_f64(),
            max_s: sorted[sorted.len() - 1].as_secs_f64(),
            hist_p50_s: p50 / 1e6,
            hist_p90_s: p90 / 1e6,
            hist_p99_s: p99 / 1e6,
        }
    }

    fn json_into(&self, out: &mut String) {
        use std::fmt::Write as _;
        out.push_str("{\"name\":");
        columba_obs::export::json_string_into(out, &self.name);
        let _ = write!(
            out,
            ",\"iters\":{},\"min_s\":{:.9},\"mean_s\":{:.9},\"median_s\":{:.9},\
             \"max_s\":{:.9},\"hist_p50_s\":{:.9},\"hist_p90_s\":{:.9},\"hist_p99_s\":{:.9}}}",
            self.iters,
            self.min_s,
            self.mean_s,
            self.median_s,
            self.max_s,
            self.hist_p50_s,
            self.hist_p90_s,
            self.hist_p99_s,
        );
    }
}

/// Renders a `BENCH_<name>.json` document: bench name, free-form config
/// pairs, and one stats object per case.
#[must_use]
pub fn bench_json(bench: &str, config: &[(&str, String)], cases: &[CaseStats]) -> String {
    let mut out = String::with_capacity(256 + cases.len() * 192);
    out.push_str("{\"bench\":");
    columba_obs::export::json_string_into(&mut out, bench);
    for (key, value) in config {
        out.push(',');
        columba_obs::export::json_string_into(&mut out, key);
        out.push(':');
        // numbers stay numbers, everything else is a string
        if value.parse::<f64>().is_ok() {
            out.push_str(value);
        } else {
            columba_obs::export::json_string_into(&mut out, value);
        }
    }
    out.push_str(",\"cases\":[");
    for (i, case) in cases.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        case.json_into(&mut out);
    }
    out.push_str("]}");
    out
}

/// Resolves where a bench binary writes its `BENCH_<name>.json`
/// artifact: `<dir>/<file>` where `<dir>` comes from the `--out` flag
/// and defaults to `bench/` — a stable, committed location instead of
/// whatever the current working directory happens to be.
#[must_use]
pub fn out_path(args: &[String], file: &str) -> PathBuf {
    let dir = match args.iter().position(|a| a == "--out") {
        None => PathBuf::from("bench"),
        Some(i) => match args.get(i + 1) {
            Some(v) if !v.starts_with("--") => PathBuf::from(v),
            _ => {
                eprintln!("error: --out requires a directory path");
                std::process::exit(2);
            }
        },
    };
    dir.join(file)
}

/// Writes a bench artifact, creating the parent directory if needed and
/// reporting (never propagating) I/O failure — a read-only working
/// directory must not fail the bench itself.
pub fn write_bench_json(path: &Path, body: &str) {
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        if let Err(e) = std::fs::create_dir_all(parent) {
            eprintln!("\nwarning: could not create {}: {e}", parent.display());
            return;
        }
    }
    match std::fs::write(path, body) {
        Ok(()) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("\nwarning: could not write {}: {e}", path.display()),
    }
}

/// One case of a perf-gate comparison: the committed baseline median
/// against the freshly measured one.
#[derive(Debug, Clone)]
pub struct GateCase {
    /// Case label (shared between the two artifacts).
    pub name: String,
    /// Committed baseline median, seconds.
    pub baseline_s: f64,
    /// Freshly measured median, seconds.
    pub current_s: f64,
    /// Whether this case participates in the pass/fail decision. Cases
    /// whose baseline median sits under the noise floor are reported but
    /// never gate — micro-timings jitter far beyond any tolerance.
    pub gated: bool,
}

impl GateCase {
    /// Relative change of the median: `+0.25` is a 25 % slowdown.
    #[must_use]
    pub fn delta(&self) -> f64 {
        (self.current_s - self.baseline_s) / self.baseline_s.max(1e-12)
    }
}

/// The outcome of comparing one fresh bench artifact against its
/// committed baseline.
#[derive(Debug, Clone)]
pub struct GateReport {
    /// The bench name from the baseline artifact.
    pub bench: String,
    /// Per-case comparisons, in baseline order.
    pub cases: Vec<GateCase>,
    /// Baseline cases the current run did not measure — always a
    /// failure: a silently dropped case is how a gate rots.
    pub missing: Vec<String>,
    /// Maximum tolerated relative slowdown on gated cases.
    pub tolerance: f64,
}

impl GateReport {
    /// The gated cases whose median regressed beyond the tolerance.
    #[must_use]
    pub fn regressions(&self) -> Vec<&GateCase> {
        self.cases
            .iter()
            .filter(|c| c.gated && c.delta() > self.tolerance)
            .collect()
    }

    /// Whether the gate passes: no regression and no missing case.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.regressions().is_empty() && self.missing.is_empty()
    }

    /// Renders the comparison as a GitHub-flavored markdown table (the
    /// shape dropped into `GITHUB_STEP_SUMMARY`).
    #[must_use]
    pub fn markdown(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "### perf gate: `{}` ({})\n",
            self.bench,
            if self.passed() { "pass" } else { "FAIL" }
        );
        out.push_str("| case | baseline p50 | current p50 | delta | status |\n");
        out.push_str("|------|-------------:|------------:|------:|--------|\n");
        for case in &self.cases {
            let delta = case.delta();
            let status = if !case.gated {
                "info (below noise floor)"
            } else if delta > self.tolerance {
                "**regressed**"
            } else {
                "ok"
            };
            let _ = writeln!(
                out,
                "| {} | {} | {} | {:+.1}% | {} |",
                case.name,
                secs(Duration::from_secs_f64(case.baseline_s)),
                secs(Duration::from_secs_f64(case.current_s)),
                delta * 100.0,
                status
            );
        }
        for name in &self.missing {
            let _ = writeln!(out, "| {name} | — | missing | — | **missing** |");
        }
        out
    }
}

/// Extracts `(name, median_s)` per case from a `BENCH_*.json` document.
fn bench_medians(doc: &columba_obs::Json) -> Result<Vec<(String, f64)>, String> {
    use columba_obs::Json;
    let cases = doc
        .get("cases")
        .and_then(Json::as_arr)
        .ok_or("artifact has no cases array")?;
    cases
        .iter()
        .map(|case| {
            let name = case
                .get("name")
                .and_then(Json::as_str)
                .ok_or("case without a name")?;
            let median = case
                .get("median_s")
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("case {name} without a median_s"))?;
            Ok((name.to_string(), median))
        })
        .collect()
}

/// Compares a fresh bench artifact against its committed baseline.
/// Every baseline case is pinned: it must appear in the current run,
/// and (when its baseline median clears `min_baseline_s`) its median
/// must not regress by more than `tolerance`. Extra cases in the
/// current run are ignored — adding a case does not break the gate,
/// only refreshing the baseline admits it.
///
/// # Errors
///
/// On malformed JSON or an artifact missing the expected fields.
pub fn compare_bench(
    baseline: &str,
    current: &str,
    tolerance: f64,
    min_baseline_s: f64,
) -> Result<GateReport, String> {
    let base_doc = columba_obs::parse_json(baseline).map_err(|e| format!("baseline: {e}"))?;
    let cur_doc = columba_obs::parse_json(current).map_err(|e| format!("current: {e}"))?;
    let bench = base_doc
        .get("bench")
        .and_then(columba_obs::Json::as_str)
        .unwrap_or("?")
        .to_string();
    let base_cases = bench_medians(&base_doc).map_err(|e| format!("baseline: {e}"))?;
    let cur_cases: std::collections::HashMap<String, f64> = bench_medians(&cur_doc)
        .map_err(|e| format!("current: {e}"))?
        .into_iter()
        .collect();
    let mut cases = Vec::new();
    let mut missing = Vec::new();
    for (name, baseline_s) in base_cases {
        match cur_cases.get(&name) {
            Some(&current_s) => cases.push(GateCase {
                gated: baseline_s >= min_baseline_s,
                name,
                baseline_s,
                current_s,
            }),
            None => missing.push(name),
        }
    }
    Ok(GateReport {
        bench,
        cases,
        missing,
        tolerance,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_rows_match_generated_unit_counts() {
        let netlists = table1_netlists(MuxCount::One);
        for (row, n) in PAPER_TABLE1.iter().zip(&netlists) {
            assert_eq!(row.units, n.functional_unit_count(), "{}", row.label);
        }
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(dim(19.8, 27.4), "19.8x27.4");
        assert_eq!(secs(Duration::from_millis(800)), "800ms");
        assert_eq!(secs(Duration::from_secs_f64(71.9)), "71.9s");
    }

    fn artifact(bench: &str, cases: &[(&str, f64)]) -> String {
        let stats: Vec<CaseStats> = cases
            .iter()
            .map(|&(name, median_s)| {
                CaseStats::from_samples(name, &[Duration::from_secs_f64(median_s); 3])
            })
            .collect();
        bench_json(bench, &[], &stats)
    }

    #[test]
    fn perf_gate_passes_within_tolerance_and_fails_beyond() {
        let baseline = artifact("microbench", &[("layout", 0.100), ("planarize", 0.050)]);
        let ok = artifact("microbench", &[("layout", 0.105), ("planarize", 0.054)]);
        let report = compare_bench(&baseline, &ok, 0.10, 0.005).expect("parse");
        assert!(report.passed(), "{:?}", report.regressions());
        assert_eq!(report.bench, "microbench");

        let bad = artifact("microbench", &[("layout", 0.150), ("planarize", 0.050)]);
        let report = compare_bench(&baseline, &bad, 0.10, 0.005).expect("parse");
        assert!(!report.passed());
        let regressed: Vec<&str> = report
            .regressions()
            .iter()
            .map(|c| c.name.as_str())
            .collect();
        assert_eq!(regressed, vec!["layout"]);
        assert!(report.markdown().contains("**regressed**"));
    }

    #[test]
    fn perf_gate_noise_floor_reports_but_never_gates() {
        // a 3x slowdown on a sub-floor case is informational only
        let baseline = artifact("microbench", &[("tiny", 0.0001)]);
        let slow = artifact("microbench", &[("tiny", 0.0003)]);
        let report = compare_bench(&baseline, &slow, 0.10, 0.005).expect("parse");
        assert!(report.passed());
        assert!(report.markdown().contains("below noise floor"));
    }

    #[test]
    fn perf_gate_missing_case_fails_and_extra_case_is_ignored() {
        let baseline = artifact("service_load", &[("cold solve", 0.5), ("cache hit", 0.01)]);
        let dropped = artifact("service_load", &[("cold solve", 0.5)]);
        let report = compare_bench(&baseline, &dropped, 0.10, 0.005).expect("parse");
        assert!(!report.passed(), "a dropped pinned case must fail the gate");
        assert_eq!(report.missing, vec!["cache hit".to_string()]);
        assert!(report.markdown().contains("**missing**"));

        let extra = artifact(
            "service_load",
            &[("cold solve", 0.5), ("cache hit", 0.01), ("new case", 9.0)],
        );
        let report = compare_bench(&baseline, &extra, 0.10, 0.005).expect("parse");
        assert!(report.passed(), "unpinned extra cases never gate");
        assert_eq!(report.cases.len(), 2);
    }

    #[test]
    fn perf_gate_rejects_malformed_artifacts() {
        assert!(compare_bench("not json", "{}", 0.1, 0.005).is_err());
        assert!(compare_bench("{}", "not json", 0.1, 0.005).is_err());
        assert!(compare_bench("{\"bench\":\"x\"}", "{\"bench\":\"x\"}", 0.1, 0.005).is_err());
    }

    #[test]
    fn out_path_defaults_to_bench_dir() {
        let none: Vec<String> = vec![];
        assert_eq!(
            out_path(&none, "BENCH_x.json"),
            PathBuf::from("bench/BENCH_x.json")
        );
        let some = vec!["--out".to_string(), "/tmp/artifacts".to_string()];
        assert_eq!(
            out_path(&some, "BENCH_x.json"),
            PathBuf::from("/tmp/artifacts/BENCH_x.json")
        );
    }

    #[test]
    fn bench_json_parses_and_keeps_exact_medians() {
        use columba_obs::{parse_json, Json};

        let samples: Vec<Duration> = [3u64, 1, 2, 5, 4]
            .iter()
            .map(|&ms| Duration::from_millis(ms))
            .collect();
        let case = CaseStats::from_samples("layout \"quoted\"", &samples);
        assert_eq!(case.iters, 5);
        assert!((case.median_s - 0.003).abs() < 1e-9);
        assert!(case.min_s <= case.mean_s && case.mean_s <= case.max_s);
        // the histogram bucket bound brackets the exact percentile
        assert!(case.hist_p50_s >= case.median_s);
        assert!(case.hist_p50_s <= case.hist_p90_s);
        assert!(case.hist_p90_s <= case.hist_p99_s);

        let body = bench_json(
            "microbench",
            &[("iters", "5".to_string()), ("host", "ci".to_string())],
            &[case],
        );
        let doc = parse_json(&body).expect("bench artifact is valid JSON");
        assert_eq!(doc.get("bench").and_then(Json::as_str), Some("microbench"));
        assert_eq!(doc.get("iters").and_then(Json::as_f64), Some(5.0));
        assert_eq!(doc.get("host").and_then(Json::as_str), Some("ci"));
        let cases = doc.get("cases").and_then(Json::as_arr).expect("cases");
        assert_eq!(cases.len(), 1);
        assert_eq!(
            cases[0].get("name").and_then(Json::as_str),
            Some("layout \"quoted\"")
        );
        assert!(cases[0]
            .get("median_s")
            .and_then(Json::as_f64)
            .is_some_and(|v| (v - 0.003).abs() < 1e-9));
    }
}
