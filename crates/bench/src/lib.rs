//! Benchmark harness support: the paper's reference numbers and shared
//! helpers for the `table1` / `fig*` binaries.
//!
//! Every table and figure of the paper's evaluation section has a binary in
//! `src/bin/` that regenerates it:
//!
//! | binary | reproduces |
//! |--------|------------|
//! | `table1` | Table 1 (all six cases, Columba 2.0 baseline vs S 1-/2-MUX) |
//! | `fig1` | Fig 1 comparison on the kinase-activity application |
//! | `fig3` | Fig 3 module model library geometries |
//! | `fig4` | Fig 4 fifteen-channel multiplexer, address 1001 |
//! | `fig6` | Fig 6(b) layout-generation rectangle plan |
//! | `fig7` | Fig 7 netlist → design flow and the ChIP64 partition |
//! | `fig8` | Fig 8 multiplexing function demonstration |
//!
//! Micro-benchmarks of the synthesis stages live in the `microbench`
//! binary — a plain [`std::time::Instant`] harness (no external
//! benchmarking crates), which also prints the solver telemetry
//! ([`columba_s::milp::SolveStats`]) of a bounded search.

use std::time::Duration;

use columba_s::netlist::{generators, MuxCount, Netlist};
use columba_s::{Columba, LayoutOptions, SynthesisOptions};

/// Paper reference values for one Table 1 row (`None` where the paper
/// prints `\` — Columba 2.0 could not solve the case).
#[derive(Debug, Clone, Copy)]
pub struct PaperRow {
    /// Row label as printed in the paper.
    pub label: &'static str,
    /// Functional units `#u`.
    pub units: usize,
    /// Columba 2.0: (w mm, h mm, L_f mm, #c_in, runtime s).
    pub columba20: Option<(f64, f64, f64, usize, f64)>,
    /// Columba S 1-MUX: (w, h, L_f, #c_in, runtime).
    pub s1: (f64, f64, f64, usize, f64),
    /// Columba S 2-MUX: (w, h, L_f, #c_in, runtime).
    pub s2: (f64, f64, f64, usize, f64),
}

/// The six rows of the paper's Table 1.
pub const PAPER_TABLE1: [PaperRow; 6] = [
    PaperRow {
        label: "[8] 6u",
        units: 6,
        columba20: Some((19.40, 23.15, 135.1, 17, 309.1)),
        s1: (19.80, 27.45, 77.05, 13, 0.8),
        s2: (19.80, 34.20, 78.45, 20, 0.6),
    },
    PaperRow {
        label: "[3] 9u",
        units: 9,
        columba20: Some((14.20, 41.50, 152.2, 26, 299.2)),
        s1: (28.00, 30.75, 114.2, 13, 0.7),
        s2: (28.00, 39.00, 113.1, 22, 0.9),
    },
    PaperRow {
        label: "[7] 8u",
        units: 8,
        columba20: Some((28.55, 23.95, 219.5, 23, 705.1)),
        s1: (22.20, 29.65, 146.85, 13, 0.7),
        s2: (22.20, 37.90, 147.25, 22, 0.9),
    },
    PaperRow {
        label: "[12] 21u",
        units: 21,
        columba20: Some((27.10, 57.70, 315.1, 31, 749.8)),
        s1: (29.60, 57.25, 172.25, 13, 1.5),
        s2: (29.60, 64.00, 172.25, 20, 1.5),
    },
    PaperRow {
        label: "ChIP64 129u",
        units: 129,
        columba20: None,
        s1: (132.60, 174.95, 3916.6, 17, 71.9),
        s2: (79.80, 184.70, 2096.0, 28, 72.7),
    },
    PaperRow {
        label: "ChIP128 257u",
        units: 257,
        columba20: None,
        s1: (145.40, 322.15, 8338.65, 17, 156.2),
        s2: (92.60, 333.40, 4827.4, 30, 157.7),
    },
];

/// The netlists behind the Table 1 rows, in row order.
#[must_use]
pub fn table1_netlists(mux: MuxCount) -> Vec<Netlist> {
    generators::table1_cases(mux)
        .into_iter()
        .map(|(_, n)| n)
        .collect()
}

/// A Columba S flow tuned for harness runs: `search_budget` bounds the
/// branch & bound on small cases; large cases auto-scale to the heuristic.
#[must_use]
pub fn harness_flow(search_budget: Duration) -> Columba {
    Columba::with_options(SynthesisOptions {
        layout: LayoutOptions {
            time_limit: search_budget,
            ..LayoutOptions::default()
        },
        ..SynthesisOptions::default()
    })
}

/// `"12.3x45.6"` dimension formatting.
#[must_use]
pub fn dim(w_mm: f64, h_mm: f64) -> String {
    format!("{w_mm:.1}x{h_mm:.1}")
}

/// Seconds with sub-second resolution.
#[must_use]
pub fn secs(d: Duration) -> String {
    if d.as_secs_f64() < 1.0 {
        format!("{:.0}ms", d.as_secs_f64() * 1e3)
    } else {
        format!("{:.1}s", d.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_rows_match_generated_unit_counts() {
        let netlists = table1_netlists(MuxCount::One);
        for (row, n) in PAPER_TABLE1.iter().zip(&netlists) {
            assert_eq!(row.units, n.functional_unit_count(), "{}", row.label);
        }
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(dim(19.8, 27.4), "19.8x27.4");
        assert_eq!(secs(Duration::from_millis(800)), "800ms");
        assert_eq!(secs(Duration::from_secs_f64(71.9)), "71.9s");
    }
}
