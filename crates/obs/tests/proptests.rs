//! Seeded property tests over the observability primitives: histogram
//! bucketing and quantiles, Prometheus escaping through the exposition
//! mini-parser, Chrome-trace export through the JSON mini-parser, and
//! span nesting across a worker-pool thread boundary.
//!
//! All randomness comes from `columba-prng` with fixed seeds, so every
//! failure reproduces byte-for-byte.

use std::sync::Mutex;
use std::thread;

use columba_obs::export::{prom_sample, prom_sanitize_name, prom_type_line};
use columba_obs::hist::{bucket_bounds_us, bucket_index, Histogram, NUM_BOUNDS};
use columba_obs::{
    parse_json, parse_prometheus, validate_chrome_trace, Json, SpanContext, SpanRecorder,
};
use columba_prng::Rng;

/// Serializes the tests that flip the global recording flag or install
/// thread-local recorders on spawned threads.
static SPAN_LOCK: Mutex<()> = Mutex::new(());

// ------------------------------------------------------------- histograms

/// A random duration in microseconds, log-uniform over ~[0.1 µs, 200 s]
/// so every bucket (including under- and overflow) gets exercised.
fn random_us(rng: &mut Rng) -> f64 {
    let exponent = rng.gen_f64() * 9.3 - 1.0; // 10^-1 .. 10^8.3
    10f64.powf(exponent)
}

#[test]
fn random_durations_land_in_their_bucket() {
    let bounds = bucket_bounds_us();
    let mut rng = Rng::seed_from_u64(0xC01_BA5);
    for _ in 0..20_000 {
        let us = random_us(&mut rng);
        let idx = bucket_index(us);
        if idx < NUM_BOUNDS {
            assert!(us <= bounds[idx], "us={us} above bound of bucket {idx}");
        } else {
            assert!(
                us > bounds[NUM_BOUNDS - 1],
                "us={us} in overflow but below the last bound"
            );
        }
        if idx > 0 {
            assert!(
                us > bounds[idx - 1],
                "us={us} at or below the previous bound of bucket {idx}"
            );
        }
    }
}

#[test]
fn quantiles_are_monotone_and_bracket_the_samples() {
    let mut rng = Rng::seed_from_u64(42);
    for round in 0..200 {
        let hist = Histogram::new();
        let n = rng.gen_range(1usize..400);
        let mut max_us = 0f64;
        let mut min_us = f64::INFINITY;
        for _ in 0..n {
            let us = random_us(&mut rng);
            min_us = min_us.min(us);
            max_us = max_us.max(us);
            hist.record_us(us);
        }
        let snap = hist.snapshot();
        assert_eq!(snap.count, n as u64, "round {round}");

        // quantiles are monotone in q ...
        let (p50, p90, p99) = snap.percentiles_us();
        assert!(p50 <= p90 && p90 <= p99, "round {round}: {p50} {p90} {p99}");
        let qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0];
        for pair in qs.windows(2) {
            assert!(
                snap.quantile_us(pair[0]) <= snap.quantile_us(pair[1]),
                "round {round}: quantile not monotone at {pair:?}"
            );
        }

        // ... and every quantile sits within one √2 bucket of the samples.
        let bounds = bucket_bounds_us();
        let lo_bucket = bucket_index(min_us);
        let lo = if lo_bucket == 0 {
            0.0
        } else {
            bounds[lo_bucket - 1]
        };
        let hi = bounds[bucket_index(max_us).min(NUM_BOUNDS - 1)];
        for q in qs {
            let v = snap.quantile_us(q);
            assert!(
                v >= lo && (v <= hi || bucket_index(max_us) == NUM_BOUNDS),
                "round {round}: quantile {q} = {v} outside [{lo}, {hi}]"
            );
        }

        // merging a histogram with itself doubles every count
        let mut merged = snap.clone();
        merged.merge(&snap);
        assert_eq!(merged.count, snap.count * 2);
        assert_eq!(merged.quantile_us(0.5), snap.quantile_us(0.5));
    }
}

// ------------------------------------------------------------- prometheus

/// A random label value drawing from characters that exercise the escaper:
/// quotes, backslashes, newlines, unicode, and plain ASCII.
fn random_label_value(rng: &mut Rng) -> String {
    const ALPHABET: [&str; 12] = [
        "\"", "\\", "\n", "a", "Z", "0", " ", "µ", "→", "{", "}", "=",
    ];
    let len = rng.gen_range(0usize..24);
    (0..len)
        .map(|_| ALPHABET[rng.gen_range(0usize..ALPHABET.len())])
        .collect()
}

#[test]
fn prometheus_escaping_round_trips_through_the_parser() {
    let mut rng = Rng::seed_from_u64(7);
    for round in 0..500 {
        let value = random_label_value(&mut rng);
        let other = random_label_value(&mut rng);
        let mut buf = String::new();
        let mut last = String::new();
        prom_type_line(
            &mut buf,
            &mut last,
            "columba_prop_test",
            "gauge",
            "prop test",
        );
        prom_sample(
            &mut buf,
            "columba_prop_test",
            &[
                ("case".to_string(), value.clone()),
                ("extra".to_string(), other.clone()),
            ],
            f64::from(rng.gen_range(0i64..1_000_000) as i32),
        );
        let samples = parse_prometheus(&buf)
            .unwrap_or_else(|e| panic!("round {round}: emitted line rejected: {e}\n{buf}"));
        assert_eq!(samples.len(), 1);
        assert_eq!(samples[0].name, "columba_prop_test");
        assert_eq!(
            samples[0].labels,
            vec![("case".to_string(), value), ("extra".to_string(), other),],
            "round {round}: label value did not round-trip"
        );
    }
}

#[test]
fn sanitized_names_always_parse() {
    let mut rng = Rng::seed_from_u64(11);
    for _ in 0..500 {
        let raw = random_label_value(&mut rng);
        let name = prom_sanitize_name(&raw);
        let mut buf = String::new();
        let mut last = String::new();
        prom_type_line(&mut buf, &mut last, &name, "gauge", "sanitized name");
        prom_sample(&mut buf, &name, &[], 1.0);
        let samples = parse_prometheus(&buf).unwrap_or_else(|e| panic!("{raw:?} -> {name:?}: {e}"));
        assert_eq!(samples[0].name, name);
    }
}

// ----------------------------------------------------------- chrome trace

const SPAN_NAMES: [&str; 6] = [
    "alpha",
    "beta.gamma",
    "needs \"escaping\"",
    "back\\slash",
    "newline\nname",
    "µ-span",
];

fn open_random_spans(rng: &mut Rng, depth: usize, opened: &mut usize) {
    for _ in 0..rng.gen_range(1usize..4) {
        let mut span = columba_obs::span(SPAN_NAMES[rng.gen_range(0usize..SPAN_NAMES.len())]);
        span.attr("depth", depth as u64);
        if rng.gen_bool(0.3) {
            span.attr("note", "weird \"value\"\\with\nescapes");
        }
        *opened += 1;
        if depth < 3 && rng.gen_bool(0.5) {
            open_random_spans(rng, depth + 1, opened);
        }
    }
}

#[test]
fn chrome_trace_of_random_span_trees_is_valid_json() {
    let _lock = SPAN_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    columba_obs::set_enabled(true);
    let mut rng = Rng::seed_from_u64(1234);
    for round in 0..50 {
        let recorder = SpanRecorder::new(4096);
        let mut opened = 0usize;
        {
            let _guard = recorder.install();
            open_random_spans(&mut rng, 0, &mut opened);
        }
        let events = recorder.finished();
        assert_eq!(events.len(), opened, "round {round}: lost spans");
        let trace = columba_obs::chrome_trace(&events);
        let n = validate_chrome_trace(&trace)
            .unwrap_or_else(|e| panic!("round {round}: invalid trace: {e}"));
        assert_eq!(n, opened, "round {round}: event count mismatch");

        // names survive JSON escaping intact
        let doc = parse_json(&trace).expect("parses");
        let names: Vec<&str> = doc
            .get("traceEvents")
            .and_then(Json::as_arr)
            .expect("traceEvents")
            .iter()
            .map(|e| e.get("name").and_then(Json::as_str).expect("name"))
            .collect();
        for name in &names {
            assert!(SPAN_NAMES.contains(name), "unexpected name {name:?}");
        }
    }
}

#[test]
fn spans_nest_across_a_worker_thread_boundary() {
    let _lock = SPAN_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    columba_obs::set_enabled(true);
    let mut rng = Rng::seed_from_u64(99);
    for _ in 0..20 {
        let recorder = SpanRecorder::new(1024);
        let workers = rng.gen_range(1usize..5);
        {
            let _guard = recorder.install();
            let root = columba_obs::span("pool.root");
            let ctx = SpanContext::current().expect("root span is current");
            let handles: Vec<_> = (0..workers)
                .map(|i| {
                    let ctx = ctx.clone();
                    thread::spawn(move || {
                        let _attach = ctx.attach();
                        let mut span = columba_obs::span("pool.task");
                        span.attr("worker", i);
                    })
                })
                .collect();
            for h in handles {
                h.join().expect("worker thread");
            }
            drop(root);
        }
        let events = recorder.finished();
        let root_id = events
            .iter()
            .find(|e| e.name == "pool.root")
            .expect("root recorded")
            .id;
        let tasks: Vec<_> = events.iter().filter(|e| e.name == "pool.task").collect();
        assert_eq!(tasks.len(), workers);
        for task in tasks {
            assert_eq!(
                task.parent,
                Some(root_id),
                "cross-thread span lost its parent"
            );
            assert_ne!(task.tid, 0, "worker spans carry a thread id");
        }
    }
}
