//! Seeded property tests for the SLO engine against a shadow model.
//!
//! The shadow model keeps the *entire* event log and recomputes every
//! window sum from scratch at each evaluation, using the same 10-second
//! bucketization as the engine. The engine's incremental ring must agree
//! exactly — same burns, same alert state, same cumulative totals —
//! under randomized good/bad streams with bursts, gaps, and long idle
//! stretches. All randomness comes from `columba-prng` with fixed seeds.

use std::time::Duration;

use columba_obs::slo::{BUCKET, WINDOWS};
use columba_obs::{SloDef, SloEngine};
use columba_prng::Rng;

/// Replays the full event log per evaluation — O(n) per call, but
/// obviously correct: no ring, no pruning, no incremental state beyond
/// the alert latches (which follow the spec's two-window rule directly).
struct ShadowModel {
    def: SloDef,
    /// `(bucket_index, good)` for every event ever observed.
    events: Vec<(u64, bool)>,
    window_high: [bool; WINDOWS.len()],
    alerting: bool,
    fires: u64,
}

impl ShadowModel {
    fn new(def: SloDef) -> ShadowModel {
        ShadowModel {
            def,
            events: Vec::new(),
            window_high: [false; WINDOWS.len()],
            alerting: false,
            fires: 0,
        }
    }

    fn observe(&mut self, now: Duration, good: bool) {
        self.events.push((now.as_secs() / BUCKET.as_secs(), good));
    }

    fn window_counts(&self, now: Duration, window: Duration) -> (u64, u64) {
        let now_index = now.as_secs() / BUCKET.as_secs();
        let window_buckets = window.as_secs() / BUCKET.as_secs();
        let oldest = now_index.saturating_sub(window_buckets.saturating_sub(1));
        let mut good = 0;
        let mut bad = 0;
        for &(index, g) in &self.events {
            // Stale-merge rule: the engine folds an out-of-order event
            // into its newest bucket. The streams below are monotone, so
            // no clamping is needed here.
            if index >= oldest && index <= now_index {
                if g {
                    good += 1;
                } else {
                    bad += 1;
                }
            }
        }
        (good, bad)
    }

    /// `(per-window burns, alerting, budget_remaining)` at `now`.
    fn evaluate(&mut self, now: Duration) -> ([f64; WINDOWS.len()], bool, f64) {
        let budget = (1.0 - self.def.target).max(1e-9);
        let mut burns = [0.0; WINDOWS.len()];
        for (i, (_, wlen, threshold)) in WINDOWS.iter().enumerate() {
            let (good, bad) = self.window_counts(now, *wlen);
            let total = good + bad;
            if total > 0 {
                burns[i] = (bad as f64 / total as f64) / budget;
            }
            self.window_high[i] = burns[i] >= *threshold;
        }
        let page = self.window_high[0] && self.window_high[1];
        if page && !self.alerting {
            self.fires += 1;
        }
        self.alerting = page;
        let (good6, bad6) = self.window_counts(now, WINDOWS[WINDOWS.len() - 1].1);
        let total6 = good6 + bad6;
        let remaining = if total6 == 0 {
            1.0
        } else {
            (1.0 - bad6 as f64 / (total6 as f64 * budget)).clamp(0.0, 1.0)
        };
        (burns, self.alerting, remaining)
    }
}

/// One randomized stream: alternating good/bad phases with random phase
/// lengths, event rates, and occasional long gaps (window rollover).
fn run_stream(seed: u64, steps: usize) {
    let mut rng = Rng::seed_from_u64(seed);
    let target = [0.9, 0.99, 0.999][rng.gen_range(0..3usize)];
    let def = SloDef::availability("availability", target);
    let mut engine = SloEngine::new(vec![def.clone()]);
    let mut shadow = ShadowModel::new(def);

    let mut now = Duration::ZERO;
    let mut prev_total: u64 = 0;
    for step in 0..steps {
        // advance time: mostly seconds, sometimes minutes, rarely hours
        let advance = match rng.gen_range(0..20u64) {
            0 => Duration::from_secs(rng.gen_range(600..7 * 3600u64)),
            1..=4 => Duration::from_secs(rng.gen_range(60..600u64)),
            _ => Duration::from_secs(rng.gen_range(1..30u64)),
        };
        now += advance;
        // a burst of events in the current phase
        let bad_phase = rng.gen_bool(0.3);
        for _ in 0..rng.gen_range(0..40u64) {
            let good = if bad_phase {
                rng.gen_bool(0.2)
            } else {
                rng.gen_bool(0.995)
            };
            engine.observe(0, "r", now, good);
            shadow.observe(now, good);
        }

        let (snap, _) = engine.evaluate(now);
        let (burns, alerting, remaining) = shadow.evaluate(now);
        let r = &snap.reports[0];
        for (i, w) in r.windows.iter().enumerate() {
            assert_eq!(
                w.burn.to_bits(),
                burns[i].to_bits(),
                "seed {seed} step {step}: {} burn diverged (engine {} shadow {})",
                w.window,
                w.burn,
                burns[i]
            );
        }
        assert_eq!(
            r.alerting, alerting,
            "seed {seed} step {step}: alert state diverged"
        );
        assert_eq!(
            r.budget_remaining.to_bits(),
            remaining.to_bits(),
            "seed {seed} step {step}: budget diverged"
        );
        assert_eq!(
            engine.alerts_fired(),
            shadow.fires,
            "seed {seed} step {step}"
        );

        // cumulative totals are monotone and never roll over
        let total = r.good + r.bad;
        assert!(
            total >= prev_total,
            "seed {seed} step {step}: totals shrank"
        );
        prev_total = total;
    }
}

#[test]
fn engine_matches_shadow_model_on_random_streams() {
    for seed in [1u64, 2, 3, 5, 8, 13, 21, 34, 55, 89] {
        run_stream(seed, 300);
    }
}

#[test]
fn error_budget_moves_with_the_event_not_against_it() {
    // Within a window (no rollover between the two evaluations), a bad
    // event can only lower budget_remaining and a good event can only
    // raise it — the budget never moves against the event that arrived.
    let mut rng = Rng::seed_from_u64(0x51_0b);
    let mut engine = SloEngine::new(vec![SloDef::availability("availability", 0.9)]);
    let mut now = Duration::ZERO;
    for _ in 0..300 {
        now += Duration::from_secs(rng.gen_range(1..5u64));
        let (before, _) = engine.evaluate(now);
        let prev = before.reports.first().map_or(1.0, |r| r.budget_remaining);
        let good = rng.gen_bool(0.7);
        engine.observe(0, "r", now, good);
        let (after, _) = engine.evaluate(now);
        let remaining = after.reports[0].budget_remaining;
        if good {
            assert!(
                remaining >= prev - 1e-12,
                "good event lowered the budget: {prev} -> {remaining} at {now:?}"
            );
        } else {
            assert!(
                remaining <= prev + 1e-12,
                "bad event raised the budget: {prev} -> {remaining} at {now:?}"
            );
        }
    }
}

#[test]
fn alerts_never_flap_across_probe_heal_cycles() {
    // Mimic a breaker probe/heal cycle: short bad bursts (probes hitting
    // a broken backend) separated by good traffic. The two-window rule
    // must not fire/clear/fire on every burst — transitions are bounded
    // by the number of genuine state changes, not the number of bursts.
    let mut engine = SloEngine::new(vec![SloDef::availability("availability", 0.99)]);
    let mut fires = 0u64;
    let mut clears = 0u64;
    let mut now = Duration::ZERO;
    // Phase 1: hard outage for 20 minutes -> exactly one fire.
    for _ in 0..120 {
        now += Duration::from_secs(10);
        for _ in 0..10 {
            engine.observe(0, "r", now, false);
        }
        let (_, trs) = engine.evaluate(now);
        fires += trs.iter().filter(|t| t.what == "alert_fire").count() as u64;
        clears += trs.iter().filter(|t| t.what == "alert_clear").count() as u64;
    }
    assert_eq!((fires, clears), (1, 0), "outage fires exactly once");
    // Phase 2: recovery with periodic probe failures (1 bad per 30s of
    // otherwise-good traffic) for two hours -> exactly one clear, and no
    // re-fire triggered by any individual probe failure.
    for i in 0..720u64 {
        now += Duration::from_secs(10);
        for _ in 0..20 {
            engine.observe(0, "r", now, true);
        }
        if i % 3 == 0 {
            engine.observe(0, "r", now, false);
        }
        let (_, trs) = engine.evaluate(now);
        fires += trs.iter().filter(|t| t.what == "alert_fire").count() as u64;
        clears += trs.iter().filter(|t| t.what == "alert_clear").count() as u64;
    }
    assert_eq!(
        (fires, clears),
        (1, 1),
        "probe/heal cycles must not flap the alert"
    );
    assert_eq!(engine.alerts_fired(), 1);
}

#[test]
fn rollover_returns_burn_to_zero_after_quiet_gap() {
    let mut engine = SloEngine::new(vec![SloDef::availability("availability", 0.999)]);
    let mut now = Duration::from_secs(1);
    for _ in 0..100 {
        engine.observe(0, "r", now, false);
    }
    let (snap, _) = engine.evaluate(now);
    assert!(snap.reports[0].windows.iter().all(|w| w.burn > 0.0));
    // jump past the 6h horizon with no traffic at all
    now += WINDOWS[WINDOWS.len() - 1].1 + Duration::from_secs(60);
    let (snap, _) = engine.evaluate(now);
    let r = &snap.reports[0];
    assert!(
        r.windows.iter().all(|w| w.burn == 0.0),
        "old badness leaked past the horizon: {:?}",
        r.windows
    );
    assert!((r.budget_remaining - 1.0).abs() < 1e-12);
    assert_eq!(r.bad, 100, "cumulative counters survive rollover");
}
