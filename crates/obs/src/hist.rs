//! Log-bucketed latency histograms.
//!
//! Buckets grow by a factor of √2 (two buckets per octave) from 1 µs up to
//! ~134 s (2²⁷ µs), which comfortably covers the 1 µs – 100 s range the
//! synthesis stack produces: cache hits are tens of microseconds, full MILP
//! solves tens of seconds. 55 finite bucket bounds + one overflow bucket
//! keep a histogram at ~450 bytes while bounding the relative quantile
//! error at √2.
//!
//! Recording is lock-free (one relaxed atomic increment after a binary
//! search over the static bound table). Snapshots are plain data and merge
//! by element-wise addition, so per-worker histograms can be combined into
//! a service-wide view.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Duration;

/// Number of finite bucket upper bounds: √2⁰ µs … √2⁵⁴ µs (≈134 s).
pub const NUM_BOUNDS: usize = 55;

/// Total buckets: the finite ones plus one overflow bucket.
pub const NUM_BUCKETS: usize = NUM_BOUNDS + 1;

/// The finite bucket upper bounds in microseconds: `bound[i] = 2^(i/2)`.
/// Bucket `i` counts durations `d` with `bound[i-1] < d <= bound[i]`
/// (bucket 0 counts everything at or below 1 µs).
#[must_use]
pub fn bucket_bounds_us() -> &'static [f64; NUM_BOUNDS] {
    static BOUNDS: OnceLock<[f64; NUM_BOUNDS]> = OnceLock::new();
    BOUNDS.get_or_init(|| std::array::from_fn(|i| 2f64.powf(i as f64 / 2.0)))
}

/// Index of the bucket a duration of `us` microseconds falls into.
#[must_use]
pub fn bucket_index(us: f64) -> usize {
    // partition_point: first bound with us <= bound, i.e. count of bounds < us.
    bucket_bounds_us().partition_point(|&b| b < us)
}

/// A concurrent log-bucketed histogram. `record` is wait-free; `snapshot`
/// is a consistent-enough read for metrics (relaxed loads).
pub struct Histogram {
    counts: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
        }
    }

    /// Record one duration.
    pub fn record(&self, d: Duration) {
        let idx = bucket_index(d.as_secs_f64() * 1e6);
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let ns = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Record one duration given in microseconds.
    pub fn record_us(&self, us: f64) {
        let idx = bucket_index(us.max(0.0));
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let ns = (us.max(0.0) * 1e3).round() as u64;
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// A plain-data copy of the current state.
    #[must_use]
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            counts: std::array::from_fn(|i| self.counts[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum_ns: self.sum_ns.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a [`Histogram`], mergeable and queryable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Per-bucket counts (`NUM_BUCKETS` entries; last is overflow).
    pub counts: [u64; NUM_BUCKETS],
    /// Total recorded observations.
    pub count: u64,
    /// Sum of all recorded durations in nanoseconds (saturating).
    pub sum_ns: u64,
}

impl Default for HistSnapshot {
    fn default() -> Self {
        HistSnapshot::empty()
    }
}

impl HistSnapshot {
    /// A snapshot with no observations.
    #[must_use]
    pub fn empty() -> Self {
        HistSnapshot {
            counts: [0; NUM_BUCKETS],
            count: 0,
            sum_ns: 0,
        }
    }

    /// Element-wise accumulate `other` into `self`.
    pub fn merge(&mut self, other: &HistSnapshot) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a = a.saturating_add(*b);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum_ns = self.sum_ns.saturating_add(other.sum_ns);
    }

    /// Mean observation in microseconds (0 when empty).
    #[must_use]
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / 1e3 / self.count as f64
        }
    }

    /// The `q`-quantile (`0 <= q <= 1`) as the upper bound of the bucket
    /// where the cumulative count first reaches `ceil(q * count)`, in
    /// microseconds. Overflow observations report the last finite bound
    /// scaled by √2. Returns 0 for an empty snapshot.
    #[must_use]
    pub fn quantile_us(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let bounds = bucket_bounds_us();
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen = seen.saturating_add(c);
            if seen >= rank {
                return if i < NUM_BOUNDS {
                    bounds[i]
                } else {
                    bounds[NUM_BOUNDS - 1] * std::f64::consts::SQRT_2
                };
            }
        }
        bounds[NUM_BOUNDS - 1] * std::f64::consts::SQRT_2
    }

    /// The `q`-quantile in seconds.
    #[must_use]
    pub fn quantile_secs(&self, q: f64) -> f64 {
        self.quantile_us(q) / 1e6
    }

    /// Convenience: (p50, p90, p99) in microseconds.
    #[must_use]
    pub fn percentiles_us(&self) -> (f64, f64, f64) {
        (
            self.quantile_us(0.50),
            self.quantile_us(0.90),
            self.quantile_us(0.99),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_are_strictly_increasing_and_span_range() {
        let b = bucket_bounds_us();
        assert!((b[0] - 1.0).abs() < 1e-12, "first bound is 1 µs");
        for w in b.windows(2) {
            assert!(w[1] > w[0]);
        }
        assert!(b[NUM_BOUNDS - 1] >= 100.0 * 1e6, "covers 100 s");
    }

    #[test]
    fn two_buckets_per_octave() {
        let b = bucket_bounds_us();
        for i in 0..NUM_BOUNDS - 2 {
            let ratio = b[i + 2] / b[i];
            assert!((ratio - 2.0).abs() < 1e-9, "octave at {i}: {ratio}");
        }
    }

    #[test]
    fn record_lands_in_the_right_bucket() {
        let h = Histogram::new();
        h.record(Duration::from_micros(1)); // at the first bound
        h.record(Duration::from_micros(3)); // 2^(3/2)≈2.83 < 3 <= 4
        h.record(Duration::from_secs(1000)); // overflow
        let s = h.snapshot();
        assert_eq!(s.counts[0], 1);
        assert_eq!(s.counts[4], 1, "3 µs in (2.83, 4]");
        assert_eq!(s.counts[NUM_BUCKETS - 1], 1);
        assert_eq!(s.count, 3);
    }

    #[test]
    fn quantiles_and_merge() {
        let h = Histogram::new();
        for _ in 0..90 {
            h.record(Duration::from_micros(10));
        }
        for _ in 0..10 {
            h.record(Duration::from_millis(10));
        }
        let s = h.snapshot();
        let (p50, p90, p99) = s.percentiles_us();
        assert!(p50 <= p90 && p90 <= p99);
        assert!((10.0..20.0).contains(&p50));
        assert!((10_000.0..20_000.0).contains(&p99));

        let mut merged = HistSnapshot::empty();
        merged.merge(&s);
        merged.merge(&s);
        assert_eq!(merged.count, 2 * s.count);
        assert_eq!(merged.quantile_us(0.5), s.quantile_us(0.5));
    }
}
