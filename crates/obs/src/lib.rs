//! # columba-obs
//!
//! Std-only, zero-dependency observability substrate for the Columba S
//! stack: hierarchical spans, log-bucketed latency histograms, a small
//! counter/gauge registry, and two exporters (Prometheus text exposition
//! and Chrome trace-event JSON).
//!
//! Design constraints, in order:
//!
//! 1. **Disabled means free.** Recording is gated on one process-global
//!    atomic; a [`span`] call with recording off is a single relaxed load.
//!    `columba-milp` calls into this from its innermost loops, so the
//!    default state must not perturb solver benchmarks (the CI overhead
//!    guard holds this to <2% of a chip4ip solve).
//! 2. **Bounded memory.** Every recorder is a fixed-capacity ring with an
//!    eviction counter; a runaway solve can never OOM the service through
//!    its own telemetry.
//! 3. **No dependencies.** `columba-milp` depends on nothing else and this
//!    crate must not change that; everything here is `std`.
//!
//! See `DESIGN.md` ("Observability") for the bucketing scheme and the
//! span-recorder architecture.

#![cfg_attr(not(test), deny(clippy::unwrap_used))]
#![deny(missing_docs)]

pub mod alloc;
pub mod export;
pub mod hist;
pub mod parse;
pub mod registry;
pub mod slo;
pub mod span;

pub use alloc::{AllocStats, SubsystemAlloc};
pub use export::chrome_trace;
pub use hist::{bucket_bounds_us, bucket_index, HistSnapshot, Histogram};
pub use parse::{
    parse_json, parse_prometheus, validate_chrome_trace, Json, PromExemplar, PromSample,
};
pub use registry::{Gauge, Registry};
pub use slo::{SloDef, SloEngine, SloKind, SloReport, SloSnapshot, SloTransition};
pub use span::{
    enabled, instant, set_enabled, span, AttrValue, EventKind, RecorderGuard, SpanContext,
    SpanEvent, SpanGuard, SpanRecorder,
};
