//! Exporters: Prometheus text exposition and Chrome trace-event JSON.
//!
//! Both are string renderers over plain-data snapshots — no I/O here.
//! The Chrome output loads in `chrome://tracing` and Perfetto
//! (<https://ui.perfetto.dev>): spans become `ph:"X"` complete events,
//! instants become `ph:"i"`, and parent links ride along in `args`.

use crate::hist::{bucket_bounds_us, HistSnapshot, NUM_BOUNDS};
use crate::span::{AttrValue, EventKind, SpanEvent};

// ---------------------------------------------------------------- prometheus

/// Replace every character outside `[a-zA-Z0-9_:]` with `_`; prefix a
/// digit-leading name with `_`. Prometheus metric-name rules.
#[must_use]
pub fn prom_sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphanumeric() || c == '_' || c == ':';
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
        }
        out.push(if ok { c } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Escape a label value per the exposition format: backslash, quote, newline.
#[must_use]
pub fn prom_escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Append `# HELP name help` and `# TYPE name kind` once per metric
/// family (tracked via `last_type_line` so consecutive samples of one
/// family emit the pair once). Exposition conformance requires both
/// lines — [`crate::parse_prometheus`] rejects families missing either.
pub fn prom_type_line(
    buf: &mut String,
    last_type_line: &mut String,
    name: &str,
    kind: &str,
    help: &str,
) {
    let line = format!("# TYPE {name} {kind}");
    if *last_type_line != line {
        buf.push_str("# HELP ");
        buf.push_str(name);
        buf.push(' ');
        // HELP text escaping: backslash and newline only (no quotes).
        for c in help.chars() {
            match c {
                '\\' => buf.push_str("\\\\"),
                '\n' => buf.push_str("\\n"),
                _ => buf.push(c),
            }
        }
        buf.push('\n');
        buf.push_str(&line);
        buf.push('\n');
        last_type_line.clone_from(&line);
    }
}

/// Append one `name{labels} value` sample line. `name` must already be
/// sanitized; label values are escaped here.
pub fn prom_sample(buf: &mut String, name: &str, labels: &[(String, String)], value: f64) {
    buf.push_str(name);
    push_labels(buf, labels, None);
    push_value(buf, value);
}

fn push_labels(buf: &mut String, labels: &[(String, String)], extra: Option<(&str, &str)>) {
    if labels.is_empty() && extra.is_none() {
        return;
    }
    buf.push('{');
    let mut first = true;
    for (k, v) in labels {
        if !first {
            buf.push(',');
        }
        first = false;
        buf.push_str(&prom_sanitize_name(k));
        buf.push_str("=\"");
        buf.push_str(&prom_escape_label(v));
        buf.push('"');
    }
    if let Some((k, v)) = extra {
        if !first {
            buf.push(',');
        }
        buf.push_str(k);
        buf.push_str("=\"");
        buf.push_str(&prom_escape_label(v));
        buf.push('"');
    }
    buf.push('}');
}

fn push_value_bare(buf: &mut String, value: f64) {
    if value == value.trunc() && value.abs() < 1e15 {
        let _ = std::fmt::Write::write_fmt(buf, format_args!("{value:.0}"));
    } else {
        let _ = std::fmt::Write::write_fmt(buf, format_args!("{value}"));
    }
}

fn push_value(buf: &mut String, value: f64) {
    buf.push(' ');
    push_value_bare(buf, value);
    buf.push('\n');
}

/// One histogram exemplar: `(bucket_index, job_id, value_secs)` — the
/// last observation that landed in that bucket, tagged with the job that
/// produced it so a bad percentile links back to a retained trace.
pub type HistExemplar = (usize, u64, f64);

/// Render a histogram snapshot in Prometheus histogram convention
/// (`# HELP`/`# TYPE name histogram`, cumulative `_bucket{le="seconds"}`
/// lines, `_sum`, `_count`) plus `_p50` / `_p90` / `_p99` summary
/// gauges. `name` must be sanitized.
pub fn prom_histogram(
    buf: &mut String,
    name: &str,
    help: &str,
    labels: &[(String, String)],
    s: &HistSnapshot,
) {
    prom_histogram_ex(buf, name, help, labels, s, &[]);
}

/// [`prom_histogram`] with OpenMetrics-style exemplars: each
/// `(bucket, job, value)` entry appends `# {job="<id>"} <value>` to that
/// bucket's sample line, linking the bucket to a retained job trace.
pub fn prom_histogram_ex(
    buf: &mut String,
    name: &str,
    help: &str,
    labels: &[(String, String)],
    s: &HistSnapshot,
    exemplars: &[HistExemplar],
) {
    let bounds = bucket_bounds_us();
    let mut last = String::new();
    prom_type_line(buf, &mut last, name, "histogram", help);
    let mut cumulative = 0u64;
    let mut le = String::new();
    for (i, &c) in s.counts.iter().enumerate() {
        cumulative = cumulative.saturating_add(c);
        le.clear();
        if i < NUM_BOUNDS {
            let _ = std::fmt::Write::write_fmt(&mut le, format_args!("{:.9}", bounds[i] / 1e6));
        } else {
            le.push_str("+Inf");
        }
        buf.push_str(name);
        buf.push_str("_bucket");
        push_labels(buf, labels, Some(("le", &le)));
        buf.push(' ');
        push_value_bare(buf, cumulative as f64);
        if let Some((_, job, value)) = exemplars.iter().find(|(b, _, _)| *b == i) {
            let _ = std::fmt::Write::write_fmt(buf, format_args!(" # {{job=\"{job}\"}} "));
            push_value_bare(buf, *value);
        }
        buf.push('\n');
    }
    buf.push_str(name);
    buf.push_str("_sum");
    push_labels(buf, labels, None);
    push_value(buf, s.sum_ns as f64 / 1e9);
    buf.push_str(name);
    buf.push_str("_count");
    push_labels(buf, labels, None);
    push_value(buf, s.count as f64);
    for (suffix, q, qname) in [
        ("_p50", 0.50, "50th"),
        ("_p90", 0.90, "90th"),
        ("_p99", 0.99, "99th"),
    ] {
        let gauge_name = format!("{name}{suffix}");
        prom_type_line(
            buf,
            &mut last,
            &gauge_name,
            "gauge",
            &format!("{qname} percentile of {name} in seconds"),
        );
        buf.push_str(&gauge_name);
        push_labels(buf, labels, None);
        push_value(buf, s.quantile_secs(q));
    }
}

// -------------------------------------------------------------- chrome trace

/// Append a JSON string literal (with quotes) escaping `"`, `\` and
/// control characters.
pub fn json_string_into(buf: &mut String, s: &str) {
    buf.push('"');
    for c in s.chars() {
        match c {
            '"' => buf.push_str("\\\""),
            '\\' => buf.push_str("\\\\"),
            '\n' => buf.push_str("\\n"),
            '\r' => buf.push_str("\\r"),
            '\t' => buf.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = std::fmt::Write::write_fmt(buf, format_args!("\\u{:04x}", c as u32));
            }
            c => buf.push(c),
        }
    }
    buf.push('"');
}

fn json_attr_value_into(buf: &mut String, v: &AttrValue) {
    match v {
        AttrValue::Int(n) => {
            let _ = std::fmt::Write::write_fmt(buf, format_args!("{n}"));
        }
        AttrValue::Uint(n) => {
            let _ = std::fmt::Write::write_fmt(buf, format_args!("{n}"));
        }
        AttrValue::Float(n) if n.is_finite() => {
            let _ = std::fmt::Write::write_fmt(buf, format_args!("{n}"));
        }
        AttrValue::Float(n) => {
            json_string_into(buf, &n.to_string());
        }
        AttrValue::Str(s) => json_string_into(buf, s),
    }
}

/// Render finished span events as a Chrome trace-event JSON document:
/// `{"traceEvents":[...]}`, loadable in `chrome://tracing` and Perfetto.
#[must_use]
pub fn chrome_trace(events: &[SpanEvent]) -> String {
    let mut buf = String::with_capacity(64 + events.len() * 128);
    buf.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            buf.push(',');
        }
        buf.push_str("{\"name\":");
        json_string_into(&mut buf, e.name);
        buf.push_str(",\"cat\":\"columba\",\"ph\":");
        match e.kind {
            EventKind::Span => {
                let _ = std::fmt::Write::write_fmt(
                    &mut buf,
                    format_args!("\"X\",\"ts\":{},\"dur\":{}", e.start_us, e.dur_us),
                );
            }
            EventKind::Instant => {
                let _ = std::fmt::Write::write_fmt(
                    &mut buf,
                    format_args!("\"i\",\"s\":\"t\",\"ts\":{}", e.start_us),
                );
            }
        }
        let _ = std::fmt::Write::write_fmt(
            &mut buf,
            format_args!(
                ",\"pid\":1,\"tid\":{},\"args\":{{\"span_id\":{}",
                e.tid, e.id
            ),
        );
        if let Some(parent) = e.parent {
            let _ = std::fmt::Write::write_fmt(&mut buf, format_args!(",\"parent\":{parent}"));
        }
        for (k, v) in &e.attrs {
            buf.push(',');
            json_string_into(&mut buf, k);
            buf.push(':');
            json_attr_value_into(&mut buf, v);
        }
        buf.push_str("}}");
    }
    buf.push_str("]}");
    buf
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitize_and_escape() {
        assert_eq!(prom_sanitize_name("http.req-latency"), "http_req_latency");
        assert_eq!(prom_sanitize_name("9lives"), "_9lives");
        assert_eq!(prom_escape_label("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn histogram_render_is_cumulative() {
        let h = crate::hist::Histogram::new();
        h.record(std::time::Duration::from_micros(1));
        h.record(std::time::Duration::from_micros(100));
        let mut out = String::new();
        prom_histogram(&mut out, "x_seconds", "test latency", &[], &h.snapshot());
        assert!(out.contains("# HELP x_seconds test latency"));
        assert!(out.contains("# TYPE x_seconds histogram"));
        assert!(out.contains("x_seconds_bucket{le=\"0.000001000\"} 1"));
        assert!(out.contains("x_seconds_bucket{le=\"+Inf\"} 2"));
        assert!(out.contains("x_seconds_count 2"));
        assert!(out.contains("# TYPE x_seconds_p50 gauge"));
        assert!(out.contains("x_seconds_p99"));
    }

    #[test]
    fn histogram_exemplars_ride_their_bucket_line() {
        let h = crate::hist::Histogram::new();
        h.record(std::time::Duration::from_micros(100));
        let idx = crate::hist::bucket_index(100.0);
        let mut out = String::new();
        prom_histogram_ex(
            &mut out,
            "x_seconds",
            "test latency",
            &[],
            &h.snapshot(),
            &[(idx, 17, 0.0001)],
        );
        let line = out
            .lines()
            .find(|l| l.contains("# {job=\"17\"}"))
            .expect("exemplar line");
        assert!(line.starts_with("x_seconds_bucket{le="), "{line}");
        assert!(line.ends_with("# {job=\"17\"} 0.0001"), "{line}");
    }

    #[test]
    fn chrome_trace_shape() {
        let events = vec![SpanEvent {
            id: 1,
            parent: None,
            name: "solve",
            start_us: 10,
            dur_us: 500,
            tid: 1,
            attrs: vec![("nodes", AttrValue::Uint(42))],
            kind: EventKind::Span,
        }];
        let json = chrome_trace(&events);
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"nodes\":42"));
    }
}
