//! Allocator-level memory accounting.
//!
//! [`TrackingAlloc`] wraps the system allocator and counts every
//! allocation with relaxed atomics: live bytes and live allocation count
//! globally (with a high-water mark), cumulative totals, a per-thread
//! cumulative byte counter (the basis for per-span `alloc_bytes`
//! attribution), and cumulative bytes/allocations attributed to a small
//! fixed set of *subsystem* labels. The innermost open span decides the
//! subsystem: entering a span maps its static name prefix
//! (`simplex.phase1` → `milp`, `laygen.solve` → `layout`, ...) onto one
//! of [`SUBSYSTEMS`] and parks the index in a `Cell`-based thread-local
//! that the allocator reads without ever touching the span stack's
//! `RefCell` — the allocator must never re-enter borrow-tracked state,
//! because any allocation *inside* that state would deadlock or panic.
//!
//! The whole module sits behind the default-on `alloc-track` cargo
//! feature. With the feature off every function here compiles to a
//! constant and no `#[global_allocator]` is registered, so the wrapper
//! costs literally nothing — the same discipline as the disabled span
//! path. With the feature on, the per-allocation cost is a handful of
//! relaxed atomic adds plus one `Cell`-only thread-local access; the
//! `obs_overhead` CI guard bounds that cost at 3% of a chip4ip solve by
//! the same deterministic-budget method used for spans (measured
//! per-operation bookkeeping cost × observed allocation count).

/// Subsystem labels allocations are attributed to. Index 0 is the
/// catch-all for allocations outside any recognised span.
pub const SUBSYSTEMS: &[&str] = &["other", "milp", "layout", "schedule", "service"];

/// Maps a span name onto a [`SUBSYSTEMS`] index by its first dotted
/// segment. Unknown names attribute to `other` (index 0).
#[must_use]
pub fn subsystem_of(span_name: &str) -> u8 {
    let head = span_name.split('.').next().unwrap_or("");
    match head {
        "simplex" | "bnb" | "milp" | "presolve" => 1,
        "laygen" | "layval" | "rung" | "layout" => 2,
        "schedule" => 3,
        "http" | "job" | "service" => 4,
        _ => 0,
    }
}

#[cfg(feature = "alloc-track")]
mod imp {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::cell::Cell;
    use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

    use super::SUBSYSTEMS;

    static LIVE_BYTES: AtomicU64 = AtomicU64::new(0);
    static PEAK_LIVE_BYTES: AtomicU64 = AtomicU64::new(0);
    static LIVE_ALLOCS: AtomicU64 = AtomicU64::new(0);

    // One (bytes, allocs) pair per SUBSYSTEMS entry. Cumulative, not
    // live: a subsystem frequently frees memory another one allocated
    // (results handed across span boundaries), so live-per-subsystem
    // would drift negative; cumulative counters stay meaningful. The
    // process-wide totals are the sums of these — keeping separate
    // TOTAL_* atomics would add two more hot-path RMWs for data the
    // snapshot can derive.
    static SUBSYS_BYTES: [AtomicU64; 5] = [const { AtomicU64::new(0) }; 5];
    static SUBSYS_ALLOCS: [AtomicU64; 5] = [const { AtomicU64::new(0) }; 5];
    const _: () = assert!(SUBSYSTEMS.len() == 5);

    // Const-initialized, Drop-free thread-local: safe to touch from
    // inside the allocator (plain `#[thread_local]` cells, no lazy init,
    // no destructor re-entry).
    struct ThreadCells {
        subsystem: Cell<u8>,
        allocated: Cell<u64>,
        live: Cell<u64>,
        peak: Cell<u64>,
    }

    thread_local! {
        static CELLS: ThreadCells = const {
            ThreadCells {
                subsystem: Cell::new(0),
                allocated: Cell::new(0),
                live: Cell::new(0),
                peak: Cell::new(0),
            }
        };
    }

    #[inline]
    fn record_alloc(size: u64) {
        let live = LIVE_BYTES.fetch_add(size, Relaxed).wrapping_add(size);
        PEAK_LIVE_BYTES.fetch_max(live, Relaxed);
        LIVE_ALLOCS.fetch_add(1, Relaxed);
        // During thread teardown the thread-local may already be gone;
        // such allocations fall out of the cumulative totals (sums of
        // the subsystem counters) but the live gauges above still see
        // them.
        let _ = CELLS.try_with(|c| {
            let idx = usize::from(c.subsystem.get()).min(SUBSYSTEMS.len() - 1);
            SUBSYS_BYTES[idx].fetch_add(size, Relaxed);
            SUBSYS_ALLOCS[idx].fetch_add(1, Relaxed);
            c.allocated.set(c.allocated.get().wrapping_add(size));
            let live = c.live.get().wrapping_add(size);
            c.live.set(live);
            if live > c.peak.get() {
                c.peak.set(live);
            }
        });
    }

    #[inline]
    fn record_dealloc(size: u64) {
        LIVE_BYTES.fetch_sub(size, Relaxed);
        LIVE_ALLOCS.fetch_sub(1, Relaxed);
        let _ = CELLS.try_with(|c| {
            // Freeing bytes another thread allocated saturates at zero
            // instead of wrapping the watermark.
            c.live.set(c.live.get().saturating_sub(size));
        });
    }

    /// The `#[global_allocator]` wrapper over [`System`].
    pub struct TrackingAlloc;

    // SAFETY: defers every allocation to `System` unchanged; the
    // bookkeeping never allocates (atomics + const-init Cell TLS only).
    unsafe impl GlobalAlloc for TrackingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            let p = System.alloc(layout);
            if !p.is_null() {
                record_alloc(layout.size() as u64);
            }
            p
        }

        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            let p = System.alloc_zeroed(layout);
            if !p.is_null() {
                record_alloc(layout.size() as u64);
            }
            p
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout);
            record_dealloc(layout.size() as u64);
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            let p = System.realloc(ptr, layout, new_size);
            if !p.is_null() {
                record_dealloc(layout.size() as u64);
                record_alloc(new_size as u64);
            }
            p
        }
    }

    #[global_allocator]
    static GLOBAL: TrackingAlloc = TrackingAlloc;

    pub fn stats() -> super::AllocStats {
        let subsystems: Vec<super::SubsystemAlloc> = SUBSYSTEMS
            .iter()
            .enumerate()
            .map(|(i, name)| super::SubsystemAlloc {
                name,
                bytes: SUBSYS_BYTES[i].load(Relaxed),
                allocs: SUBSYS_ALLOCS[i].load(Relaxed),
            })
            .collect();
        super::AllocStats {
            live_bytes: LIVE_BYTES.load(Relaxed),
            peak_live_bytes: PEAK_LIVE_BYTES.load(Relaxed),
            live_allocs: LIVE_ALLOCS.load(Relaxed),
            total_allocs: subsystems.iter().map(|s| s.allocs).sum(),
            total_alloc_bytes: subsystems.iter().map(|s| s.bytes).sum(),
            subsystems,
        }
    }

    pub fn set_subsystem(idx: u8) -> u8 {
        CELLS
            .try_with(|c| c.subsystem.replace(idx))
            .unwrap_or_default()
    }

    pub fn thread_allocated_bytes() -> u64 {
        CELLS.try_with(|c| c.allocated.get()).unwrap_or_default()
    }

    pub fn thread_mark() -> u64 {
        CELLS
            .try_with(|c| {
                let live = c.live.get();
                c.peak.set(live);
                live
            })
            .unwrap_or_default()
    }

    pub fn thread_peak_since(mark: u64) -> u64 {
        CELLS
            .try_with(|c| c.peak.get().saturating_sub(mark))
            .unwrap_or_default()
    }

    pub fn bookkeeping_probe(size: u64) {
        record_alloc(size);
        record_dealloc(size);
    }
}

#[cfg(not(feature = "alloc-track"))]
mod imp {
    //! Feature-off stubs: everything constant-folds to nothing and no
    //! global allocator is registered.

    pub fn stats() -> super::AllocStats {
        super::AllocStats::default()
    }

    pub fn set_subsystem(_idx: u8) -> u8 {
        0
    }

    pub fn thread_allocated_bytes() -> u64 {
        0
    }

    pub fn thread_mark() -> u64 {
        0
    }

    pub fn thread_peak_since(_mark: u64) -> u64 {
        0
    }

    pub fn bookkeeping_probe(_size: u64) {}
}

/// Cumulative allocation counters for one subsystem label.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SubsystemAlloc {
    /// The [`SUBSYSTEMS`] label.
    pub name: &'static str,
    /// Cumulative bytes allocated while this subsystem was innermost.
    pub bytes: u64,
    /// Cumulative allocation count for this subsystem.
    pub allocs: u64,
}

/// A point-in-time snapshot of the process-wide allocation counters.
/// All zeros when the `alloc-track` feature is off.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AllocStats {
    /// Bytes currently allocated and not yet freed.
    pub live_bytes: u64,
    /// High-water mark of `live_bytes` since process start.
    pub peak_live_bytes: u64,
    /// Allocations currently live.
    pub live_allocs: u64,
    /// Cumulative allocation count since process start.
    pub total_allocs: u64,
    /// Cumulative bytes allocated since process start.
    pub total_alloc_bytes: u64,
    /// Per-subsystem cumulative attribution, in [`SUBSYSTEMS`] order.
    pub subsystems: Vec<SubsystemAlloc>,
}

/// Whether allocator tracking is compiled in (`alloc-track` feature).
#[must_use]
pub const fn tracking_enabled() -> bool {
    cfg!(feature = "alloc-track")
}

/// Snapshot the global allocation counters. All zeros when tracking is
/// compiled out.
#[must_use]
pub fn stats() -> AllocStats {
    imp::stats()
}

/// Set the calling thread's subsystem attribution label (a
/// [`SUBSYSTEMS`] index); returns the previous label so span exit can
/// restore it. No-op returning 0 when tracking is compiled out.
pub fn set_subsystem(idx: u8) -> u8 {
    imp::set_subsystem(idx)
}

/// Cumulative bytes allocated on the calling thread. Monotone: the
/// difference across a region is "bytes allocated inside it", which is
/// what per-span `alloc_bytes` reports.
#[must_use]
pub fn thread_allocated_bytes() -> u64 {
    imp::thread_allocated_bytes()
}

/// Reset the calling thread's live-byte high-water mark to its current
/// level and return that level. Pair with [`thread_peak_since`] to get a
/// peak-RSS-equivalent for a region (e.g. one job) on this thread.
pub fn thread_mark() -> u64 {
    imp::thread_mark()
}

/// Peak live bytes on the calling thread above the level captured by
/// [`thread_mark`].
#[must_use]
pub fn thread_peak_since(mark: u64) -> u64 {
    imp::thread_peak_since(mark)
}

/// Run exactly the bookkeeping one allocation + deallocation pair costs,
/// without calling the allocator. The `obs_overhead` guard times this in
/// a loop to bound tracking overhead deterministically.
#[doc(hidden)]
pub fn bookkeeping_probe(size: u64) {
    imp::bookkeeping_probe(size);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subsystem_mapping_by_prefix() {
        assert_eq!(subsystem_of("simplex.phase1"), 1);
        assert_eq!(subsystem_of("bnb.search"), 1);
        assert_eq!(subsystem_of("laygen.solve"), 2);
        assert_eq!(subsystem_of("layval"), 2);
        assert_eq!(subsystem_of("schedule.list"), 3);
        assert_eq!(subsystem_of("http.request"), 4);
        assert_eq!(subsystem_of("job"), 4);
        assert_eq!(subsystem_of("mystery"), 0);
        assert_eq!(subsystem_of(""), 0);
    }

    #[cfg(feature = "alloc-track")]
    #[test]
    fn counters_observe_a_large_allocation() {
        let before = stats();
        let v = vec![0u8; 1 << 20];
        let during = stats();
        assert!(
            during.total_alloc_bytes >= before.total_alloc_bytes + (1 << 20),
            "a 1 MiB allocation must move the cumulative byte counter"
        );
        assert!(during.total_allocs > before.total_allocs);
        assert!(during.live_bytes >= 1 << 20);
        assert!(during.peak_live_bytes >= during.live_bytes);
        drop(v);
        let after = stats();
        assert!(
            after.live_bytes < during.live_bytes,
            "freeing must shrink live bytes"
        );
    }

    #[cfg(feature = "alloc-track")]
    #[test]
    fn thread_watermark_tracks_a_region() {
        let mark = thread_mark();
        let v = vec![0u8; 512 * 1024];
        let peak = thread_peak_since(mark);
        assert!(
            peak >= 512 * 1024,
            "peak above the mark must cover the region's allocation, got {peak}"
        );
        drop(v);
        // after the free the peak is sticky
        assert!(thread_peak_since(mark) >= 512 * 1024);
        // a fresh mark resets it
        let mark = thread_mark();
        assert!(thread_peak_since(mark) < 512 * 1024);
    }

    #[cfg(feature = "alloc-track")]
    #[test]
    fn subsystem_attribution_follows_set_subsystem() {
        let prev = set_subsystem(1);
        let before = stats();
        let v = vec![0u8; 256 * 1024];
        let after = stats();
        set_subsystem(prev);
        assert_eq!(after.subsystems[1].name, "milp");
        assert!(
            after.subsystems[1].bytes >= before.subsystems[1].bytes + 256 * 1024,
            "bytes allocated under the milp label must land on its counter"
        );
        drop(v);
    }

    #[cfg(feature = "alloc-track")]
    #[test]
    fn thread_allocated_bytes_is_monotone() {
        let a = thread_allocated_bytes();
        let v = vec![0u8; 64 * 1024];
        let b = thread_allocated_bytes();
        assert!(b >= a + 64 * 1024);
        drop(v);
        assert!(thread_allocated_bytes() >= b, "cumulative, never decreases");
    }

    #[cfg(not(feature = "alloc-track"))]
    #[test]
    fn stubs_report_zero_when_compiled_out() {
        let v = vec![0u8; 1 << 20];
        assert_eq!(stats(), AllocStats::default());
        assert_eq!(thread_allocated_bytes(), 0);
        assert_eq!(set_subsystem(3), 0);
        assert_eq!(thread_peak_since(thread_mark()), 0);
        assert!(!tracking_enabled());
        drop(v);
    }
}
