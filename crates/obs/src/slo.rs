//! Declarative SLOs evaluated over multi-window burn rates.
//!
//! An [`SloDef`] names an objective (availability, or latency under a
//! threshold) and a target good-fraction. The [`SloEngine`] tracks one
//! good/bad event stream per `(definition, label)` pair — labels keep
//! cardinality bounded because callers only pass route patterns and QoS
//! class names — in 10-second buckets covering the longest window, and
//! evaluates Google-SRE-style **burn rates** over 5m / 1h / 6h windows:
//!
//! ```text
//! burn(window) = bad_fraction(window) / (1 - target)
//! ```
//!
//! A burn of 1.0 consumes the error budget exactly at the sustainable
//! rate; 14.4 empties a 30-day budget in 2 days. An *alert* fires when
//! the 5m **and** 1h burns both sit at/above their thresholds (the fast
//! window proves it is happening now, the slow window proves it is not a
//! blip) and clears only when both drop back below — the symmetric
//! two-window rule is the anti-flap hysteresis: a single quiet bucket
//! cannot clear an alert the 1h window still confirms, and a single bad
//! bucket cannot re-fire one the 1h window no longer supports.
//!
//! The engine never reads a clock: every entry point takes `now` as a
//! [`Duration`] from an epoch the caller owns. The service feeds it from
//! its injected `Clock`, which is what makes the whole engine — burn
//! math, window rollover, alert transitions — deterministic under the
//! simulated clock and therefore testable against a shadow model and
//! checkable as a chaos invariant.

use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;
use std::time::Duration;

use crate::export::json_string_into;

/// Width of one accounting bucket. Windows are measured in whole
/// buckets, so burn rates change at most once per bucket.
pub const BUCKET: Duration = Duration::from_secs(10);

/// The evaluation windows and their burn-rate thresholds, shortest
/// first: `(name, window, threshold)`.
pub const WINDOWS: [(&str, Duration, f64); 3] = [
    ("5m", Duration::from_secs(300), 14.4),
    ("1h", Duration::from_secs(3600), 6.0),
    ("6h", Duration::from_secs(21600), 1.0),
];

/// What an SLO measures.
#[derive(Debug, Clone, PartialEq)]
pub enum SloKind {
    /// Requests that did not fail server-side are good.
    Availability,
    /// Events at or under the threshold are good.
    Latency {
        /// The latency bound defining a good event.
        threshold: Duration,
    },
}

/// One declarative objective.
#[derive(Debug, Clone, PartialEq)]
pub struct SloDef {
    /// Objective name, e.g. `"availability"` or `"solve_latency"`.
    pub name: String,
    /// Target good-fraction in `(0, 1)`, e.g. `0.999`.
    pub target: f64,
    /// What good means.
    pub kind: SloKind,
}

impl SloDef {
    /// An availability objective.
    #[must_use]
    pub fn availability(name: &str, target: f64) -> SloDef {
        SloDef {
            name: name.to_string(),
            target,
            kind: SloKind::Availability,
        }
    }

    /// A latency objective: events at or under `threshold` are good.
    #[must_use]
    pub fn latency(name: &str, target: f64, threshold: Duration) -> SloDef {
        SloDef {
            name: name.to_string(),
            target,
            kind: SloKind::Latency { threshold },
        }
    }

    /// The error-budget fraction `1 - target`, floored away from zero so
    /// a (misconfigured) target of 1.0 cannot divide by zero.
    #[must_use]
    pub fn budget_fraction(&self) -> f64 {
        (1.0 - self.target).max(1e-9)
    }
}

#[derive(Debug, Clone)]
struct Bucket {
    /// `now / BUCKET` at observation time.
    index: u64,
    good: u64,
    bad: u64,
}

#[derive(Debug, Clone, Default)]
struct Tracker {
    buckets: VecDeque<Bucket>,
    total_good: u64,
    total_bad: u64,
    window_high: [bool; WINDOWS.len()],
    alerting: bool,
}

/// How many whole buckets the longest window spans.
fn horizon_buckets() -> u64 {
    WINDOWS[WINDOWS.len() - 1].1.as_secs() / BUCKET.as_secs()
}

impl Tracker {
    fn observe(&mut self, now: Duration, good: bool) {
        let index = now.as_secs() / BUCKET.as_secs();
        match self.buckets.back_mut() {
            // merge into the newest bucket; a caller handing us a stale
            // `now` (never under a monotone clock) still lands somewhere
            Some(b) if b.index >= index => {
                if good {
                    b.good += 1;
                } else {
                    b.bad += 1;
                }
            }
            _ => self.buckets.push_back(Bucket {
                index,
                good: u64::from(good),
                bad: u64::from(!good),
            }),
        }
        if good {
            self.total_good += 1;
        } else {
            self.total_bad += 1;
        }
        self.prune(index);
    }

    fn prune(&mut self, newest_index: u64) {
        let horizon = horizon_buckets();
        while self
            .buckets
            .front()
            .is_some_and(|b| b.index + horizon < newest_index)
        {
            self.buckets.pop_front();
        }
    }

    /// `(good, bad)` inside the window ending at `now`.
    fn window_counts(&self, now: Duration, window: Duration) -> (u64, u64) {
        let now_index = now.as_secs() / BUCKET.as_secs();
        let window_buckets = window.as_secs() / BUCKET.as_secs();
        let oldest = now_index.saturating_sub(window_buckets.saturating_sub(1));
        let mut good = 0;
        let mut bad = 0;
        for b in &self.buckets {
            if b.index >= oldest && b.index <= now_index {
                good += b.good;
                bad += b.bad;
            }
        }
        (good, bad)
    }
}

/// Burn state of one window at evaluation time.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowBurn {
    /// Window name from [`WINDOWS`] (`"5m"`, `"1h"`, `"6h"`).
    pub window: String,
    /// The burn rate over this window (0 when the window saw no events).
    pub burn: f64,
    /// The alerting threshold for this window.
    pub threshold: f64,
    /// Whether `burn >= threshold`.
    pub high: bool,
}

/// The evaluated state of one `(definition, label)` tracker.
#[derive(Debug, Clone, PartialEq)]
pub struct SloReport {
    /// The definition's name.
    pub slo: String,
    /// The caller-supplied label (route pattern, QoS class, ...).
    pub label: String,
    /// The definition's target good-fraction.
    pub target: f64,
    /// Cumulative good events since the tracker was created.
    pub good: u64,
    /// Cumulative bad events since the tracker was created.
    pub bad: u64,
    /// Per-window burn rates, [`WINDOWS`] order.
    pub windows: Vec<WindowBurn>,
    /// Fraction of the error budget still unspent over the longest
    /// window, clamped to `[0, 1]`.
    pub budget_remaining: f64,
    /// Whether the two-window page alert is currently firing.
    pub alerting: bool,
}

/// All trackers at one evaluation instant.
#[derive(Debug, Clone, PartialEq)]
pub struct SloSnapshot {
    /// The `now` the snapshot was evaluated at.
    pub at: Duration,
    /// One report per `(definition, label)` tracker, definition order
    /// then label order.
    pub reports: Vec<SloReport>,
}

impl SloSnapshot {
    /// Render as a JSON document (the `GET /slo` body).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + self.reports.len() * 256);
        let _ = write!(out, "{{\"at_us\":{},\"slos\":[", self.at.as_micros());
        for (i, r) in self.reports.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"slo\":");
            json_string_into(&mut out, &r.slo);
            out.push_str(",\"label\":");
            json_string_into(&mut out, &r.label);
            let _ = write!(
                out,
                ",\"target\":{},\"good\":{},\"bad\":{},\"budget_remaining\":{:.6},\"alerting\":{}",
                r.target, r.good, r.bad, r.budget_remaining, r.alerting
            );
            out.push_str(",\"windows\":[");
            for (j, w) in r.windows.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"window\":\"{}\",\"burn\":{:.6},\"threshold\":{},\"high\":{}}}",
                    w.window, w.burn, w.threshold, w.high
                );
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }
}

/// What changed during an [`SloEngine::evaluate`] call — the service
/// turns these into `slo_burn` / `slo_alert` trace events.
#[derive(Debug, Clone, PartialEq)]
pub struct SloTransition {
    /// The definition's name.
    pub slo: String,
    /// The tracker label.
    pub label: String,
    /// `"burn_high"`, `"burn_ok"`, `"alert_fire"` or `"alert_clear"`.
    pub what: &'static str,
    /// The window the transition concerns (empty for alert transitions).
    pub window: String,
    /// The burn rate that caused the transition (the 5m burn for alert
    /// transitions).
    pub burn: f64,
}

/// The engine: a set of definitions plus one windowed tracker per
/// `(definition, label)` pair observed so far.
#[derive(Debug, Clone, Default)]
pub struct SloEngine {
    defs: Vec<SloDef>,
    trackers: BTreeMap<(usize, String), Tracker>,
    /// Cumulative count of `alert_fire` transitions, ever.
    alerts_fired: u64,
}

impl SloEngine {
    /// An engine over `defs`. Trackers appear lazily as labels are
    /// observed.
    #[must_use]
    pub fn new(defs: Vec<SloDef>) -> SloEngine {
        SloEngine {
            defs,
            trackers: BTreeMap::new(),
            alerts_fired: 0,
        }
    }

    /// The definitions this engine evaluates.
    #[must_use]
    pub fn defs(&self) -> &[SloDef] {
        &self.defs
    }

    /// Record one good/bad event for definition `def_index` under
    /// `label` at time `now`. Out-of-range indices are ignored.
    pub fn observe(&mut self, def_index: usize, label: &str, now: Duration, good: bool) {
        if def_index >= self.defs.len() {
            return;
        }
        self.trackers
            .entry((def_index, label.to_string()))
            .or_default()
            .observe(now, good);
    }

    /// Record a latency sample against a [`SloKind::Latency`]
    /// definition: good iff `latency <= threshold`. Ignored for
    /// availability definitions (use [`SloEngine::observe`]).
    pub fn observe_latency(
        &mut self,
        def_index: usize,
        label: &str,
        now: Duration,
        latency: Duration,
    ) {
        let Some(def) = self.defs.get(def_index) else {
            return;
        };
        let SloKind::Latency { threshold } = def.kind else {
            return;
        };
        self.observe(def_index, label, now, latency <= threshold);
    }

    /// Cumulative count of alert-fire transitions since engine creation.
    #[must_use]
    pub fn alerts_fired(&self) -> u64 {
        self.alerts_fired
    }

    /// Evaluate every tracker at `now`: recompute window burns, update
    /// the alert state machines, and return the snapshot plus the
    /// transitions that happened during this call.
    pub fn evaluate(&mut self, now: Duration) -> (SloSnapshot, Vec<SloTransition>) {
        let mut reports = Vec::with_capacity(self.trackers.len());
        let mut transitions = Vec::new();
        for ((def_index, label), tracker) in &mut self.trackers {
            let def = &self.defs[*def_index];
            tracker.prune(now.as_secs() / BUCKET.as_secs());
            let mut windows = Vec::with_capacity(WINDOWS.len());
            for (i, (wname, wlen, threshold)) in WINDOWS.iter().enumerate() {
                let (good, bad) = tracker.window_counts(now, *wlen);
                let total = good + bad;
                let burn = if total == 0 {
                    0.0
                } else {
                    #[allow(clippy::cast_precision_loss)]
                    let bad_fraction = bad as f64 / total as f64;
                    bad_fraction / def.budget_fraction()
                };
                let high = burn >= *threshold;
                if high != tracker.window_high[i] {
                    tracker.window_high[i] = high;
                    transitions.push(SloTransition {
                        slo: def.name.clone(),
                        label: label.clone(),
                        what: if high { "burn_high" } else { "burn_ok" },
                        window: (*wname).to_string(),
                        burn,
                    });
                }
                windows.push(WindowBurn {
                    window: (*wname).to_string(),
                    burn,
                    threshold: *threshold,
                    high,
                });
            }
            // Two-window page rule: 5m AND 1h at/above threshold.
            let page = windows[0].high && windows[1].high;
            if page != tracker.alerting {
                tracker.alerting = page;
                if page {
                    self.alerts_fired += 1;
                }
                transitions.push(SloTransition {
                    slo: def.name.clone(),
                    label: label.clone(),
                    what: if page { "alert_fire" } else { "alert_clear" },
                    window: String::new(),
                    burn: windows[0].burn,
                });
            }
            // Budget over the longest window.
            let (good6, bad6) = tracker.window_counts(now, WINDOWS[WINDOWS.len() - 1].1);
            let total6 = good6 + bad6;
            let budget_remaining = if total6 == 0 {
                1.0
            } else {
                #[allow(clippy::cast_precision_loss)]
                let allowed = total6 as f64 * def.budget_fraction();
                #[allow(clippy::cast_precision_loss)]
                let spent = bad6 as f64;
                (1.0 - spent / allowed).clamp(0.0, 1.0)
            };
            reports.push(SloReport {
                slo: def.name.clone(),
                label: label.clone(),
                target: def.target,
                good: tracker.total_good,
                bad: tracker.total_bad,
                windows,
                budget_remaining,
                alerting: tracker.alerting,
            });
        }
        (SloSnapshot { at: now, reports }, transitions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> SloEngine {
        SloEngine::new(vec![
            SloDef::availability("availability", 0.99),
            SloDef::latency("latency", 0.99, Duration::from_millis(100)),
        ])
    }

    #[test]
    fn clean_stream_never_burns_or_alerts() {
        let mut e = engine();
        for s in 0..600 {
            e.observe(0, "GET /x", Duration::from_secs(s), true);
        }
        let (snap, transitions) = e.evaluate(Duration::from_secs(600));
        assert!(transitions.is_empty());
        let r = &snap.reports[0];
        assert!(!r.alerting);
        assert!((r.budget_remaining - 1.0).abs() < 1e-12);
        assert!(r.windows.iter().all(|w| w.burn == 0.0));
        assert_eq!(e.alerts_fired(), 0);
    }

    #[test]
    fn sustained_failures_fire_then_heal_clears() {
        let mut e = engine();
        // all-bad for 10 minutes: every window burns at 1/budget = 100x
        for s in 0..600 {
            e.observe(0, "r", Duration::from_secs(s), false);
        }
        let (snap, transitions) = e.evaluate(Duration::from_secs(600));
        assert!(snap.reports[0].alerting);
        assert!(transitions.iter().any(|t| t.what == "alert_fire"));
        assert_eq!(e.alerts_fired(), 1);
        assert_eq!(snap.reports[0].budget_remaining, 0.0);
        // heal: all-good traffic for over an hour pushes both the 5m and
        // the 1h burn below threshold and the alert clears exactly once
        let mut cleared = 0;
        for s in 600..6000 {
            e.observe(0, "r", Duration::from_secs(s), true);
            let (_, trs) = e.evaluate(Duration::from_secs(s));
            cleared += trs.iter().filter(|t| t.what == "alert_clear").count();
            assert!(
                !trs.iter().any(|t| t.what == "alert_fire"),
                "healing must not re-fire at t={s}"
            );
        }
        assert_eq!(cleared, 1, "the alert clears exactly once while healing");
        assert_eq!(e.alerts_fired(), 1);
    }

    #[test]
    fn window_rollover_forgets_old_badness() {
        let mut e = engine();
        for s in 0..60 {
            e.observe(0, "r", Duration::from_secs(s), false);
        }
        // seven hours later the 6h window no longer sees the burst
        let later = Duration::from_secs(7 * 3600);
        e.observe(0, "r", later, true);
        let (snap, _) = e.evaluate(later);
        let r = &snap.reports[0];
        assert!(r.windows.iter().all(|w| w.burn == 0.0), "{:?}", r.windows);
        assert_eq!(r.bad, 60, "cumulative totals never roll over");
    }

    #[test]
    fn latency_kind_classifies_against_threshold() {
        let mut e = engine();
        let now = Duration::from_secs(1);
        e.observe_latency(1, "interactive", now, Duration::from_millis(50));
        e.observe_latency(1, "interactive", now, Duration::from_millis(500));
        let (snap, _) = e.evaluate(now);
        let r = snap
            .reports
            .iter()
            .find(|r| r.slo == "latency")
            .expect("tracker");
        assert_eq!((r.good, r.bad), (1, 1));
        // observe_latency against an availability def is ignored
        e.observe_latency(0, "x", now, Duration::from_millis(1));
        let (snap, _) = e.evaluate(now);
        assert!(!snap.reports.iter().any(|r| r.label == "x"));
    }

    #[test]
    fn snapshot_renders_parseable_json() {
        let mut e = engine();
        e.observe(0, "GET /jobs/{id}", Duration::from_secs(5), true);
        e.observe(0, "GET /jobs/{id}", Duration::from_secs(6), false);
        let (snap, _) = e.evaluate(Duration::from_secs(10));
        let json = snap.to_json();
        let doc = crate::parse_json(&json).expect("valid JSON");
        let slos = doc
            .get("slos")
            .and_then(crate::Json::as_arr)
            .expect("slos array");
        assert_eq!(slos.len(), 1);
        let r = &slos[0];
        assert_eq!(
            r.get("label").and_then(crate::Json::as_str),
            Some("GET /jobs/{id}")
        );
        let windows = r
            .get("windows")
            .and_then(crate::Json::as_arr)
            .expect("windows");
        assert_eq!(windows.len(), 3);
    }

    #[test]
    fn bucket_merge_handles_stale_now() {
        let mut t = Tracker::default();
        t.observe(Duration::from_secs(100), true);
        t.observe(Duration::from_secs(95), false); // stale: merges into newest
        assert_eq!(t.buckets.len(), 1);
        assert_eq!((t.total_good, t.total_bad), (1, 1));
    }
}
