//! Hierarchical spans with thread-local stacks and bounded ring recorders.
//!
//! A [`SpanRecorder`] owns a monotonic epoch and a bounded ring of finished
//! [`SpanEvent`]s. A thread *installs* a recorder (via [`SpanRecorder::install`]
//! or [`SpanContext::attach`]) and then every [`span`] opened on that thread is
//! timed against the recorder's epoch, linked to its parent via the
//! thread-local span stack, and pushed into the ring when the guard drops.
//!
//! The whole subsystem is gated on one process-global [`AtomicBool`]: when
//! recording is disabled (the default) a call to [`span`] performs exactly one
//! relaxed atomic load and returns an inert guard — no clock read, no
//! allocation, no thread-local access. That is the contract the solver hot
//! paths rely on.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

/// Process-global recording switch. Off by default: library users opt in.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turn span recording on or off for the whole process.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether span recording is currently enabled. One relaxed atomic load;
/// call sites may use this to skip attribute construction entirely.
#[inline]
#[must_use]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// An attribute value attached to a span or instant event.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// Signed integer attribute.
    Int(i64),
    /// Unsigned integer attribute.
    Uint(u64),
    /// Floating-point attribute.
    Float(f64),
    /// String attribute (owned; prefer the numeric variants on hot paths).
    Str(String),
}

impl From<i64> for AttrValue {
    fn from(v: i64) -> Self {
        AttrValue::Int(v)
    }
}
impl From<u64> for AttrValue {
    fn from(v: u64) -> Self {
        AttrValue::Uint(v)
    }
}
impl From<usize> for AttrValue {
    fn from(v: usize) -> Self {
        AttrValue::Uint(v as u64)
    }
}
impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::Float(v)
    }
}
impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Str(v.to_string())
    }
}
impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Str(v)
    }
}

impl std::fmt::Display for AttrValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AttrValue::Int(v) => write!(f, "{v}"),
            AttrValue::Uint(v) => write!(f, "{v}"),
            AttrValue::Float(v) => write!(f, "{v}"),
            AttrValue::Str(v) => write!(f, "{v}"),
        }
    }
}

/// How an event occupies time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A duration span (`ph:"X"` in Chrome trace terms).
    Span,
    /// A zero-duration point event (`ph:"i"`).
    Instant,
}

/// One finished event in a recorder's ring.
#[derive(Debug, Clone)]
pub struct SpanEvent {
    /// Recorder-unique id (never 0).
    pub id: u64,
    /// Id of the enclosing span, if any.
    pub parent: Option<u64>,
    /// Static event name, e.g. `"simplex.phase1"`.
    pub name: &'static str,
    /// Microseconds from the recorder epoch to the event start.
    pub start_us: u64,
    /// Event duration in microseconds (0 for instants).
    pub dur_us: u64,
    /// Recorder-scoped logical thread id (stable per installed thread).
    pub tid: u64,
    /// Key=value attributes attached while the span was open.
    pub attrs: Vec<(&'static str, AttrValue)>,
    /// Span or instant.
    pub kind: EventKind,
}

struct RecorderInner {
    epoch: Instant,
    capacity: usize,
    ring: Mutex<VecDeque<SpanEvent>>,
    evicted: AtomicU64,
    next_id: AtomicU64,
    next_tid: AtomicU64,
}

/// A bounded ring buffer of finished span events, shared across threads.
///
/// Cloning is cheap (an `Arc` bump); all clones feed the same ring.
#[derive(Clone)]
pub struct SpanRecorder {
    inner: Arc<RecorderInner>,
}

fn ring_lock(inner: &RecorderInner) -> MutexGuard<'_, VecDeque<SpanEvent>> {
    inner.ring.lock().unwrap_or_else(|p| p.into_inner())
}

impl SpanRecorder {
    /// A recorder whose ring holds at most `capacity` finished events;
    /// older events are evicted (and counted) once the ring is full.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        SpanRecorder {
            inner: Arc::new(RecorderInner {
                epoch: Instant::now(),
                capacity: capacity.max(1),
                ring: Mutex::new(VecDeque::new()),
                evicted: AtomicU64::new(0),
                next_id: AtomicU64::new(1),
                next_tid: AtomicU64::new(1),
            }),
        }
    }

    /// Install this recorder as the current thread's span destination.
    /// The previous installation (if any) is restored when the returned
    /// guard drops. Spans are only captured while [`enabled`] is also true.
    #[must_use]
    pub fn install(&self) -> RecorderGuard {
        self.install_with_parent(None)
    }

    fn install_with_parent(&self, base_parent: Option<u64>) -> RecorderGuard {
        let tid = self.inner.next_tid.fetch_add(1, Ordering::Relaxed);
        let slot = ThreadSlot {
            rec: self.clone(),
            stack: Vec::new(),
            base_parent,
            tid,
        };
        let prev = CURRENT.with(|c| c.replace(Some(slot)));
        RecorderGuard {
            prev,
            _not_send: PhantomData,
        }
    }

    /// Snapshot of all finished events, oldest first.
    #[must_use]
    pub fn finished(&self) -> Vec<SpanEvent> {
        let ring = ring_lock(&self.inner);
        ring.iter().cloned().collect()
    }

    /// Number of events evicted because the ring was full.
    #[must_use]
    pub fn evicted(&self) -> u64 {
        self.inner.evicted.load(Ordering::Relaxed)
    }

    /// Number of finished events currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        ring_lock(&self.inner).len()
    }

    /// Whether the ring holds no finished events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop all recorded events (eviction counter is kept).
    pub fn clear(&self) {
        ring_lock(&self.inner).clear();
    }

    fn now_us(&self) -> u64 {
        u64::try_from(self.inner.epoch.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    fn push(&self, event: SpanEvent) {
        let mut ring = ring_lock(&self.inner);
        if ring.len() >= self.inner.capacity {
            ring.pop_front();
            self.inner.evicted.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(event);
    }
}

struct ThreadSlot {
    rec: SpanRecorder,
    stack: Vec<u64>,
    base_parent: Option<u64>,
    tid: u64,
}

impl ThreadSlot {
    fn current_parent(&self) -> Option<u64> {
        self.stack.last().copied().or(self.base_parent)
    }
}

thread_local! {
    static CURRENT: RefCell<Option<ThreadSlot>> = const { RefCell::new(None) };
}

/// Restores the previously installed recorder when dropped.
/// Must be dropped on the thread that created it (it is `!Send`).
pub struct RecorderGuard {
    prev: Option<ThreadSlot>,
    _not_send: PhantomData<*const ()>,
}

impl Drop for RecorderGuard {
    fn drop(&mut self) {
        let prev = self.prev.take();
        CURRENT.with(|c| c.replace(prev));
    }
}

/// A handle to "the recorder and open span of this thread, right now",
/// capturable before spawning workers and attachable on the new thread so
/// spans nest correctly across thread boundaries.
#[derive(Clone)]
pub struct SpanContext {
    rec: SpanRecorder,
    parent: Option<u64>,
}

impl SpanContext {
    /// Capture the calling thread's recorder and innermost open span.
    /// Returns `None` when no recorder is installed here.
    #[must_use]
    pub fn current() -> Option<SpanContext> {
        CURRENT.with(|c| {
            c.borrow().as_ref().map(|slot| SpanContext {
                rec: slot.rec.clone(),
                parent: slot.current_parent(),
            })
        })
    }

    /// Install the captured recorder on *this* thread, with new root spans
    /// parented under the captured span. Restores on guard drop.
    #[must_use]
    pub fn attach(&self) -> RecorderGuard {
        self.rec.install_with_parent(self.parent)
    }
}

struct ActiveSpan {
    id: u64,
    start_us: u64,
    name: &'static str,
    parent: Option<u64>,
    tid: u64,
    rec: SpanRecorder,
    attrs: Vec<(&'static str, AttrValue)>,
    /// Subsystem attribution label to restore when this span closes.
    prev_subsystem: u8,
    /// `alloc::thread_allocated_bytes()` at span entry; the delta at
    /// exit becomes the span's `alloc_bytes` attribute.
    alloc_at_enter: u64,
}

/// Times a region of code; records a [`SpanEvent`] when dropped.
/// Inert (and near-free) when recording is disabled or no recorder is
/// installed. `!Send`: a span must end on the thread that opened it.
pub struct SpanGuard {
    active: Option<ActiveSpan>,
    _not_send: PhantomData<*const ()>,
}

impl SpanGuard {
    /// Attach a key=value attribute. No-op on an inert guard.
    pub fn attr(&mut self, key: &'static str, value: impl Into<AttrValue>) {
        if let Some(active) = self.active.as_mut() {
            active.attrs.push((key, value.into()));
        }
    }

    /// Whether this guard is actually recording.
    #[must_use]
    pub fn is_recording(&self) -> bool {
        self.active.is_some()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(mut active) = self.active.take() else {
            return;
        };
        let end_us = active.rec.now_us();
        crate::alloc::set_subsystem(active.prev_subsystem);
        if crate::alloc::tracking_enabled() {
            let delta =
                crate::alloc::thread_allocated_bytes().saturating_sub(active.alloc_at_enter);
            active.attrs.push(("alloc_bytes", AttrValue::Uint(delta)));
        }
        CURRENT.with(|c| {
            if let Some(slot) = c.borrow_mut().as_mut() {
                // Tolerate out-of-order drops: pop through our id if present.
                if let Some(pos) = slot.stack.iter().rposition(|&id| id == active.id) {
                    slot.stack.truncate(pos);
                }
            }
        });
        active.rec.push(SpanEvent {
            id: active.id,
            parent: active.parent,
            name: active.name,
            start_us: active.start_us,
            dur_us: end_us.saturating_sub(active.start_us),
            tid: active.tid,
            attrs: active.attrs,
            kind: EventKind::Span,
        });
    }
}

/// Open a span named `name` on the current thread.
///
/// Fast path: when recording is disabled this is one relaxed atomic load
/// and the construction of an inert guard.
#[inline]
#[must_use]
pub fn span(name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard {
            active: None,
            _not_send: PhantomData,
        };
    }
    span_slow(name)
}

#[cold]
fn span_slow(name: &'static str) -> SpanGuard {
    let active = CURRENT.with(|c| {
        let mut slot = c.borrow_mut();
        let slot = slot.as_mut()?;
        let id = slot.rec.inner.next_id.fetch_add(1, Ordering::Relaxed);
        let parent = slot.current_parent();
        slot.stack.push(id);
        // Attribute allocations made while this span is innermost to its
        // subsystem. The label lives in a Cell-based thread-local the
        // allocator can read without touching this RefCell.
        let prev_subsystem = crate::alloc::set_subsystem(crate::alloc::subsystem_of(name));
        Some(ActiveSpan {
            id,
            start_us: slot.rec.now_us(),
            name,
            parent,
            tid: slot.tid,
            rec: slot.rec.clone(),
            attrs: Vec::new(),
            prev_subsystem,
            alloc_at_enter: crate::alloc::thread_allocated_bytes(),
        })
    });
    SpanGuard {
        active,
        _not_send: PhantomData,
    }
}

/// Record a zero-duration point event (e.g. "new incumbent") under the
/// current span. No-op when disabled or no recorder is installed.
pub fn instant(name: &'static str, attrs: Vec<(&'static str, AttrValue)>) {
    if !enabled() {
        return;
    }
    CURRENT.with(|c| {
        let borrow = c.borrow();
        let Some(slot) = borrow.as_ref() else {
            return;
        };
        let id = slot.rec.inner.next_id.fetch_add(1, Ordering::Relaxed);
        let event = SpanEvent {
            id,
            parent: slot.current_parent(),
            name,
            start_us: slot.rec.now_us(),
            dur_us: 0,
            tid: slot.tid,
            attrs,
            kind: EventKind::Instant,
        };
        slot.rec.push(event);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serialize tests that flip the global flag.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn with_enabled<T>(f: impl FnOnce() -> T) -> T {
        let _l = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        set_enabled(true);
        let out = f();
        set_enabled(false);
        out
    }

    #[test]
    fn disabled_span_is_inert() {
        let _l = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        set_enabled(false);
        let rec = SpanRecorder::new(8);
        let _g = rec.install();
        let mut s = span("nothing");
        s.attr("k", 1u64);
        assert!(!s.is_recording());
        drop(s);
        assert!(rec.is_empty());
    }

    #[test]
    fn nesting_and_parent_links() {
        let rec = SpanRecorder::new(64);
        with_enabled(|| {
            let _g = rec.install();
            let outer = span("outer");
            let mut inner = span("inner");
            inner.attr("n", 3u64);
            instant("tick", vec![("v", AttrValue::Int(-1))]);
            drop(inner);
            drop(outer);
        });
        let events = rec.finished();
        assert_eq!(events.len(), 3);
        let outer = events.iter().find(|e| e.name == "outer").expect("outer");
        let inner = events.iter().find(|e| e.name == "inner").expect("inner");
        let tick = events.iter().find(|e| e.name == "tick").expect("tick");
        assert_eq!(outer.parent, None);
        assert_eq!(inner.parent, Some(outer.id));
        assert_eq!(tick.parent, Some(inner.id));
        assert_eq!(tick.kind, EventKind::Instant);
        assert!(inner.start_us >= outer.start_us);
        assert!(inner.attrs.iter().any(|(k, _)| *k == "n"));
    }

    #[test]
    fn ring_is_bounded_and_counts_evictions() {
        let rec = SpanRecorder::new(4);
        with_enabled(|| {
            let _g = rec.install();
            for _ in 0..10 {
                drop(span("s"));
            }
        });
        assert_eq!(rec.len(), 4);
        assert_eq!(rec.evicted(), 6);
    }

    #[test]
    fn context_crosses_threads() {
        let rec = SpanRecorder::new(64);
        with_enabled(|| {
            let _g = rec.install();
            let outer = span("outer");
            let ctx = SpanContext::current().expect("context");
            std::thread::scope(|scope| {
                scope.spawn(move || {
                    let _g = ctx.attach();
                    drop(span("worker"));
                });
            });
            drop(outer);
        });
        let events = rec.finished();
        let outer = events.iter().find(|e| e.name == "outer").expect("outer");
        let worker = events.iter().find(|e| e.name == "worker").expect("worker");
        assert_eq!(worker.parent, Some(outer.id));
        assert_ne!(worker.tid, outer.tid);
    }
}
