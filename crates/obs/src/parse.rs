//! Test-side mini-parsers: Prometheus text exposition and a minimal JSON
//! reader, used to validate what the exporters emit (in unit tests and in
//! the `obs-validate` CI helper) without any external dependency.

/// One parsed OpenMetrics-style exemplar (`# {labels} value` after a
/// sample value).
#[derive(Debug, Clone, PartialEq)]
pub struct PromExemplar {
    /// Exemplar label pairs in source order (e.g. `job="17"`).
    pub labels: Vec<(String, String)>,
    /// Exemplar value.
    pub value: f64,
}

/// One parsed Prometheus sample line.
#[derive(Debug, Clone, PartialEq)]
pub struct PromSample {
    /// Metric name.
    pub name: String,
    /// Label pairs in source order.
    pub labels: Vec<(String, String)>,
    /// Sample value.
    pub value: f64,
    /// Trailing exemplar, if the line carried one.
    pub exemplar: Option<PromExemplar>,
}

fn valid_metric_name(s: &str) -> bool {
    !s.is_empty()
        && s.chars().enumerate().all(|(i, c)| {
            c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit())
        })
}

fn valid_label_name(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .enumerate()
            .all(|(i, c)| c.is_ascii_alphabetic() || c == '_' || (i > 0 && c.is_ascii_digit()))
}

type Labels = Vec<(String, String)>;

fn parse_labels(s: &str, line_no: usize) -> Result<(Labels, &str), String> {
    // `s` starts just after '{'; returns labels and the rest after '}'.
    let mut labels = Vec::new();
    let mut chars = s.char_indices().peekable();
    loop {
        // label name
        let start = match chars.peek() {
            Some(&(i, '}')) => {
                let rest = &s[i + 1..];
                return Ok((labels, rest));
            }
            Some(&(i, _)) => i,
            None => return Err(format!("line {line_no}: unterminated label set")),
        };
        let mut eq = None;
        for (i, c) in chars.by_ref() {
            if c == '=' {
                eq = Some(i);
                break;
            }
        }
        let eq = eq.ok_or_else(|| format!("line {line_no}: label without '='"))?;
        let name = &s[start..eq];
        if !valid_label_name(name) {
            return Err(format!("line {line_no}: bad label name {name:?}"));
        }
        match chars.next() {
            Some((_, '"')) => {}
            _ => return Err(format!("line {line_no}: label value must be quoted")),
        }
        let mut value = String::new();
        let mut closed = false;
        while let Some((_, c)) = chars.next() {
            match c {
                '"' => {
                    closed = true;
                    break;
                }
                '\\' => match chars.next() {
                    Some((_, '\\')) => value.push('\\'),
                    Some((_, '"')) => value.push('"'),
                    Some((_, 'n')) => value.push('\n'),
                    other => {
                        return Err(format!("line {line_no}: bad escape {other:?}"));
                    }
                },
                c => value.push(c),
            }
        }
        if !closed {
            return Err(format!("line {line_no}: unterminated label value"));
        }
        labels.push((name.to_string(), value));
        match chars.next() {
            Some((_, ',')) => {}
            Some((i, '}')) => {
                let rest = &s[i + 1..];
                return Ok((labels, rest));
            }
            other => {
                return Err(format!(
                    "line {line_no}: expected ',' or '}}', got {other:?}"
                ))
            }
        }
    }
}

fn parse_prom_value(s: &str, line_no: usize) -> Result<f64, String> {
    match s {
        "+Inf" => Ok(f64::INFINITY),
        "-Inf" => Ok(f64::NEG_INFINITY),
        "NaN" => Ok(f64::NAN),
        v => v
            .parse::<f64>()
            .map_err(|_| format!("line {line_no}: bad value {v:?}")),
    }
}

/// The metric family a sample belongs to: `_bucket` / `_sum` / `_count`
/// samples of a declared histogram family collapse onto the family name;
/// everything else is its own family.
fn family_of<'a>(
    name: &'a str,
    types: &std::collections::BTreeMap<String, String>,
) -> (&'a str, &'static str) {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = name.strip_suffix(suffix) {
            if types.get(base).map(String::as_str) == Some("histogram") {
                return (base, suffix);
            }
        }
    }
    (name, "")
}

/// Parse a Prometheus text exposition document into its sample lines,
/// validating metric/label name charsets, quoting, escapes and values,
/// plus family-level conformance: every sample's family must carry both
/// a `# HELP` and a `# TYPE` line declared before its first sample, a
/// histogram family must expose `_sum` and `_count`, and exemplars
/// (`# {labels} value` after the sample value) are only accepted on
/// histogram `_bucket` lines and counters.
pub fn parse_prometheus(text: &str) -> Result<Vec<PromSample>, String> {
    use std::collections::{BTreeMap, BTreeSet};
    let mut samples = Vec::new();
    let mut helps: BTreeSet<String> = BTreeSet::new();
    let mut types: BTreeMap<String, String> = BTreeMap::new();
    // histogram family -> (saw _sum, saw _count)
    let mut hist_parts: BTreeMap<String, (bool, bool)> = BTreeMap::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let rest = rest.trim_start();
            if let Some(decl) = rest.strip_prefix("HELP ") {
                let name = decl.split_whitespace().next().unwrap_or_default();
                if !valid_metric_name(name) {
                    return Err(format!("line {line_no}: HELP for bad name {name:?}"));
                }
                helps.insert(name.to_string());
            } else if let Some(decl) = rest.strip_prefix("TYPE ") {
                let mut it = decl.split_whitespace();
                let name = it.next().unwrap_or_default();
                let kind = it.next().unwrap_or_default();
                if !valid_metric_name(name) {
                    return Err(format!("line {line_no}: TYPE for bad name {name:?}"));
                }
                if !matches!(
                    kind,
                    "counter" | "gauge" | "histogram" | "summary" | "untyped"
                ) {
                    return Err(format!("line {line_no}: unknown TYPE kind {kind:?}"));
                }
                if let Some(prev) = types.insert(name.to_string(), kind.to_string()) {
                    if prev != kind {
                        return Err(format!(
                            "line {line_no}: family {name:?} redeclared as {kind} (was {prev})"
                        ));
                    }
                }
            }
            continue;
        }
        let (name, rest) = match line.find(['{', ' ']) {
            Some(i) => (&line[..i], &line[i..]),
            None => return Err(format!("line {line_no}: no value: {line:?}")),
        };
        if !valid_metric_name(name) {
            return Err(format!("line {line_no}: bad metric name {name:?}"));
        }
        let (labels, value_str) = if let Some(stripped) = rest.strip_prefix('{') {
            parse_labels(stripped, line_no)?
        } else {
            (Vec::new(), rest)
        };
        // Split off an OpenMetrics exemplar: `value # {labels} value`.
        let value_str = value_str.trim();
        let (value_str, exemplar) = match value_str.split_once('#') {
            Some((v, ex)) => {
                let ex = ex.trim_start();
                let Some(ex_labels) = ex.strip_prefix('{') else {
                    return Err(format!("line {line_no}: exemplar must start with '{{'"));
                };
                let (ex_labels, ex_rest) = parse_labels(ex_labels, line_no)?;
                let ex_value = parse_prom_value(ex_rest.trim(), line_no)?;
                (
                    v.trim(),
                    Some(PromExemplar {
                        labels: ex_labels,
                        value: ex_value,
                    }),
                )
            }
            None => (value_str, None),
        };
        let value = parse_prom_value(value_str, line_no)?;
        let (family, suffix) = family_of(name, &types);
        if !types.contains_key(family) {
            return Err(format!(
                "line {line_no}: sample {name:?} has no # TYPE line for family {family:?}"
            ));
        }
        if !helps.contains(family) {
            return Err(format!(
                "line {line_no}: sample {name:?} has no # HELP line for family {family:?}"
            ));
        }
        let kind = types[family].as_str();
        if exemplar.is_some() && !(suffix == "_bucket" || kind == "counter") {
            return Err(format!(
                "line {line_no}: exemplar on {name:?} ({kind}); only histogram buckets \
                 and counters may carry exemplars"
            ));
        }
        if kind == "histogram" {
            let parts = hist_parts.entry(family.to_string()).or_default();
            match suffix {
                "_sum" => parts.0 = true,
                "_count" => parts.1 = true,
                _ => {}
            }
        }
        samples.push(PromSample {
            name: name.to_string(),
            labels,
            value,
            exemplar,
        });
    }
    for (family, (saw_sum, saw_count)) in &hist_parts {
        if !(*saw_sum && *saw_count) {
            return Err(format!(
                "histogram family {family:?} is missing its _sum or _count sample"
            ));
        }
    }
    if samples.is_empty() {
        return Err("no samples found".to_string());
    }
    Ok(samples)
}

// --------------------------------------------------------------------- json

/// A parsed JSON value (minimal model; numbers are f64).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number
    Num(f64),
    /// String
    Str(String),
    /// Array
    Arr(Vec<Json>),
    /// Object (insertion order preserved)
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonParser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("json error at byte {}: {msg}", self.pos)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Json::Str(self.parse_string()?)),
            Some(b't') => self.parse_lit("true", Json::Bool(true)),
            Some(b'f') => self.parse_lit("false", Json::Bool(false)),
            Some(b'n') => self.parse_lit("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn parse_lit(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected {lit}")))
        }
    }

    fn parse_number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("non-utf8 number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(&format!("bad number {text:?}")))
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-utf8 \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogates render as replacement; fine for a validator.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(self.err(&format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().ok_or_else(|| self.err("empty"))?;
                    if (c as u32) < 0x20 {
                        return Err(self.err("raw control character in string"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Parse a complete JSON document (rejects trailing garbage).
pub fn parse_json(text: &str) -> Result<Json, String> {
    let mut p = JsonParser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing garbage"));
    }
    Ok(v)
}

/// Validate a Chrome trace-event JSON document: must parse, must contain a
/// `traceEvents` array whose entries each carry `name`, `ph` and `ts`.
/// Returns the event count.
pub fn validate_chrome_trace(text: &str) -> Result<usize, String> {
    let doc = parse_json(text)?;
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or_else(|| "missing traceEvents array".to_string())?;
    for (i, e) in events.iter().enumerate() {
        let name = e.get("name").and_then(Json::as_str);
        let ph = e.get("ph").and_then(Json::as_str);
        let ts = e.get("ts").and_then(Json::as_f64);
        if name.is_none() || ph.is_none() || ts.is_none() {
            return Err(format!("event {i} missing name/ph/ts"));
        }
        if ph == Some("X") && e.get("dur").and_then(Json::as_f64).is_none() {
            return Err(format!("complete event {i} missing dur"));
        }
    }
    Ok(events.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prometheus_round_trip() {
        let text = "# HELP a_total a counter\n# TYPE a_total counter\n\
                    a_total{x=\"q\\\"uo\\\\te\\n\"} 3\n\
                    # HELP b a gauge\n# TYPE b gauge\nb 1.5\n\
                    # HELP c infinities\n# TYPE c gauge\nc{le=\"+Inf\"} +Inf\n";
        let samples = parse_prometheus(text).expect("parses");
        assert_eq!(samples.len(), 3);
        assert_eq!(samples[0].labels[0].1, "q\"uo\\te\n");
        assert!(samples[2].value.is_infinite());
        assert!(parse_prometheus("bad-name 1\n").is_err());
        assert!(parse_prometheus("novalue\n").is_err());
    }

    #[test]
    fn prometheus_requires_help_and_type() {
        // TYPE without HELP
        assert!(parse_prometheus("# TYPE a counter\na 1\n")
            .unwrap_err()
            .contains("HELP"));
        // HELP without TYPE
        assert!(parse_prometheus("# HELP a text\na 1\n")
            .unwrap_err()
            .contains("TYPE"));
        // conflicting redeclaration
        assert!(
            parse_prometheus("# HELP a t\n# TYPE a counter\n# TYPE a gauge\na 1\n")
                .unwrap_err()
                .contains("redeclared")
        );
    }

    #[test]
    fn prometheus_histograms_need_sum_and_count() {
        let missing = "# HELP h latency\n# TYPE h histogram\n\
                       h_bucket{le=\"+Inf\"} 1\nh_sum 0.5\n";
        assert!(parse_prometheus(missing).unwrap_err().contains("_count"));
        let complete = format!("{missing}h_count 1\n");
        let samples = parse_prometheus(&complete).expect("complete histogram parses");
        assert_eq!(samples.len(), 3);
    }

    #[test]
    fn prometheus_exemplars_parse_on_buckets_only() {
        let good = "# HELP h latency\n# TYPE h histogram\n\
                    h_bucket{le=\"+Inf\"} 1 # {job=\"17\"} 0.25\nh_sum 0.25\nh_count 1\n";
        let samples = parse_prometheus(good).expect("parses");
        let ex = samples[0].exemplar.as_ref().expect("exemplar");
        assert_eq!(ex.labels, vec![("job".to_string(), "17".to_string())]);
        assert!((ex.value - 0.25).abs() < 1e-12);
        let bad = "# HELP g a gauge\n# TYPE g gauge\ng 1 # {job=\"17\"} 0.25\n";
        assert!(parse_prometheus(bad).unwrap_err().contains("exemplar"));
    }

    #[test]
    fn json_round_trip() {
        let doc = parse_json("{\"a\":[1,2.5,-3e2],\"b\":\"x\\u0041\",\"c\":null,\"d\":true}")
            .expect("ok");
        assert_eq!(doc.get("b").and_then(Json::as_str), Some("xA"));
        assert_eq!(
            doc.get("a").and_then(Json::as_arr).map(<[Json]>::len),
            Some(3)
        );
        assert!(parse_json("{\"a\":1,}").is_err());
        assert!(parse_json("[1,2] trailing").is_err());
    }

    #[test]
    fn chrome_trace_validation() {
        let good = "{\"traceEvents\":[{\"name\":\"s\",\"ph\":\"X\",\"ts\":1,\"dur\":2}]}";
        assert_eq!(validate_chrome_trace(good), Ok(1));
        let bad = "{\"traceEvents\":[{\"name\":\"s\",\"ph\":\"X\",\"ts\":1}]}";
        assert!(validate_chrome_trace(bad).is_err());
    }
}
