//! `obs-validate` — validate exporter output on stdin with the crate's
//! mini-parsers. Used by `ci/check.sh` to check what the live service
//! actually serves.
//!
//! ```sh
//! curl -s "$ADDR/metrics?format=prometheus" | obs-validate prometheus
//! curl -s "$ADDR/jobs/1/profile"           | obs-validate chrome
//! curl -s "$ADDR/slo"                      | obs-validate slo
//! ```
//!
//! Prints one `ok: ...` line and exits 0 on success; prints the parse
//! error and exits 1 otherwise.

use std::io::Read as _;

use columba_obs::Json;

/// Validate a `GET /slo` body: JSON with an `at_us` number and a `slos`
/// array whose entries each carry slo/label/target/good/bad/
/// budget_remaining/alerting plus a non-empty `windows` array of
/// window/burn/threshold/high objects. Returns an `ok:` summary.
fn validate_slo(input: &str) -> Result<String, String> {
    let doc = columba_obs::parse_json(input)?;
    doc.get("at_us")
        .and_then(Json::as_f64)
        .ok_or("missing at_us")?;
    let slos = doc
        .get("slos")
        .and_then(Json::as_arr)
        .ok_or("missing slos array")?;
    let mut alerting = 0usize;
    for (i, r) in slos.iter().enumerate() {
        for key in ["slo", "label"] {
            r.get(key)
                .and_then(Json::as_str)
                .ok_or_else(|| format!("slos[{i}]: missing string {key}"))?;
        }
        for key in ["target", "good", "bad", "budget_remaining"] {
            r.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("slos[{i}]: missing number {key}"))?;
        }
        let is_alerting = match r.get("alerting") {
            Some(Json::Bool(b)) => *b,
            _ => return Err(format!("slos[{i}]: missing bool alerting")),
        };
        alerting += usize::from(is_alerting);
        let windows = r
            .get("windows")
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("slos[{i}]: missing windows array"))?;
        if windows.is_empty() {
            return Err(format!("slos[{i}]: empty windows array"));
        }
        for (j, w) in windows.iter().enumerate() {
            w.get("window")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("slos[{i}].windows[{j}]: missing window"))?;
            for key in ["burn", "threshold"] {
                w.get(key)
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("slos[{i}].windows[{j}]: missing {key}"))?;
            }
            if !matches!(w.get("high"), Some(Json::Bool(_))) {
                return Err(format!("slos[{i}].windows[{j}]: missing bool high"));
            }
        }
    }
    Ok(format!("ok: {} slos, {alerting} alerting", slos.len()))
}

fn main() {
    let mode = std::env::args().nth(1).unwrap_or_default();
    let mut input = String::new();
    if let Err(e) = std::io::stdin().read_to_string(&mut input) {
        eprintln!("error: cannot read stdin: {e}");
        std::process::exit(1);
    }
    let outcome = match mode.as_str() {
        "prometheus" => columba_obs::parse_prometheus(&input)
            .map(|samples| format!("ok: {} prometheus samples", samples.len())),
        "chrome" => {
            columba_obs::validate_chrome_trace(&input).map(|n| format!("ok: {n} trace events"))
        }
        "slo" => validate_slo(&input),
        _ => {
            eprintln!("usage: obs-validate <prometheus|chrome|slo>  (document on stdin)");
            std::process::exit(2);
        }
    };
    match outcome {
        Ok(msg) => println!("{msg}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
