//! `obs-validate` — validate exporter output on stdin with the crate's
//! mini-parsers. Used by `ci/check.sh` to check what the live service
//! actually serves.
//!
//! ```sh
//! curl -s "$ADDR/metrics?format=prometheus" | obs-validate prometheus
//! curl -s "$ADDR/jobs/1/profile"           | obs-validate chrome
//! ```
//!
//! Prints one `ok: ...` line and exits 0 on success; prints the parse
//! error and exits 1 otherwise.

use std::io::Read as _;

fn main() {
    let mode = std::env::args().nth(1).unwrap_or_default();
    let mut input = String::new();
    if let Err(e) = std::io::stdin().read_to_string(&mut input) {
        eprintln!("error: cannot read stdin: {e}");
        std::process::exit(1);
    }
    let outcome = match mode.as_str() {
        "prometheus" => columba_obs::parse_prometheus(&input)
            .map(|samples| format!("ok: {} prometheus samples", samples.len())),
        "chrome" => {
            columba_obs::validate_chrome_trace(&input).map(|n| format!("ok: {n} trace events"))
        }
        _ => {
            eprintln!("usage: obs-validate <prometheus|chrome>  (document on stdin)");
            std::process::exit(2);
        }
    };
    match outcome {
        Ok(msg) => println!("{msg}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
