//! A small counter / gauge / histogram registry.
//!
//! Metrics are registered by (name, labels) and handed out as `Arc`s, so
//! hot paths hold the atomic directly and never touch the registry lock
//! again. Rendering walks the sorted map and emits Prometheus text.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use crate::export;
use crate::hist::Histogram;

/// A floating-point gauge stored as f64 bits in an atomic.
#[derive(Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A gauge initialised to 0.0.
    #[must_use]
    pub fn new() -> Self {
        Gauge(AtomicU64::new(0f64.to_bits()))
    }

    /// Set the gauge.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Read the gauge.
    #[must_use]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// A metric identity: sanitized name plus sorted label pairs.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct MetricKey {
    name: String,
    labels: Vec<(String, String)>,
}

impl MetricKey {
    fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        MetricKey {
            name: export::prom_sanitize_name(name),
            labels,
        }
    }
}

#[derive(Default)]
struct RegistryInner {
    counters: BTreeMap<MetricKey, Arc<AtomicU64>>,
    gauges: BTreeMap<MetricKey, Arc<Gauge>>,
    hists: BTreeMap<MetricKey, Arc<Histogram>>,
    helps: BTreeMap<String, String>,
}

impl RegistryInner {
    /// The HELP text for `name`: described text if present, otherwise a
    /// generated fallback so exposition conformance (every family has a
    /// HELP line) holds even for metrics nobody described.
    fn help_for(&self, name: &str) -> String {
        self.helps
            .get(name)
            .cloned()
            .unwrap_or_else(|| format!("{name} (no description registered)"))
    }
}

/// A registry of named metrics; clone-cheap handles, render-on-demand.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<RegistryInner>,
}

fn lock(inner: &Mutex<RegistryInner>) -> MutexGuard<'_, RegistryInner> {
    inner.lock().unwrap_or_else(|p| p.into_inner())
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Registry::default()
    }

    /// The counter registered under `name` (created on first use).
    #[must_use]
    pub fn counter(&self, name: &str) -> Arc<AtomicU64> {
        self.counter_labeled(name, &[])
    }

    /// The counter registered under `name` with `labels`.
    #[must_use]
    pub fn counter_labeled(&self, name: &str, labels: &[(&str, &str)]) -> Arc<AtomicU64> {
        Arc::clone(
            lock(&self.inner)
                .counters
                .entry(MetricKey::new(name, labels))
                .or_default(),
        )
    }

    /// The gauge registered under `name` (created on first use).
    #[must_use]
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.gauge_labeled(name, &[])
    }

    /// The gauge registered under `name` with `labels`.
    #[must_use]
    pub fn gauge_labeled(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        Arc::clone(
            lock(&self.inner)
                .gauges
                .entry(MetricKey::new(name, labels))
                .or_default(),
        )
    }

    /// The histogram registered under `name` (created on first use).
    #[must_use]
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.histogram_labeled(name, &[])
    }

    /// The histogram registered under `name` with `labels`.
    #[must_use]
    pub fn histogram_labeled(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        Arc::clone(
            lock(&self.inner)
                .hists
                .entry(MetricKey::new(name, labels))
                .or_default(),
        )
    }

    /// Attach HELP text to the family `name` (sanitized like metric
    /// registration). Families without a description render a generated
    /// fallback, so HELP lines are always present.
    pub fn describe(&self, name: &str, help: &str) {
        lock(&self.inner)
            .helps
            .insert(export::prom_sanitize_name(name), help.to_string());
    }

    /// Render every registered metric as Prometheus text exposition.
    pub fn render_prometheus_into(&self, buf: &mut String) {
        let inner = lock(&self.inner);
        let mut last_type_line = String::new();
        for (key, counter) in &inner.counters {
            export::prom_type_line(
                buf,
                &mut last_type_line,
                &key.name,
                "counter",
                &inner.help_for(&key.name),
            );
            export::prom_sample(
                buf,
                &key.name,
                &key.labels,
                counter.load(Ordering::Relaxed) as f64,
            );
        }
        for (key, gauge) in &inner.gauges {
            export::prom_type_line(
                buf,
                &mut last_type_line,
                &key.name,
                "gauge",
                &inner.help_for(&key.name),
            );
            export::prom_sample(buf, &key.name, &key.labels, gauge.get());
        }
        for (key, hist) in &inner.hists {
            export::prom_histogram(
                buf,
                &key.name,
                &inner.help_for(&key.name),
                &key.labels,
                &hist.snapshot(),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_shared() {
        let reg = Registry::new();
        reg.counter("hits").fetch_add(2, Ordering::Relaxed);
        reg.counter("hits").fetch_add(3, Ordering::Relaxed);
        assert_eq!(reg.counter("hits").load(Ordering::Relaxed), 5);
        reg.gauge("depth").set(1.5);
        assert!((reg.gauge("depth").get() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn labeled_metrics_are_distinct() {
        let reg = Registry::new();
        reg.counter_labeled("http", &[("route", "/a")])
            .fetch_add(1, Ordering::Relaxed);
        reg.counter_labeled("http", &[("route", "/b")])
            .fetch_add(7, Ordering::Relaxed);
        assert_eq!(
            reg.counter_labeled("http", &[("route", "/b")])
                .load(Ordering::Relaxed),
            7
        );
        let mut out = String::new();
        reg.render_prometheus_into(&mut out);
        assert!(out.contains("http{route=\"/a\"} 1"));
        assert!(out.contains("http{route=\"/b\"} 7"));
        // One TYPE line per metric family, not per sample.
        assert_eq!(out.matches("# TYPE http counter").count(), 1);
    }
}
