//! Columba S: a scalable co-layout design automation tool for microfluidic
//! large-scale integration — a from-scratch Rust reproduction of the DAC
//! 2018 paper.
//!
//! Columba S turns a plain-text netlist of microfluidic functional units
//! into a manufacturing-ready two-layer chip design: placed module models,
//! straight flow/control channels, fluid inlets along the flow boundaries
//! and binary multiplexers that drive `n` independent valves from
//! `2·ceil(log2 n) + 1` pressure inlets. The full flow (paper Fig 5) is:
//!
//! ```text
//! netlist description ──► planarization ──► layout generation (MILP)
//!        ──► layout validation ──► MUX synthesis ──► DRC ──► CAD export
//! ```
//!
//! # Quick start
//!
//! ```
//! use columba_s::{Columba, Netlist};
//!
//! let netlist = Netlist::parse(
//!     "chip demo\nmux 1\nmixer m1\nchamber c1\nport feed\nport out\n\
//!      connect feed -> m1.left\nconnect m1.right -> c1.left\nconnect c1.right -> out\n",
//! )?;
//! let outcome = Columba::new().synthesize(&netlist)?;
//! assert!(outcome.drc.is_clean());
//! println!("{}", outcome.design.stats());
//! # Ok::<(), columba_s::SynthesisError>(())
//! ```
//!
//! The sub-crates are re-exported: [`netlist`], [`planar`], [`layout`],
//! [`design`], [`modules`], [`mux`], [`sim`], [`cad`], [`milp`],
//! [`baseline`], [`geom`].

use std::fmt;
use std::time::{Duration, Instant};

pub use columba_baseline as baseline;
pub use columba_cad as cad;
pub use columba_design as design;
pub use columba_geom as geom;
pub use columba_layout as layout;
pub use columba_milp as milp;
pub use columba_modules as modules;
pub use columba_mux as mux;
pub use columba_netlist as netlist;
pub use columba_planar as planar;
pub use columba_sim as sim;

pub use columba_design::{drc::DrcReport, Design, DesignStats};
pub use columba_layout::{
    synthesize_resilient, Attempt, AttemptLog, AttemptOutcome, LayoutError, LayoutOptions,
    ResiliencePolicy, ResilientError, ResilientOutcome, Rung,
};
pub use columba_milp::{CancelToken, SolveStats};
pub use columba_netlist::{Netlist, NetlistError};
pub use columba_planar::PlanarizeReport;

/// Error raised by [`Columba::synthesize`].
#[derive(Debug)]
pub enum SynthesisError {
    /// The input netlist is malformed.
    Netlist(NetlistError),
    /// Physical synthesis failed.
    Layout(LayoutError),
}

impl fmt::Display for SynthesisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthesisError::Netlist(e) => write!(f, "netlist error: {e}"),
            SynthesisError::Layout(e) => write!(f, "layout error: {e}"),
        }
    }
}

impl std::error::Error for SynthesisError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SynthesisError::Netlist(e) => Some(e),
            SynthesisError::Layout(e) => Some(e),
        }
    }
}

impl From<NetlistError> for SynthesisError {
    fn from(e: NetlistError) -> SynthesisError {
        SynthesisError::Netlist(e)
    }
}

impl From<LayoutError> for SynthesisError {
    fn from(e: LayoutError) -> SynthesisError {
        SynthesisError::Layout(e)
    }
}

/// Synthesis configuration.
#[derive(Debug, Clone)]
pub struct SynthesisOptions {
    /// Physical-synthesis options (objective weights, solver budgets).
    pub layout: LayoutOptions,
    /// When `true`, designs above [`SynthesisOptions::scale_threshold`]
    /// functional units use the scalable heuristic mode (constructive
    /// placement + LP polish, no branching) automatically — this is what
    /// keeps 200+-unit designs within the paper's three-minute envelope.
    pub auto_scale: bool,
    /// Unit count at which auto-scaling kicks in.
    pub scale_threshold: usize,
}

impl Default for SynthesisOptions {
    fn default() -> SynthesisOptions {
        SynthesisOptions {
            layout: LayoutOptions::default(),
            auto_scale: true,
            scale_threshold: 24,
        }
    }
}

impl SynthesisOptions {
    /// Renders every option that can change the synthesized *design* into
    /// a stable, deterministic byte form — the options half of the
    /// content-addressed cache key used by `columba-service` (the netlist
    /// half is [`Netlist::canonical_text`]).
    ///
    /// Deliberately excluded, because they provably do not change the
    /// returned layout: `threads` (any worker count yields the same
    /// objective — see `crates/layout/tests/determinism.rs`),
    /// `diagnose_infeasibility` (changes only the error detail of a run
    /// that produces nothing), and the `cancel` token (a runtime handle).
    /// Budgets (`time_limit`, `node_limit`) *are* included: when a budget
    /// binds it selects the incumbent, so different budgets may
    /// legitimately yield different designs.
    #[must_use]
    pub fn canonical_text(&self) -> String {
        let l = &self.layout;
        format!(
            "alpha {}\nbeta {}\ngamma {}\nkappa {}\ntime_limit_us {}\nnode_limit {}\n\
             prune_ordered_pairs {}\nwarm_start {}\nmax_width_mm {}\nmax_height_mm {}\n\
             auto_scale {}\nscale_threshold {}\n",
            l.alpha,
            l.beta,
            l.gamma,
            l.kappa,
            l.time_limit.as_micros(),
            l.node_limit,
            l.prune_ordered_pairs,
            l.warm_start,
            l.max_width_mm.map_or("none".into(), |v| v.to_string()),
            l.max_height_mm.map_or("none".into(), |v| v.to_string()),
            self.auto_scale,
            self.scale_threshold,
        )
    }
}

/// Everything a synthesis run produces.
#[derive(Debug, Clone)]
pub struct SynthesisOutcome {
    /// The manufacturing-ready design.
    pub design: Design,
    /// What planarization inserted.
    pub planarize: PlanarizeReport,
    /// Layout-generation diagnostics (MILP size, status, pruning, ...).
    pub layout: columba_layout::LaygenReport,
    /// Design-rule check over the final geometry.
    pub drc: DrcReport,
    /// End-to-end wall-clock time.
    pub elapsed: Duration,
}

impl SynthesisOutcome {
    /// The Table 1 feature values of the design.
    #[must_use]
    pub fn stats(&self) -> DesignStats {
        self.design.stats()
    }

    /// Renders the design as an AutoCAD `.scr` script (paper §3.3).
    ///
    /// # Errors
    ///
    /// Never fails on the in-memory writer; kept for API symmetry.
    pub fn to_autocad_script(&self) -> std::io::Result<String> {
        let mut out = Vec::new();
        columba_cad::write_scr(&self.design, &mut out)?;
        Ok(String::from_utf8(out).expect("writer emits UTF-8"))
    }

    /// Renders the design as an SVG.
    ///
    /// # Errors
    ///
    /// Never fails on the in-memory writer; kept for API symmetry.
    pub fn to_svg(&self) -> std::io::Result<String> {
        let mut out = Vec::new();
        columba_cad::write_svg(&self.design, &mut out)?;
        Ok(String::from_utf8(out).expect("writer emits UTF-8"))
    }
}

/// The Columba S design flow.
///
/// Construct with [`Columba::new`] (default options) or
/// [`Columba::with_options`], then call [`Columba::synthesize`].
#[derive(Debug, Clone, Default)]
pub struct Columba {
    options: SynthesisOptions,
}

impl Columba {
    /// A flow with default options.
    #[must_use]
    pub fn new() -> Columba {
        Columba::default()
    }

    /// A flow with explicit options.
    #[must_use]
    pub fn with_options(options: SynthesisOptions) -> Columba {
        Columba { options }
    }

    /// The active options.
    #[must_use]
    pub fn options(&self) -> &SynthesisOptions {
        &self.options
    }

    /// Runs the full design flow on a raw netlist: validation,
    /// planarization, layout generation, layout validation, MUX synthesis
    /// and DRC.
    ///
    /// # Errors
    ///
    /// Returns [`SynthesisError`] when the netlist is invalid or physical
    /// synthesis fails. A DRC violation is *not* an error — inspect
    /// [`SynthesisOutcome::drc`].
    pub fn synthesize(&self, input: &Netlist) -> Result<SynthesisOutcome, SynthesisError> {
        let start = Instant::now();
        input.validate()?;
        let (planarized, planarize) = columba_planar::planarize(input);
        let mut layout_options = self.options.layout.clone();
        if self.options.auto_scale
            && planarized.functional_unit_count() > self.options.scale_threshold
        {
            layout_options.node_limit = 0;
        }
        let result = columba_layout::synthesize(&planarized, &layout_options)?;
        Ok(SynthesisOutcome {
            design: result.design,
            planarize,
            layout: result.laygen,
            drc: result.drc,
            elapsed: start.elapsed(),
        })
    }

    /// Parses the plain-text netlist format and synthesizes it.
    ///
    /// # Errors
    ///
    /// Same as [`Columba::synthesize`], plus parse errors.
    pub fn synthesize_text(&self, text: &str) -> Result<SynthesisOutcome, SynthesisError> {
        let netlist = Netlist::parse(text)?;
        self.synthesize(&netlist)
    }

    /// Runs the full design flow through the resilient escalation ladder
    /// ([`synthesize_resilient`]): full MILP → scaled retry → heuristic
    /// only → constructive only, with one optional [`CancelToken`]
    /// spanning every rung. This is the entry point a long-running caller
    /// (the `columba-service` job workers) uses: a cancelled or
    /// deadline-expired token degrades the job instead of losing it, and
    /// the returned [`AttemptLog`] records which rung produced the layout.
    ///
    /// # Errors
    ///
    /// Returns [`SynthesisError`] when the netlist is invalid, the model
    /// is proven infeasible, or every permitted rung failed.
    pub fn synthesize_resilient(
        &self,
        input: &Netlist,
        cancel: Option<CancelToken>,
    ) -> Result<ResilientSynthesis, SynthesisError> {
        let start = Instant::now();
        input.validate()?;
        let (planarized, planarize) = columba_planar::planarize(input);
        let mut layout_options = self.options.layout.clone();
        if self.options.auto_scale
            && planarized.functional_unit_count() > self.options.scale_threshold
        {
            layout_options.node_limit = 0;
        }
        if let Some(token) = cancel {
            layout_options.cancel = Some(token);
        }
        let policy = ResiliencePolicy {
            options: layout_options,
            ..ResiliencePolicy::default()
        };
        let resilient = synthesize_resilient(&planarized, &policy)
            .map_err(|e| SynthesisError::Layout(e.error))?;
        Ok(ResilientSynthesis {
            outcome: SynthesisOutcome {
                design: resilient.result.design,
                planarize,
                layout: resilient.result.laygen,
                drc: resilient.result.drc,
                elapsed: start.elapsed(),
            },
            rung: resilient.rung,
            log: resilient.log,
        })
    }
}

/// A [`SynthesisOutcome`] produced by the resilient ladder, plus the
/// trail of rungs that produced it.
#[derive(Debug)]
pub struct ResilientSynthesis {
    /// Everything the run produced.
    pub outcome: SynthesisOutcome,
    /// The ladder rung that produced the layout.
    pub rung: Rung,
    /// Every rung tried, with per-rung telemetry
    /// ([`AttemptLog::aggregate_solve`] sums it).
    pub log: AttemptLog,
}

#[cfg(test)]
mod tests {
    use super::*;
    use columba_netlist::{generators, MuxCount};

    #[test]
    fn quickstart_flow() {
        let n = generators::kinase_activity(MuxCount::One);
        let flow = Columba::with_options(SynthesisOptions {
            layout: LayoutOptions {
                time_limit: std::time::Duration::from_secs(5),
                ..LayoutOptions::default()
            },
            ..SynthesisOptions::default()
        });
        let out = flow.synthesize(&n).expect("synthesis succeeds");
        assert!(out.drc.is_clean(), "{}", out.drc);
        assert_eq!(out.design.muxes.len(), 1);
        assert!(
            out.planarize.switches_added >= 1,
            "shared kinase inlet needs a switch"
        );
        let scr = out.to_autocad_script().unwrap();
        assert!(scr.contains("RECTANG"));
        let svg = out.to_svg().unwrap();
        assert!(svg.contains("<svg"));
    }

    #[test]
    fn auto_scale_switches_to_heuristic() {
        let n = generators::chip_ip(16, MuxCount::One);
        let flow = Columba::with_options(SynthesisOptions {
            scale_threshold: 10,
            ..SynthesisOptions::default()
        });
        let out = flow.synthesize(&n).unwrap();
        // heuristic mode reports Feasible (hint-polish), not Optimal
        assert_eq!(out.layout.status, columba_milp::SolveStatus::Feasible);
        assert!(out.drc.is_clean(), "{}", out.drc);
    }

    #[test]
    fn invalid_netlist_rejected() {
        let empty = Netlist::new("empty");
        assert!(matches!(
            Columba::new().synthesize(&empty),
            Err(SynthesisError::Netlist(_))
        ));
    }

    #[test]
    fn resilient_flow_produces_and_logs() {
        let n = generators::chip_ip(2, MuxCount::One);
        let flow = Columba::with_options(SynthesisOptions {
            layout: LayoutOptions {
                time_limit: std::time::Duration::from_secs(5),
                ..LayoutOptions::default()
            },
            ..SynthesisOptions::default()
        });
        let out = flow.synthesize_resilient(&n, None).expect("synthesizes");
        assert!(out.outcome.drc.is_clean());
        assert_eq!(out.rung, Rung::FullMilp);
        assert_eq!(out.log.produced_by(), Some(Rung::FullMilp));
        assert!(out.log.aggregate_solve().simplex_iterations > 0);
        // a pre-cancelled token degrades instead of failing
        let token = CancelToken::new();
        token.cancel();
        let degraded = flow
            .synthesize_resilient(&n, Some(token))
            .expect("ladder still produces");
        assert!(degraded.outcome.drc.is_clean());
    }

    #[test]
    fn options_canonical_text_tracks_design_relevant_fields() {
        let base = SynthesisOptions::default().canonical_text();
        assert_eq!(base, SynthesisOptions::default().canonical_text());
        let mut other = SynthesisOptions::default();
        other.layout.threads = 7; // provably design-invariant: excluded
        assert_eq!(base, other.canonical_text());
        other.layout.kappa = 0.25;
        assert_ne!(base, other.canonical_text());
        let mut capped = SynthesisOptions::default();
        capped.layout.max_width_mm = Some(40.0);
        assert_ne!(base, capped.canonical_text());
        let mut scaled = SynthesisOptions {
            scale_threshold: 5,
            ..SynthesisOptions::default()
        };
        assert_ne!(base, scaled.canonical_text());
        scaled.scale_threshold = 24;
        assert_eq!(base, scaled.canonical_text());
    }

    #[test]
    fn text_round_trip() {
        let text = "chip t\nmixer m1\nport in1\nport out1\n\
                    connect in1 -> m1.left\nconnect m1.right -> out1\n";
        let out = Columba::new().synthesize_text(text).unwrap();
        assert_eq!(out.design.modules.len(), 1);
        assert!(out.drc.is_clean());
    }
}
