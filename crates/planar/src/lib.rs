//! Netlist planarization: switch insertion and connection refinement.
//!
//! Columba S inherits the planarization approach of Columba 2.0 (paper
//! §3.1): before physical synthesis, the primitive netlist is rewritten so
//! that the required logic connections can be realised without flow-channel
//! conflicts, by *adding switches to the netlist and refining the logic
//! connection accordingly*.
//!
//! Under the straight-routing discipline every flow channel is a horizontal
//! run between two pins, so a conflict is precisely an endpoint that several
//! connections share: a reagent port feeding many units, or a unit boundary
//! fanning out. [`planarize`] funnels each such multi-way net through a
//! fresh switch whose junction count matches the fan-out, repeating until
//! every port and every non-switch flow side carries at most one connection
//! ([`Netlist::validate_planarized`] passes).
//!
//! The crossing-minimisation ILP of Columba 2.0 (choosing *which* nets to
//! reroute when two point-to-point nets must cross) is not reproduced;
//! multi-way nets are the only switch source, which covers all six evaluated
//! test cases. [`crossing_estimate`] exposes a heuristic crossing count so
//! callers can detect netlists that would need the full machinery.
//!
//! # Examples
//!
//! ```
//! use columba_netlist::{generators, MuxCount};
//! use columba_planar::planarize;
//!
//! let raw = generators::chip_ip(4, MuxCount::One);
//! assert!(raw.validate_planarized().is_err()); // pre.right fans out
//! let (planar, report) = planarize(&raw);
//! planar.validate_planarized().expect("planarization resolves every conflict");
//! assert_eq!(report.switches_added, planar.switch_count());
//! ```

use std::collections::HashMap;

use columba_netlist::{
    ComponentId, ComponentKind, Connection, Endpoint, Netlist, PortId, SwitchSpec, UnitSide,
};

/// What [`planarize`] did to the netlist.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PlanarizeReport {
    /// Number of switches inserted.
    pub switches_added: usize,
    /// Number of connections whose endpoint was redirected to a switch.
    pub refined_connections: usize,
    /// Number of resolution rounds (multi-way nets can cascade).
    pub rounds: usize,
}

/// Rewrites `netlist` so that physical synthesis can route every connection
/// as a straight channel: every multi-way net is funnelled through an
/// inserted switch.
///
/// The input is not modified; the planarized copy and a report are
/// returned. The result satisfies [`Netlist::validate_planarized`] whenever
/// the input satisfies [`Netlist::validate`].
#[must_use]
pub fn planarize(netlist: &Netlist) -> (Netlist, PlanarizeReport) {
    let mut n = netlist.clone();
    let mut report = PlanarizeReport::default();
    let mut switch_seq = 0usize;

    while let Some((endpoint, count)) = find_overloaded(&n) {
        report.rounds += 1;
        let name = fresh_switch_name(&n, &mut switch_seq);
        let spec = SwitchSpec {
            junctions: count + 1,
        };
        let sw = n.add_switch(name, spec).expect("fresh name is unique");
        report.switches_added += 1;

        // decide which switch side faces the overloaded endpoint so that the
        // refined connections keep a consistent left-to-right direction
        let (facing, fanout) = match endpoint {
            Endpoint::Unit {
                side: UnitSide::Right,
                ..
            } => (UnitSide::Left, UnitSide::Right),
            Endpoint::Unit {
                side: UnitSide::Left,
                ..
            } => (UnitSide::Right, UnitSide::Left),
            Endpoint::Port(_) => (UnitSide::Left, UnitSide::Right),
        };

        // redirect every connection that used the endpoint
        let refined = redirect_connections(&mut n, endpoint, sw, fanout);
        report.refined_connections += refined;
        // and connect the endpoint itself to the switch once
        n.connect(
            endpoint,
            Endpoint::Unit {
                component: sw,
                side: facing,
            },
        )
        .expect("endpoint and fresh switch differ");
    }
    (n, report)
}

/// The first port or non-switch unit side used by more than one connection,
/// with its use count.
fn find_overloaded(n: &Netlist) -> Option<(Endpoint, usize)> {
    let mut uses: HashMap<Endpoint, usize> = HashMap::new();
    let mut order: Vec<Endpoint> = Vec::new();
    for c in n.connections() {
        for e in [c.from, c.to] {
            let counts = match e {
                Endpoint::Unit { component, .. } => {
                    !matches!(n.component(component).kind, ComponentKind::Switch(_))
                }
                Endpoint::Port(_) => true,
            };
            if counts {
                let slot = uses.entry(e).or_insert(0);
                if *slot == 0 {
                    order.push(e);
                }
                *slot += 1;
            }
        }
    }
    order.into_iter().find_map(|e| {
        let c = uses[&e];
        (c > 1).then_some((e, c))
    })
}

/// Replaces `endpoint` with the switch's `fanout` side in every connection
/// that references it; returns how many connections were refined.
fn redirect_connections(
    n: &mut Netlist,
    endpoint: Endpoint,
    sw: ComponentId,
    fanout: UnitSide,
) -> usize {
    let replacement = Endpoint::Unit {
        component: sw,
        side: fanout,
    };
    // Netlist has no connection-rewrite API by design (connections are
    // append-only handles for users), so rebuild it.
    let rebuilt: Vec<Connection> = n
        .connections()
        .iter()
        .map(|c| Connection {
            from: if c.from == endpoint {
                replacement
            } else {
                c.from
            },
            to: if c.to == endpoint { replacement } else { c.to },
        })
        .collect();
    let refined = n
        .connections()
        .iter()
        .map(|c| usize::from(c.from == endpoint) + usize::from(c.to == endpoint))
        .sum();
    replace_connections(n, rebuilt);
    refined
}

/// Swaps out the whole connection list (helper because `Netlist` only
/// exposes append).
fn replace_connections(n: &mut Netlist, conns: Vec<Connection>) {
    let mut fresh = Netlist::new(n.name.clone());
    fresh.mux_count = n.mux_count;
    for c in n.components() {
        fresh
            .add_component(c.name.clone(), c.kind)
            .expect("names were unique");
    }
    for p in n.ports() {
        fresh.add_port(p.clone()).expect("names were unique");
    }
    for c in conns {
        fresh
            .connect(c.from, c.to)
            .expect("rebuilt connections are distinct");
    }
    for g in n.parallel_groups() {
        fresh
            .add_parallel_group(g.clone())
            .expect("groups were valid");
    }
    *n = fresh;
}

fn fresh_switch_name(n: &Netlist, seq: &mut usize) -> String {
    loop {
        let name = format!("sw{}", *seq);
        *seq += 1;
        if n.component_by_name(&name).is_none() && n.port_by_name(&name).is_none() {
            return name;
        }
    }
}

/// Heuristic crossing count for point-to-point nets under straight
/// horizontal routing: orders the units and ports by a BFS layering of the
/// connection graph and counts pairs of connections whose endpoint order
/// inverts. Zero means the straight discipline needs no further rerouting;
/// a positive value flags netlists that would need Columba 2.0's
/// crossing-minimisation ILP (out of scope here, see crate docs).
#[must_use]
pub fn crossing_estimate(n: &Netlist) -> usize {
    // index endpoints: components then ports
    let comp_base = 0usize;
    let port_base = n.components().len();
    let total = port_base + n.ports().len();
    let idx = |e: &Endpoint| -> usize {
        match e {
            Endpoint::Unit { component, .. } => comp_base + component.0,
            Endpoint::Port(PortId(p)) => port_base + p,
        }
    };
    // directed longest-path layering (connections run source -> sink);
    // relaxation is capped so cyclic netlists terminate with a coarse layering
    let edges: Vec<(usize, usize)> = n
        .connections()
        .iter()
        .map(|c| (idx(&c.from), idx(&c.to)))
        .collect();
    let mut layer = vec![0usize; total];
    for _ in 0..total.max(1) {
        let mut changed = false;
        for &(a, b) in &edges {
            if layer[b] < layer[a] + 1 {
                layer[b] = layer[a] + 1;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    // order within a layer = discovery index; count inversions between
    // connections bridging the same pair of layers
    let mut crossings = 0usize;
    let conns: Vec<(usize, usize)> = n
        .connections()
        .iter()
        .map(|c| {
            let (a, b) = (idx(&c.from), idx(&c.to));
            if layer[a] <= layer[b] {
                (a, b)
            } else {
                (b, a)
            }
        })
        .collect();
    for (i, &(a1, b1)) in conns.iter().enumerate() {
        for &(a2, b2) in &conns[i + 1..] {
            if layer[a1] == layer[a2] && layer[b1] == layer[b2] && layer[a1] != layer[b1] {
                let inverted = (a1 < a2) != (b1 < b2) && a1 != a2 && b1 != b2;
                if inverted {
                    crossings += 1;
                }
            }
        }
    }
    crossings
}

#[cfg(test)]
mod tests {
    use super::*;
    use columba_netlist::{generators, ChamberSpec, MixerSpec, MuxCount};

    #[test]
    fn already_planar_netlist_untouched() {
        let mut n = Netlist::new("chain");
        let m = n.add_mixer("m1", MixerSpec::default()).unwrap();
        let c = n.add_chamber("c1", ChamberSpec::default()).unwrap();
        let p = n.add_port("in").unwrap();
        n.connect(
            Endpoint::Port(p),
            Endpoint::Unit {
                component: m,
                side: UnitSide::Left,
            },
        )
        .unwrap();
        n.connect(
            Endpoint::Unit {
                component: m,
                side: UnitSide::Right,
            },
            Endpoint::Unit {
                component: c,
                side: UnitSide::Left,
            },
        )
        .unwrap();
        let (out, report) = planarize(&n);
        assert_eq!(out, n);
        assert_eq!(report, PlanarizeReport::default());
    }

    #[test]
    fn fanout_gets_one_switch() {
        let n = generators::chip_ip(4, MuxCount::One);
        let (out, report) = planarize(&n);
        out.validate_planarized().unwrap();
        // exactly one multi-way net: pre.right fans out to 4 lanes
        assert_eq!(report.switches_added, 1);
        assert_eq!(out.switch_count(), 1);
        // switch junctions = fan-out + the feeding connection
        let sw = out
            .components()
            .iter()
            .find(|c| matches!(c.kind, ComponentKind::Switch(_)))
            .unwrap();
        let ComponentKind::Switch(spec) = sw.kind else {
            unreachable!()
        };
        assert_eq!(spec.junctions, 5);
        // connection count grows by exactly one per switch
        assert_eq!(out.connections().len(), n.connections().len() + 1);
    }

    #[test]
    fn shared_port_and_shared_side_both_resolved() {
        let n = generators::mrna_isolation(MuxCount::Two);
        // lysis port is shared AND each capture mixer left side is doubly used
        let (out, report) = planarize(&n);
        out.validate_planarized().unwrap();
        assert!(
            report.switches_added >= 2,
            "shared port + two overloaded sides"
        );
        assert_eq!(out.functional_unit_count(), n.functional_unit_count());
        assert_eq!(out.parallel_groups(), n.parallel_groups());
    }

    #[test]
    fn all_table1_cases_planarize() {
        for (label, n) in generators::table1_cases(MuxCount::One) {
            let (out, _) = planarize(&n);
            out.validate_planarized()
                .unwrap_or_else(|e| panic!("{label}: {e}"));
            assert_eq!(
                out.functional_unit_count(),
                n.functional_unit_count(),
                "{label}: planarization must not change #u"
            );
        }
    }

    #[test]
    fn planarize_is_idempotent() {
        let n = generators::chip_ip(8, MuxCount::One);
        let (once, _) = planarize(&n);
        let (twice, report) = planarize(&once);
        assert_eq!(once, twice);
        assert_eq!(report.switches_added, 0);
    }

    #[test]
    fn switch_name_collisions_avoided() {
        let mut n = Netlist::new("tricky");
        let m = n.add_mixer("sw0", MixerSpec::default()).unwrap(); // squat the name
        let a = n.add_chamber("a", ChamberSpec::default()).unwrap();
        let b = n.add_chamber("b", ChamberSpec::default()).unwrap();
        n.connect(
            Endpoint::Unit {
                component: m,
                side: UnitSide::Right,
            },
            Endpoint::Unit {
                component: a,
                side: UnitSide::Left,
            },
        )
        .unwrap();
        n.connect(
            Endpoint::Unit {
                component: m,
                side: UnitSide::Right,
            },
            Endpoint::Unit {
                component: b,
                side: UnitSide::Left,
            },
        )
        .unwrap();
        let (out, _) = planarize(&n);
        out.validate_planarized().unwrap();
        assert!(
            out.component_by_name("sw1").is_some(),
            "skipped the squatted name"
        );
    }

    #[test]
    fn crossing_estimate_zero_for_chains() {
        let n = generators::kinase_activity(MuxCount::One);
        let (planar, _) = planarize(&n);
        assert_eq!(crossing_estimate(&planar), 0);
    }
}
