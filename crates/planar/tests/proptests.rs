//! Property tests: planarization always produces a synthesis-ready netlist.

use columba_netlist::generators::random_netlist;
use columba_planar::planarize;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn planarize_resolves_every_random_netlist(seed in any::<u64>(), units in 1usize..40) {
        let mut rng = StdRng::seed_from_u64(seed);
        let raw = random_netlist(&mut rng, units);
        let (planar, report) = planarize(&raw);

        planar.validate_planarized().expect("planarized netlist is synthesis-ready");
        prop_assert_eq!(planar.functional_unit_count(), raw.functional_unit_count());
        prop_assert_eq!(planar.switch_count(), raw.switch_count() + report.switches_added);
        // each inserted switch adds exactly one connection
        prop_assert_eq!(
            planar.connections().len(),
            raw.connections().len() + report.switches_added
        );
        // ports and parallel structure survive untouched
        prop_assert_eq!(planar.ports(), raw.ports());
        prop_assert_eq!(planar.parallel_groups(), raw.parallel_groups());

        // idempotence
        let (again, second) = planarize(&planar);
        prop_assert_eq!(&again, &planar);
        prop_assert_eq!(second.switches_added, 0);
    }

    #[test]
    fn planarized_netlists_round_trip_via_text(seed in any::<u64>(), units in 1usize..20) {
        let mut rng = StdRng::seed_from_u64(seed);
        let raw = random_netlist(&mut rng, units);
        let (planar, _) = planarize(&raw);
        let parsed = columba_netlist::Netlist::parse(&planar.to_text())
            .expect("planarized netlist serialises to parseable text");
        prop_assert_eq!(parsed, planar);
    }
}
