//! Randomized tests: planarization always produces a synthesis-ready
//! netlist. Seeded with the internal PRNG so runs are reproducible and the
//! workspace stays free of registry dependencies.

use columba_netlist::generators::random_netlist;
use columba_netlist::prng::Rng;
use columba_planar::planarize;

#[test]
fn planarize_resolves_every_random_netlist() {
    let mut seed_rng = Rng::seed_from_u64(0xC01_0B45);
    for case in 0..128 {
        let seed = seed_rng.next_u64();
        let units = 1 + (case % 39);
        let mut rng = Rng::seed_from_u64(seed);
        let raw = random_netlist(&mut rng, units);
        let (planar, report) = planarize(&raw);

        planar.validate_planarized().unwrap_or_else(|e| {
            panic!("seed {seed} units {units}: planarized netlist not ready: {e}")
        });
        assert_eq!(planar.functional_unit_count(), raw.functional_unit_count());
        assert_eq!(
            planar.switch_count(),
            raw.switch_count() + report.switches_added
        );
        // each inserted switch adds exactly one connection
        assert_eq!(
            planar.connections().len(),
            raw.connections().len() + report.switches_added
        );
        // ports and parallel structure survive untouched
        assert_eq!(planar.ports(), raw.ports());
        assert_eq!(planar.parallel_groups(), raw.parallel_groups());

        // idempotence
        let (again, second) = planarize(&planar);
        assert_eq!(again, planar);
        assert_eq!(second.switches_added, 0);
    }
}

#[test]
fn planarized_netlists_round_trip_via_text() {
    let mut seed_rng = Rng::seed_from_u64(0x707_1E57);
    for case in 0..64 {
        let seed = seed_rng.next_u64();
        let units = 1 + (case % 19);
        let mut rng = Rng::seed_from_u64(seed);
        let raw = random_netlist(&mut rng, units);
        let (planar, _) = planarize(&raw);
        let parsed = columba_netlist::Netlist::parse(&planar.to_text())
            .expect("planarized netlist serialises to parseable text");
        assert_eq!(parsed, planar);
    }
}
