//! CAD writers: AutoCAD script, DXF and SVG export (paper §3.3).
//!
//! Columba S "outputs the physical synthesis results as an AutoCAD script
//! file, which can be directly exported for mask fabrication". This crate
//! renders a [`Design`] into:
//!
//! * an AutoCAD `.scr` command script ([`write_scr`]) drawing each layer as
//!   `RECTANG`/`PLINE` commands with layer switches,
//! * a minimal ASCII DXF ([`write_dxf`]) with `FLOW`, `CONTROL`, `VALVE`
//!   and `INLET` layers,
//! * an SVG ([`write_svg`]) for quick visual inspection (flow in blue,
//!   control in green, as in the paper's figures).
//!
//! # Examples
//!
//! ```
//! use columba_cad::write_svg;
//! use columba_design::Design;
//! use columba_geom::{Rect, Um};
//!
//! let design = Design::new("empty", Rect::new(Um(0), Um(1_000), Um(0), Um(1_000)));
//! let mut out = Vec::new();
//! write_svg(&design, &mut out)?;
//! assert!(String::from_utf8(out)?.contains("<svg"));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::io::{self, Write};

use columba_design::{ChannelRole, Design, InletKind};
use columba_geom::{Layer, Rect, Um};

/// The drawing layer a design object belongs to.
fn layer_name(layer: Layer) -> &'static str {
    match layer {
        Layer::Flow => "FLOW",
        Layer::Control => "CONTROL",
    }
}

fn mm(v: Um) -> f64 {
    v.to_mm()
}

/// Writes an AutoCAD command script (`.scr`) reproducing the design.
///
/// The script creates one layer per object class and draws every channel
/// segment, valve pad, module outline and inlet. Feed it to AutoCAD's
/// `SCRIPT` command; units are millimetres.
///
/// # Errors
///
/// Propagates I/O errors from `out`. Pass `&mut` references for writers you
/// want to keep.
pub fn write_scr<W: Write>(design: &Design, out: W) -> io::Result<()> {
    let mut w = io::BufWriter::new(out);
    writeln!(w, "; Columba S synthesis result: {}", design.name)?;
    writeln!(w, "; units: millimetres")?;
    writeln!(w, "-OSNAP OFF")?;
    for (name, color) in [
        ("OUTLINE", 7),
        ("MODULE", 8),
        ("FLOW", 5),
        ("CONTROL", 3),
        ("VALVE", 1),
        ("INLET", 2),
    ] {
        writeln!(w, "-LAYER M {name} C {color} {name}\n")?;
    }
    let rect_cmd = |w: &mut io::BufWriter<W>, layer: &str, r: &Rect| -> io::Result<()> {
        writeln!(w, "-LAYER S {layer}\n")?;
        writeln!(
            w,
            "RECTANG {:.4},{:.4} {:.4},{:.4}",
            mm(r.x_l()),
            mm(r.y_b()),
            mm(r.x_r()),
            mm(r.y_t())
        )
    };
    rect_cmd(&mut w, "OUTLINE", &design.chip)?;
    for m in &design.modules {
        rect_cmd(&mut w, "MODULE", &m.rect)?;
    }
    for c in &design.channels {
        let layer = layer_name(c.layer());
        writeln!(w, "-LAYER S {layer}\n")?;
        for s in &c.path {
            writeln!(
                w,
                "PLINE W {:.4} {:.4} {:.4},{:.4} {:.4},{:.4}\n",
                mm(s.width()),
                mm(s.width()),
                mm(s.start().x),
                mm(s.start().y),
                mm(s.end().x),
                mm(s.end().y)
            )?;
        }
    }
    for v in &design.valves {
        rect_cmd(&mut w, "VALVE", &v.rect)?;
    }
    writeln!(w, "-LAYER S INLET\n")?;
    for i in &design.inlets {
        writeln!(
            w,
            "CIRCLE {:.4},{:.4} 0.3",
            mm(i.position.x),
            mm(i.position.y)
        )?;
    }
    writeln!(w, "ZOOM E")?;
    w.flush()
}

/// Writes a minimal ASCII DXF (R12 entity section) of the design.
///
/// # Errors
///
/// Propagates I/O errors from `out`.
pub fn write_dxf<W: Write>(design: &Design, out: W) -> io::Result<()> {
    let mut w = io::BufWriter::new(out);
    writeln!(w, "0\nSECTION\n2\nENTITIES")?;
    let rect = |w: &mut io::BufWriter<W>, layer: &str, r: &Rect| -> io::Result<()> {
        // closed polyline
        writeln!(w, "0\nPOLYLINE\n8\n{layer}\n66\n1\n70\n1")?;
        for (x, y) in [
            (r.x_l(), r.y_b()),
            (r.x_r(), r.y_b()),
            (r.x_r(), r.y_t()),
            (r.x_l(), r.y_t()),
        ] {
            writeln!(
                w,
                "0\nVERTEX\n8\n{layer}\n10\n{:.4}\n20\n{:.4}",
                mm(x),
                mm(y)
            )?;
        }
        writeln!(w, "0\nSEQEND")
    };
    rect(&mut w, "OUTLINE", &design.chip)?;
    for m in &design.modules {
        rect(&mut w, "MODULE", &m.rect)?;
    }
    for c in &design.channels {
        let layer = layer_name(c.layer());
        for s in &c.path {
            rect(&mut w, layer, &s.to_rect())?;
        }
    }
    for v in &design.valves {
        rect(&mut w, "VALVE", &v.rect)?;
    }
    for i in &design.inlets {
        writeln!(
            w,
            "0\nCIRCLE\n8\nINLET\n10\n{:.4}\n20\n{:.4}\n40\n0.3",
            mm(i.position.x),
            mm(i.position.y)
        )?;
    }
    writeln!(w, "0\nENDSEC\n0\nEOF")?;
    w.flush()
}

/// Writes an SVG rendering: flow channels blue, control channels green,
/// valves orange, modules grey outlines, fluid inlets blue dots, pressure
/// inlets green dots — matching the colour language of the paper's figures.
///
/// # Errors
///
/// Propagates I/O errors from `out`.
pub fn write_svg<W: Write>(design: &Design, out: W) -> io::Result<()> {
    let mut w = io::BufWriter::new(out);
    let c = design.chip;
    let (w_mm, h_mm) = (mm(c.width()), mm(c.height()));
    // y flips: SVG grows downward
    let flip = |y: Um| mm(c.y_t()) - mm(y);
    writeln!(
        w,
        r#"<svg xmlns="http://www.w3.org/2000/svg" viewBox="0 0 {w_mm:.3} {h_mm:.3}" width="{:.0}" height="{:.0}">"#,
        w_mm * 10.0,
        h_mm * 10.0
    )?;
    writeln!(
        w,
        r##"<rect x="0" y="0" width="{w_mm:.3}" height="{h_mm:.3}" fill="#fcfcf7" stroke="#444" stroke-width="0.08"/>"##
    )?;
    let rect = |w: &mut io::BufWriter<W>, r: &Rect, style: &str| -> io::Result<()> {
        writeln!(
            w,
            r#"<rect x="{:.3}" y="{:.3}" width="{:.3}" height="{:.3}" {style}/>"#,
            mm(r.x_l()) - mm(c.x_l()),
            flip(r.y_t()),
            mm(r.width()),
            mm(r.height())
        )
    };
    for m in &design.modules {
        rect(
            &mut w,
            &m.rect,
            r##"fill="none" stroke="#999" stroke-width="0.05""##,
        )?;
    }
    let seg_style = |role: ChannelRole| match role.layer() {
        Layer::Flow => r##"fill="#3b6fd4""##,
        Layer::Control => r##"fill="#2f9e44""##,
    };
    for ch in &design.channels {
        let style = seg_style(ch.role);
        for s in &ch.path {
            rect(&mut w, &s.to_rect(), style)?;
        }
    }
    for v in &design.valves {
        rect(&mut w, &v.rect, r##"fill="#e8590c" fill-opacity="0.9""##)?;
    }
    for i in &design.inlets {
        let fill = match i.kind {
            InletKind::Fluid => "#1c4fa0",
            InletKind::Pressure => "#1f7a33",
        };
        writeln!(
            w,
            r#"<circle cx="{:.3}" cy="{:.3}" r="0.3" fill="{fill}"/>"#,
            mm(i.position.x) - mm(c.x_l()),
            flip(i.position.y)
        )?;
    }
    writeln!(w, "</svg>")?;
    w.flush()
}

/// Convenience: renders all three formats into strings.
///
/// # Errors
///
/// Never fails in practice (in-memory writers); returns `io::Error` for API
/// symmetry.
pub fn render_all(design: &Design) -> io::Result<(String, String, String)> {
    let mut scr = Vec::new();
    let mut dxf = Vec::new();
    let mut svg = Vec::new();
    write_scr(design, &mut scr)?;
    write_dxf(design, &mut dxf)?;
    write_svg(design, &mut svg)?;
    let decode = |v: Vec<u8>| String::from_utf8(v).expect("writers emit UTF-8");
    Ok((decode(scr), decode(dxf), decode(svg)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use columba_design::{Channel, Inlet, Valve, ValveKind};
    use columba_geom::Segment;
    use columba_geom::{Point, Side};

    fn sample() -> Design {
        let mut d = Design::new("demo", Rect::new(Um(0), Um(10_000), Um(0), Um(8_000)));
        d.modules.push(columba_design::PlacedModule {
            component: columba_netlist_component(),
            name: "m1".into(),
            rect: Rect::new(Um(1_000), Um(4_000), Um(1_000), Um(2_500)),
        });
        let ch = d.add_channel(Channel::straight(
            ChannelRole::FlowTransport,
            Segment::horizontal(Um(1_750), Um(4_000), Um(9_000), Um(100)),
            None,
        ));
        d.add_channel(Channel::straight(
            ChannelRole::Control,
            Segment::vertical(Um(2_000), Um(0), Um(1_000), Um(100)),
            None,
        ));
        d.add_valve(Valve {
            kind: ValveKind::Isolation,
            rect: Rect::new(Um(4_500), Um(4_700), Um(1_650), Um(1_850)),
            control: None,
            blocks: Some(ch),
            owner: None,
        });
        d.add_inlet(Inlet {
            name: "in".into(),
            position: Point::new(Um(0), Um(1_750)),
            kind: InletKind::Fluid,
            side: Side::Left,
        });
        d.add_inlet(Inlet {
            name: "p".into(),
            position: Point::new(Um(2_000), Um(0)),
            kind: InletKind::Pressure,
            side: Side::Bottom,
        });
        d
    }

    fn columba_netlist_component() -> columba_netlist::ComponentId {
        columba_netlist::ComponentId(0)
    }

    #[test]
    fn scr_contains_layers_and_shapes() {
        let (scr, _, _) = render_all(&sample()).unwrap();
        for token in [
            "-LAYER M FLOW",
            "-LAYER M CONTROL",
            "RECTANG",
            "PLINE",
            "CIRCLE",
            "ZOOM E",
        ] {
            assert!(scr.contains(token), "missing {token} in:\n{scr}");
        }
        // millimetre coordinates
        assert!(scr.contains("4.0000"), "module boundary at 4mm");
    }

    #[test]
    fn dxf_is_structured() {
        let (_, dxf, _) = render_all(&sample()).unwrap();
        assert!(dxf.starts_with("0\nSECTION"));
        assert!(dxf.trim_end().ends_with("EOF"));
        assert!(
            dxf.matches("POLYLINE").count() >= 4,
            "outline + module + channels + valve"
        );
        assert_eq!(dxf.matches("CIRCLE").count(), 2);
    }

    #[test]
    fn svg_uses_paper_colours() {
        let (_, _, svg) = render_all(&sample()).unwrap();
        assert!(svg.contains("#3b6fd4"), "flow channels in blue");
        assert!(svg.contains("#2f9e44"), "control channels in green");
        assert!(svg.contains("#e8590c"), "valves in orange");
        assert!(svg.contains("</svg>"));
    }

    #[test]
    fn empty_design_renders() {
        let d = Design::new("empty", Rect::new(Um(0), Um(100), Um(0), Um(100)));
        let (scr, dxf, svg) = render_all(&d).unwrap();
        assert!(!scr.is_empty() && !dxf.is_empty() && !svg.is_empty());
    }
}
