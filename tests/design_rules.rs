//! Invariant checks on synthesized designs: the Columba S architectural
//! framework and routing discipline (paper §2), verified from raw geometry.

use columba_s::design::ChannelRole;
use columba_s::geom::Orientation;
use columba_s::netlist::{generators, MuxCount};
use columba_s::{Columba, LayoutOptions, SynthesisOptions};

fn synth(netlist: &columba_s::Netlist) -> columba_s::SynthesisOutcome {
    Columba::with_options(SynthesisOptions {
        layout: LayoutOptions {
            time_limit: std::time::Duration::from_secs(2),
            ..LayoutOptions::default()
        },
        ..SynthesisOptions::default()
    })
    .synthesize(netlist)
    .expect("synthesis succeeds")
}

#[test]
fn straight_routing_discipline_holds() {
    let out = synth(&generators::chip_ip(8, MuxCount::Two));
    for c in &out.design.channels {
        match c.role {
            ChannelRole::FlowTransport => {
                assert_eq!(c.path.len(), 1);
                assert_eq!(c.path[0].orientation(), Orientation::Horizontal);
            }
            ChannelRole::Control => {
                assert_eq!(c.path.len(), 1);
                if c.path[0].length().raw() > 0 {
                    assert_eq!(c.path[0].orientation(), Orientation::Vertical);
                }
            }
            _ => {}
        }
    }
}

#[test]
fn functional_region_holds_all_modules() {
    let out = synth(&generators::columba2_case(MuxCount::One));
    let fr = out.design.functional_region;
    for m in &out.design.modules {
        assert!(
            fr.contains_rect(&m.rect),
            "module `{}` outside the functional region",
            m.name
        );
    }
}

#[test]
fn mux_regions_are_outside_the_functional_region() {
    let out = synth(&generators::chip_ip(4, MuxCount::Two));
    let fr = out.design.functional_region;
    for mux in &out.design.muxes {
        assert!(
            !mux.region.overlaps(&fr),
            "MUX region must flank the functional region"
        );
    }
    // every MUX valve sits in a MUX region
    for mux in &out.design.muxes {
        for mv in &mux.valves {
            let pad = &out.design.valve(mv.valve).rect;
            assert!(mux.region.contains_rect(pad), "MUX valve inside its region");
        }
    }
}

#[test]
fn flow_length_accounting_excludes_mux_and_internal() {
    let out = synth(&generators::kinase_activity(MuxCount::One));
    let s = out.stats();
    let by_hand: i64 = out
        .design
        .channels
        .iter()
        .filter(|c| c.role == ChannelRole::FlowTransport)
        .map(|c| c.length().raw())
        .sum();
    assert_eq!(s.flow_channel_length.raw(), by_hand);
    // MUX-flow and internal channels exist but are excluded
    assert!(out
        .design
        .channels
        .iter()
        .any(|c| c.role == ChannelRole::MuxFlow));
    assert!(out
        .design
        .channels
        .iter()
        .any(|c| c.role == ChannelRole::InternalFlow));
}

#[test]
fn one_mux_design_routes_everything_down() {
    let out = synth(&generators::chip_ip(4, MuxCount::One));
    let fr = out.design.functional_region;
    for (_, c) in out.design.channels_with_role(ChannelRole::Control) {
        let seg = c.path[0];
        let low = seg.start().y.min(seg.end().y);
        assert!(
            low < fr.y_b() + columba_s::geom::Um(1),
            "control channel reaches the bottom MUX"
        );
    }
}

#[test]
fn parallel_groups_share_columns_exactly() {
    let out = synth(&generators::chip_ip(16, MuxCount::One));
    // every shared line's valves belong to modules stacked at one x column
    for line in &out.design.control_lines {
        if line.valves.len() < 2 {
            continue;
        }
        let xs: Vec<i64> = line
            .valves
            .iter()
            .map(|&v| {
                let r = &out.design.valve(v).rect;
                (r.x_l().raw() + r.x_r().raw()) / 2
            })
            .collect();
        assert!(
            xs.windows(2).all(|w| w[0] == w[1]),
            "shared line `{}` valves align on one control column",
            line.name
        );
    }
}

#[test]
fn switch_covers_its_junction_channels() {
    let out = synth(&generators::chip_ip(4, MuxCount::One));
    let d = &out.design;
    let sw = d
        .modules
        .iter()
        .find(|m| m.name.starts_with("sw"))
        .expect("switch placed");
    // every transport channel touching the switch boundary ends at a
    // junction y strictly inside the switch's vertical extent
    for c in &d.channels {
        if c.role != ChannelRole::FlowTransport {
            continue;
        }
        let seg = c.path[0];
        let touches_switch = seg.start().x == sw.rect.x_r() || seg.end().x == sw.rect.x_l();
        if touches_switch {
            let y = seg.start().y;
            assert!(
                y > sw.rect.y_b() && y < sw.rect.y_t(),
                "junction at {y} outside switch {}",
                sw.rect
            );
        }
    }
}
