//! Property test across the whole pipeline: random netlists synthesize to
//! DRC-clean designs whose simulator agrees with the multiplexer logic.

use columba_s::netlist::generators::random_netlist;
use columba_s::sim::Simulator;
use columba_s::{Columba, LayoutOptions, SynthesisOptions};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn random_netlists_full_flow(seed in 0u64..5_000, units in 1usize..14) {
        let mut rng = StdRng::seed_from_u64(seed);
        let netlist = random_netlist(&mut rng, units);
        let flow = Columba::with_options(SynthesisOptions {
            layout: LayoutOptions {
                time_limit: std::time::Duration::from_secs(2),
                node_limit: 200,
                ..LayoutOptions::default()
            },
            ..SynthesisOptions::default()
        });
        let out = flow.synthesize(&netlist).expect("random netlist synthesizes");
        prop_assert!(out.drc.is_clean(), "{}", out.drc);
        prop_assert_eq!(
            out.design.modules.len(),
            netlist.functional_unit_count() + out.planarize.switches_added
        );
        // when any control lines exist, the simulator must accept the design
        if !out.design.control_lines.is_empty() {
            let mut sim = Simulator::new(&out.design).expect("lines muxed");
            // spot-check the first and last line
            sim.actuate(0, true).expect("first line actuates");
            let last = sim.line_count() - 1;
            sim.actuate(last, true).expect("last line actuates");
        }
    }
}
