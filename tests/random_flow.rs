//! Randomized test across the whole pipeline: random netlists synthesize to
//! DRC-clean designs whose simulator agrees with the multiplexer logic.
//! Seeded with the internal PRNG so every run covers the same cases.

use columba_prng::Rng;
use columba_s::netlist::generators::random_netlist;
use columba_s::sim::Simulator;
use columba_s::{Columba, LayoutOptions, SynthesisOptions};

#[test]
fn random_netlists_full_flow() {
    let mut seed_rng = Rng::seed_from_u64(0xF10);
    for case in 0..12 {
        let seed = seed_rng.next_u64();
        let units = 1 + (case % 13);
        let mut rng = Rng::seed_from_u64(seed);
        let netlist = random_netlist(&mut rng, units);
        let flow = Columba::with_options(SynthesisOptions {
            layout: LayoutOptions {
                time_limit: std::time::Duration::from_secs(2),
                node_limit: 200,
                ..LayoutOptions::default()
            },
            ..SynthesisOptions::default()
        });
        let out = flow
            .synthesize(&netlist)
            .expect("random netlist synthesizes");
        assert!(out.drc.is_clean(), "seed {seed} units {units}: {}", out.drc);
        assert_eq!(
            out.design.modules.len(),
            netlist.functional_unit_count() + out.planarize.switches_added
        );
        // when any control lines exist, the simulator must accept the design
        if !out.design.control_lines.is_empty() {
            let mut sim = Simulator::new(&out.design).expect("lines muxed");
            // spot-check the first and last line
            sim.actuate(0, true).expect("first line actuates");
            let last = sim.line_count() - 1;
            sim.actuate(last, true).expect("last line actuates");
        }
    }
}
