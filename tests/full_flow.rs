//! Cross-crate integration: the complete Columba S flow on the paper's
//! test cases, cross-checked between layout, DRC, multiplexer logic, the
//! simulator and the CAD writers.

use columba_s::design::{InletKind, ValveKind};
use columba_s::milp::SolveStatus;
use columba_s::mux::required_inlets;
use columba_s::netlist::{generators, MuxCount};
use columba_s::sim::Simulator;
use columba_s::{Columba, LayoutOptions, SynthesisOptions};

fn quick_flow() -> Columba {
    Columba::with_options(SynthesisOptions {
        layout: LayoutOptions {
            time_limit: std::time::Duration::from_secs(3),
            ..LayoutOptions::default()
        },
        ..SynthesisOptions::default()
    })
}

#[test]
fn all_table1_cases_synthesize_clean_one_mux() {
    let flow = quick_flow();
    for (label, netlist) in generators::table1_cases(MuxCount::One) {
        let out = flow
            .synthesize(&netlist)
            .unwrap_or_else(|e| panic!("{label}: {e}"));
        assert!(out.drc.is_clean(), "{label}: {}", out.drc);
        assert_eq!(out.design.muxes.len(), 1, "{label}");
        let s = out.stats();
        // the multiplexing formula of §2.2 ties inlets to line count
        let n = out.design.muxes[0].controlled.len();
        assert_eq!(s.control_inlets, required_inlets(n), "{label}");
        assert!(s.flow_channel_length.raw() > 0, "{label}");
        assert_eq!(
            out.design.modules.len(),
            netlist.functional_unit_count() + out.planarize.switches_added,
            "{label}: one placed module per unit and switch"
        );
    }
}

#[test]
fn two_mux_designs_split_lines_and_stay_clean() {
    let flow = quick_flow();
    for (label, netlist) in generators::table1_cases(MuxCount::Two) {
        // the two large cases are covered in the 1-MUX test; keep CI fast
        if netlist.functional_unit_count() > 130 {
            continue;
        }
        let out = flow
            .synthesize(&netlist)
            .unwrap_or_else(|e| panic!("{label}: {e}"));
        assert!(out.drc.is_clean(), "{label}: {}", out.drc);
        assert_eq!(out.design.muxes.len(), 2, "{label}: bottom and top MUX");
        let total: usize = out.design.muxes.iter().map(|m| m.controlled.len()).sum();
        assert_eq!(total, out.design.control_lines.len(), "{label}");
        let s = out.stats();
        let expected: usize = out.design.muxes.iter().map(|m| m.inlet_count()).sum();
        assert_eq!(s.control_inlets, expected, "{label}");
    }
}

#[test]
fn chip64_matches_paper_inlet_counts() {
    // the paper's Table 1 reports 17 control inlets for ChIP64 1-MUX and
    // 28 for 2-MUX; our reconstruction reproduces both exactly
    let flow = quick_flow();
    let one = flow
        .synthesize(&generators::chip_ip(64, MuxCount::One))
        .unwrap();
    assert_eq!(one.stats().control_inlets, 17);
    let two = flow
        .synthesize(&generators::chip_ip(64, MuxCount::Two))
        .unwrap();
    assert_eq!(two.stats().control_inlets, 28);
}

#[test]
fn every_control_line_is_addressable_and_blocks_fluid() {
    let flow = quick_flow();
    let out = flow
        .synthesize(&generators::chip_ip(4, MuxCount::One))
        .unwrap();
    let design = &out.design;
    let mut sim = Simulator::new(design).expect("all lines muxed");
    assert_eq!(sim.line_count(), design.control_lines.len());
    // actuate and vent every single line: the MUX must isolate each one
    for li in 0..sim.line_count() {
        let ev = sim
            .actuate(li, true)
            .unwrap_or_else(|e| panic!("line {li}: {e}"));
        assert_eq!(ev.line, li);
        sim.actuate(li, false).unwrap();
    }
    assert_eq!(sim.elapsed_ms(), 2 * 10 * sim.line_count() as u64);
}

#[test]
fn valve_accounting_is_consistent() {
    let flow = quick_flow();
    let out = flow
        .synthesize(&generators::kinase_activity(MuxCount::One))
        .unwrap();
    let d = &out.design;
    let mux_valves = d.valves.iter().filter(|v| v.kind == ValveKind::Mux).count();
    let line_valves: usize = d.control_lines.iter().map(|l| l.valves.len()).sum();
    assert_eq!(
        d.valves.len(),
        mux_valves + line_valves,
        "every valve is MUX or line-driven"
    );
    // MUX valve matrix size: n channels x address bits
    let m = &d.muxes[0];
    assert_eq!(m.valves.len(), m.controlled.len() * m.bits());
    assert_eq!(mux_valves, m.valves.len());
}

#[test]
fn fluid_inlets_match_port_connections() {
    let flow = quick_flow();
    let netlist = generators::chip_ip(4, MuxCount::One);
    let out = flow.synthesize(&netlist).unwrap();
    let fluid = out
        .design
        .inlets
        .iter()
        .filter(|i| i.kind == InletKind::Fluid)
        .count();
    assert_eq!(fluid, netlist.ports().len(), "one fluid inlet per port");
    // inlet names carry the port names through
    for p in netlist.ports() {
        assert!(
            out.design.inlets.iter().any(|i| &i.name == p),
            "port `{p}` has an inlet"
        );
    }
}

#[test]
fn cad_outputs_are_complete() {
    let flow = quick_flow();
    let out = flow
        .synthesize(&generators::kinase_activity(MuxCount::Two))
        .unwrap();
    let scr = out.to_autocad_script().unwrap();
    let svg = out.to_svg().unwrap();
    // every module appears in both outputs
    assert!(scr.matches("RECTANG").count() > out.design.modules.len());
    assert!(svg.matches("<rect").count() > out.design.modules.len());
    let mut dxf = Vec::new();
    columba_s::cad::write_dxf(&out.design, &mut dxf).unwrap();
    assert!(String::from_utf8(dxf).unwrap().ends_with("EOF\n"));
}

#[test]
fn search_mode_beats_or_matches_heuristic_objective() {
    let netlist = generators::chip_ip(4, MuxCount::One);
    let heuristic = Columba::with_options(SynthesisOptions {
        layout: LayoutOptions::heuristic_only(),
        ..SynthesisOptions::default()
    })
    .synthesize(&netlist)
    .unwrap();
    let searched = quick_flow().synthesize(&netlist).unwrap();
    let (h, s) = (
        heuristic.layout.objective.expect("has objective"),
        searched.layout.objective.expect("has objective"),
    );
    assert!(
        s <= h + 1e-6,
        "search {s} must not be worse than heuristic {h}"
    );
    assert!(matches!(
        searched.layout.status,
        SolveStatus::Optimal | SolveStatus::Feasible
    ));
}
