#!/usr/bin/env bash
# The one gate every change must pass, locally and in CI.
#
# The build is hermetic: the workspace has no registry dependencies (the
# internal `columba-prng` crate replaces `rand`, deterministic loops replace
# `proptest`, and the `microbench` binary replaces `criterion`), so every
# cargo invocation runs with `--offline`. If this script fails on a network
# error, a registry dependency has crept back in — remove it.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo build --release --offline"
cargo build --workspace --release --offline

echo "==> cargo test --offline"
cargo test --workspace -q --offline

echo "==> cargo test --features fault-inject (resilience ladder under forced failures)"
cargo test -q --offline -p columba-milp --features fault-inject
cargo test -q --offline -p columba-layout --features fault-inject

echo "All checks passed."
