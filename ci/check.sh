#!/usr/bin/env bash
# The one gate every change must pass, locally and in CI.
#
# Sections (each also a named CI job):
#
#   lint   cargo fmt + clippy with warnings as errors
#   test   release build, workspace tests, fault-inject configurations
#   chaos  crash-point enumeration + fault-injected degrade/heal cycle
#   smoke  HTTP round-trip, batch + SSE, assay front end, observability,
#          restart-recovery
#   perf   bench artifacts vs the committed baselines (ci/perf_gate)
#
#   ci/check.sh                  # everything
#   ci/check.sh --skip-perf      # everything except the perf gate
#   ci/check.sh --only lint      # one section (test/smoke imply the build)
#
# The build is hermetic: the workspace has no registry dependencies (the
# internal `columba-prng` crate replaces `rand`, deterministic loops replace
# `proptest`, and the `microbench` binary replaces `criterion`), so every
# cargo invocation runs with `--offline`. If this script fails on a network
# error, a registry dependency has crept back in — remove it.

set -euo pipefail
cd "$(dirname "$0")/.."

ONLY=""
SKIP_PERF=0
while [ $# -gt 0 ]; do
  case "$1" in
    --only)
      ONLY="${2:?--only requires a section: lint|test|chaos|smoke|perf}"
      shift 2
      ;;
    --skip-perf)
      SKIP_PERF=1
      shift
      ;;
    *)
      echo "usage: ci/check.sh [--only lint|test|chaos|smoke|perf] [--skip-perf]" >&2
      exit 2
      ;;
  esac
done
case "$ONLY" in ""|lint|test|chaos|smoke|perf) ;; *)
  echo "error: unknown section '$ONLY' (want lint|test|chaos|smoke|perf)" >&2
  exit 2
esac

section_lint() {
  echo "==> cargo fmt --check"
  cargo fmt --all -- --check

  echo "==> cargo clippy (warnings are errors)"
  cargo clippy --workspace --all-targets --offline -- -D warnings

  echo "==> raw-time gate (service code must go through the Clock trait)"
  # Every time source in crates/service must be injected via
  # simenv::clock::Clock so the deterministic simulation controls it;
  # a raw Instant::now / SystemTime::now / thread::sleep is a blind
  # spot the chaos runner cannot replay. Only clock.rs (the trait's
  # real implementation) may touch them.
  if grep -rn 'Instant::now\|SystemTime::now\|thread::sleep' \
      crates/service/src --include='*.rs' | grep -v 'simenv/clock\.rs'; then
    echo "error: raw time call in crates/service outside simenv/clock.rs" >&2
    echo "       (inject the Clock trait instead)" >&2
    exit 1
  fi
}

section_build() {
  echo "==> cargo build --release --offline"
  cargo build --workspace --release --offline
}

section_test() {
  echo "==> cargo test --offline"
  cargo test --workspace -q --offline

  echo "==> cargo test -p columba-schedule (assay scheduling + storage synthesis)"
  cargo test -q --offline -p columba-schedule

  echo "==> cargo test --features fault-inject (resilience ladder under forced failures)"
  cargo test -q --offline -p columba-milp --features fault-inject
  cargo test -q --offline -p columba-layout --features fault-inject
  cargo test -q --offline -p columba-service --features fault-inject

  echo "==> cargo build -p columba-obs --no-default-features (allocator tracking compiles out)"
  cargo build -q --offline -p columba-obs --no-default-features
}

section_chaos() {
  echo "==> chaos: crash-point enumeration (SimFs power loss after every storage op)"
  cargo test -q --offline -p columba-service --test crash_points

  echo "==> chaos: degrade/heal cycle + injected persist faults (fault-inject)"
  cargo test -q --offline -p columba-service --features fault-inject \
    --test self_heal --test persist_fault

  echo "==> chaos: readiness gate under a large journal replay"
  cargo test -q --offline -p columba-service --test health

  echo "==> chaos: deterministic whole-service simulation (pinned smoke seeds)"
  # Seeded scenarios over SimFs + SimClock + SimNet; a failing seed
  # prints a single-command reproducer plus a shrunk minimal plan.
  # The nightly CI job sweeps a wide seed range on top of this set.
  cargo run --release --offline -p columba-service --bin columba-chaos -- --smoke
}

# Starts target/release/columba-serve with the given extra flags,
# populates ADDR and SERVE_PID, and installs a kill trap.
serve_start() {
  SERVE_LOG=$(mktemp)
  ./target/release/columba-serve 127.0.0.1:0 --quick --hold "$@" >"$SERVE_LOG" &
  SERVE_PID=$!
  trap 'kill -9 "$SERVE_PID" 2>/dev/null || true' EXIT
  ADDR=""
  for _ in $(seq 1 100); do
    ADDR=$(sed -n 's/^listening on //p' "$SERVE_LOG")
    [ -n "$ADDR" ] && break
    sleep 0.1
  done
  [ -n "$ADDR" ] || { echo "server never bound"; exit 1; }
}

smoke_post() {
  curl -sfS -X POST --data-binary @cases/chip4ip.netlist "http://$ADDR/synthesize" \
    | awk '$1=="id"{print $2}'
}

smoke_poll_done() {
  for _ in $(seq 1 240); do
    STATUS=$(curl -sfS "http://$ADDR/jobs/$1")
    case $(printf '%s\n' "$STATUS" | awk '$1=="state"{print $2}') in
      done) printf '%s\n' "$STATUS"; return 0 ;;
      failed|cancelled) echo "job $1 did not finish: $STATUS" >&2; return 1 ;;
    esac
    sleep 0.5
  done
  echo "job $1 never finished" >&2
  return 1
}

section_smoke() {
  if ! command -v curl >/dev/null 2>&1; then
    echo "curl not found; skipping the HTTP smoke"
    return 0
  fi

  echo "==> service smoke (HTTP round-trip against the release server)"
  serve_start
  JOB1=$(smoke_post)
  STATUS1=$(smoke_poll_done "$JOB1")
  printf '%s\n' "$STATUS1" | grep -q '^from_cache false$'
  SVG=$(curl -sfS "http://$ADDR/jobs/$JOB1/svg")
  printf '%s\n' "$SVG" | grep -q '<svg'
  JOB2=$(smoke_post)
  STATUS2=$(smoke_poll_done "$JOB2")
  printf '%s\n' "$STATUS2" | grep -q '^from_cache true$'
  METRICS=$(curl -sfS "http://$ADDR/metrics")
  printf '%s\n' "$METRICS" | grep -q '^cache_hits 1$'
  printf '%s\n' "$METRICS" | grep -q '^worker_panics 0$'

  echo "==> batch smoke (POST /batch dedups members; group status converges)"
  BATCH_BODY=$(mktemp)
  cat cases/chip4ip.netlist >"$BATCH_BODY"
  printf '%%%%\n' >>"$BATCH_BODY"
  cat cases/chip4ip.netlist >>"$BATCH_BODY"
  BATCH_RESP=$(curl -sfS -X POST --data-binary @"$BATCH_BODY" "http://$ADDR/batch")
  BATCH_ID=$(printf '%s\n' "$BATCH_RESP" | awk '$1=="batch"{print $2}')
  [ -n "$BATCH_ID" ] || { echo "batch submit failed: $BATCH_RESP"; exit 1; }
  printf '%s\n' "$BATCH_RESP" | grep -q '^members 2$'
  for _ in $(seq 1 240); do
    BATCH_STATUS=$(curl -sfS "http://$ADDR/batch/$BATCH_ID")
    printf '%s\n' "$BATCH_STATUS" | grep -q '^state done$' && break
    sleep 0.5
  done
  printf '%s\n' "$BATCH_STATUS" | grep -q '^state done$' \
    || { echo "batch never converged: $BATCH_STATUS"; exit 1; }
  printf '%s\n' "$BATCH_STATUS" | grep -q '^unique 1$' \
    || { echo "duplicate members did not dedup: $BATCH_STATUS"; exit 1; }
  printf '%s\n' "$BATCH_STATUS" | grep -q '^done 2$'
  METRICS=$(curl -sfS "http://$ADDR/metrics")
  printf '%s\n' "$METRICS" | grep -q '^batch_dedup_hits 1$'

  echo "==> SSE smoke (GET /jobs/<id>/events streams to an end frame)"
  EVENTS=$(curl -sfS --no-buffer --max-time 30 "http://$ADDR/jobs/$JOB1/events")
  printf '%s\n' "$EVENTS" | grep -q '^event: solved$' \
    || { echo "event stream is missing the solved frame: $EVENTS"; exit 1; }
  printf '%s\n' "$EVENTS" | grep -q '^event: end$' \
    || { echo "event stream never ended: $EVENTS"; exit 1; }

  echo "==> observability smoke (Prometheus scrape + Chrome-trace profile)"
  PROM=$(curl -sfS "http://$ADDR/metrics?format=prometheus")
  printf '%s\n' "$PROM" | ./target/release/obs-validate prometheus
  # NOT grep -q: -q exits on first match and the closed pipe can SIGPIPE
  # printf mid-flush on a multi-buffer scrape, which pipefail turns into
  # a spurious failure. Plain grep reads to EOF.
  printf '%s\n' "$PROM" | grep 'columba_solve_seconds_bucket' >/dev/null \
    || { echo "Prometheus scrape is missing solve-latency buckets"; exit 1; }
  printf '%s\n' "$PROM" | grep 'columba_solve_seconds_p99' >/dev/null \
    || { echo "Prometheus scrape is missing the p99 summary line"; exit 1; }
  printf '%s\n' "$PROM" | grep 'columba_queue_class_depth' >/dev/null \
    || { echo "Prometheus scrape is missing the per-class queue gauges"; exit 1; }
  curl -sfS "http://$ADDR/jobs/$JOB1/profile" | ./target/release/obs-validate chrome
  TRACE=$(curl -sfS "http://$ADDR/jobs/$JOB1/trace")
  printf '%s\n' "$TRACE" | grep '"event":"solved"' >/dev/null \
    || { echo "lifecycle trace is missing the solved event: $TRACE"; exit 1; }
  printf '%s\n' "$PROM" | grep 'columba_alloc_live_bytes' >/dev/null \
    || { echo "Prometheus scrape is missing the allocator gauges"; exit 1; }
  curl -sfS "http://$ADDR/slo" | ./target/release/obs-validate slo
  # a solve-latency exemplar must name a job whose trace is still served
  EX_JOB=$(printf '%s\n' "$PROM" \
    | sed -n 's/.*columba_solve_seconds_bucket.* # {job="\([0-9]*\)"}.*/\1/p' | head -1)
  [ -n "$EX_JOB" ] || { echo "solve histogram carries no exemplar"; exit 1; }
  EX_TRACE=$(curl -sfS "http://$ADDR/jobs/$EX_JOB/trace")
  printf '%s\n' "$EX_TRACE" | grep '"event"' >/dev/null \
    || { echo "exemplar job $EX_JOB does not resolve to a trace"; exit 1; }
  echo "observability smoke OK"

  kill -9 "$SERVE_PID"
  trap - EXIT
  echo "service smoke OK"

  echo "==> assay smoke (POST /synthesize-assay: assay in, SVG out, cache hit on resubmit)"
  serve_start
  AJOB1=$(curl -sfS -X POST --data-binary @cases/pooled_capture.assay \
    "http://$ADDR/synthesize-assay" | awk '$1=="id"{print $2}')
  ASTATUS1=$(smoke_poll_done "$AJOB1")
  printf '%s\n' "$ASTATUS1" | grep -q '^from_cache false$'
  printf '%s\n' "$ASTATUS1" | grep -q '^drc_clean true$'
  printf '%s\n' "$ASTATUS1" | grep -q '^schedule_policy distributed$'
  ASVG=$(curl -sfS "http://$ADDR/jobs/$AJOB1/svg")
  printf '%s\n' "$ASVG" | grep -q '<svg'
  AJOB2=$(curl -sfS -X POST --data-binary @cases/pooled_capture.assay \
    "http://$ADDR/synthesize-assay" | awk '$1=="id"{print $2}')
  ASTATUS2=$(smoke_poll_done "$AJOB2")
  printf '%s\n' "$ASTATUS2" | grep -q '^from_cache true$' \
    || { echo "identical assay was re-solved: $ASTATUS2"; exit 1; }
  METRICS=$(curl -sfS "http://$ADDR/metrics")
  printf '%s\n' "$METRICS" | grep -q '^assay_jobs 2$'
  printf '%s\n' "$METRICS" | grep -q '^cache_hits 1$'
  # malformed bodies are rejected up front with a structured 400
  ACYCLIC=$(mktemp)
  printf 'assay cyc\nop a duration=1 device=mixer\nop b duration=1 device=mixer\ndep a -> b\ndep b -> a\n' >"$ACYCLIC"
  ACODE=$(curl -s -o /dev/null -w '%{http_code}' -X POST --data-binary @"$ACYCLIC" \
    "http://$ADDR/synthesize-assay")
  [ "$ACODE" = 400 ] || { echo "cyclic assay returned $ACODE, want 400"; exit 1; }
  kill -9 "$SERVE_PID"
  trap - EXIT
  echo "assay smoke OK"

  echo "==> restart-recovery smoke (solve, SIGKILL, restart on the same state dir)"
  STATE_DIR=$(mktemp -d)
  serve_start --state-dir "$STATE_DIR"
  JOB1=$(smoke_post)
  smoke_poll_done "$JOB1" >/dev/null

  # crash hard: no graceful shutdown, no flush beyond the fsync discipline
  kill -9 "$SERVE_PID"
  wait "$SERVE_PID" 2>/dev/null || true

  serve_start --state-dir "$STATE_DIR"
  METRICS=$(curl -sfS "http://$ADDR/metrics")
  printf '%s\n' "$METRICS" | grep -q '^cache_files_loaded 1$' \
    || { echo "restart did not reload the disk cache: $METRICS"; exit 1; }
  REPLAYED=$(printf '%s\n' "$METRICS" | awk '$1=="journal_records_replayed"{print $2}')
  [ "$REPLAYED" -ge 1 ] || { echo "restart replayed no journal records"; exit 1; }

  # the same case must now be a pure cache hit: zero solver work
  JOB2=$(smoke_post)
  STATUS2=$(smoke_poll_done "$JOB2")
  printf '%s\n' "$STATUS2" | grep -q '^from_cache true$' \
    || { echo "recovered design was re-solved: $STATUS2"; exit 1; }
  METRICS=$(curl -sfS "http://$ADDR/metrics")
  printf '%s\n' "$METRICS" | grep -q '^cache_hits 1$'
  printf '%s\n' "$METRICS" | grep -q '^solve_simplex_iterations 0$'
  kill -9 "$SERVE_PID"
  trap - EXIT
  echo "restart-recovery smoke OK"

  echo "==> observability overhead guard (disabled spans within 2%, allocator within 3%)"
  ./target/release/obs_overhead --iters 3
}

section_perf() {
  echo "==> perf gate (bench medians vs committed baselines, see ci/perf_gate)"
  ci/perf_gate
}

case "$ONLY" in
  lint)
    section_lint
    ;;
  test)
    section_build
    section_test
    ;;
  chaos)
    section_chaos
    ;;
  smoke)
    section_build
    section_smoke
    ;;
  perf)
    section_build
    section_perf
    ;;
  "")
    section_lint
    section_build
    section_test
    section_smoke
    if [ "$SKIP_PERF" = 1 ]; then
      echo "==> perf gate skipped (--skip-perf)"
    else
      section_perf
    fi
    ;;
esac

echo "All checks passed."
