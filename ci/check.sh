#!/usr/bin/env bash
# The one gate every change must pass, locally and in CI.
#
# The build is hermetic: the workspace has no registry dependencies (the
# internal `columba-prng` crate replaces `rand`, deterministic loops replace
# `proptest`, and the `microbench` binary replaces `criterion`), so every
# cargo invocation runs with `--offline`. If this script fails on a network
# error, a registry dependency has crept back in — remove it.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo build --release --offline"
cargo build --workspace --release --offline

echo "==> cargo test --offline"
cargo test --workspace -q --offline

echo "==> cargo test --features fault-inject (resilience ladder under forced failures)"
cargo test -q --offline -p columba-milp --features fault-inject
cargo test -q --offline -p columba-layout --features fault-inject
cargo test -q --offline -p columba-service --features fault-inject

echo "==> service smoke (HTTP round-trip against the release server)"
if command -v curl >/dev/null 2>&1; then
  SERVE_LOG=$(mktemp)
  ./target/release/columba-serve 127.0.0.1:0 --quick --hold >"$SERVE_LOG" &
  SERVE_PID=$!
  trap 'kill "$SERVE_PID" 2>/dev/null || true' EXIT
  ADDR=""
  for _ in $(seq 1 100); do
    ADDR=$(sed -n 's/^listening on //p' "$SERVE_LOG")
    [ -n "$ADDR" ] && break
    sleep 0.1
  done
  [ -n "$ADDR" ] || { echo "server never bound"; exit 1; }

  smoke_post() {
    curl -sfS -X POST --data-binary @cases/chip4ip.netlist "http://$ADDR/synthesize" \
      | awk '$1=="id"{print $2}'
  }
  smoke_poll_done() {
    for _ in $(seq 1 240); do
      STATUS=$(curl -sfS "http://$ADDR/jobs/$1")
      case $(printf '%s\n' "$STATUS" | awk '$1=="state"{print $2}') in
        done) printf '%s\n' "$STATUS"; return 0 ;;
        failed|cancelled) echo "job $1 did not finish: $STATUS" >&2; return 1 ;;
      esac
      sleep 0.5
    done
    echo "job $1 never finished" >&2
    return 1
  }

  JOB1=$(smoke_post)
  STATUS1=$(smoke_poll_done "$JOB1")
  printf '%s\n' "$STATUS1" | grep -q '^from_cache false$'
  SVG=$(curl -sfS "http://$ADDR/jobs/$JOB1/svg")
  printf '%s\n' "$SVG" | grep -q '<svg'
  JOB2=$(smoke_post)
  STATUS2=$(smoke_poll_done "$JOB2")
  printf '%s\n' "$STATUS2" | grep -q '^from_cache true$'
  METRICS=$(curl -sfS "http://$ADDR/metrics")
  printf '%s\n' "$METRICS" | grep -q '^cache_hits 1$'
  printf '%s\n' "$METRICS" | grep -q '^worker_panics 0$'

  echo "==> observability smoke (Prometheus scrape + Chrome-trace profile)"
  PROM=$(curl -sfS "http://$ADDR/metrics?format=prometheus")
  printf '%s\n' "$PROM" | ./target/release/obs-validate prometheus
  printf '%s\n' "$PROM" | grep -q 'columba_solve_seconds_bucket' \
    || { echo "Prometheus scrape is missing solve-latency buckets"; exit 1; }
  printf '%s\n' "$PROM" | grep -q 'columba_solve_seconds_p99' \
    || { echo "Prometheus scrape is missing the p99 summary line"; exit 1; }
  curl -sfS "http://$ADDR/jobs/$JOB1/profile" | ./target/release/obs-validate chrome
  TRACE=$(curl -sfS "http://$ADDR/jobs/$JOB1/trace")
  printf '%s\n' "$TRACE" | grep -q '"event":"solved"' \
    || { echo "lifecycle trace is missing the solved event: $TRACE"; exit 1; }
  echo "observability smoke OK"

  kill "$SERVE_PID"
  trap - EXIT
  echo "service smoke OK"

  echo "==> restart-recovery smoke (solve, SIGKILL, restart on the same state dir)"
  STATE_DIR=$(mktemp -d)
  SERVE_LOG=$(mktemp)
  ./target/release/columba-serve 127.0.0.1:0 --quick --hold --state-dir "$STATE_DIR" >"$SERVE_LOG" &
  SERVE_PID=$!
  trap 'kill -9 "$SERVE_PID" 2>/dev/null || true' EXIT
  ADDR=""
  for _ in $(seq 1 100); do
    ADDR=$(sed -n 's/^listening on //p' "$SERVE_LOG")
    [ -n "$ADDR" ] && break
    sleep 0.1
  done
  [ -n "$ADDR" ] || { echo "durable server never bound"; exit 1; }
  JOB1=$(smoke_post)
  smoke_poll_done "$JOB1" >/dev/null

  # crash hard: no graceful shutdown, no flush beyond the fsync discipline
  kill -9 "$SERVE_PID"
  wait "$SERVE_PID" 2>/dev/null || true

  SERVE_LOG=$(mktemp)
  ./target/release/columba-serve 127.0.0.1:0 --quick --hold --state-dir "$STATE_DIR" >"$SERVE_LOG" &
  SERVE_PID=$!
  trap 'kill -9 "$SERVE_PID" 2>/dev/null || true' EXIT
  ADDR=""
  for _ in $(seq 1 100); do
    ADDR=$(sed -n 's/^listening on //p' "$SERVE_LOG")
    [ -n "$ADDR" ] && break
    sleep 0.1
  done
  [ -n "$ADDR" ] || { echo "server never came back after SIGKILL"; exit 1; }

  METRICS=$(curl -sfS "http://$ADDR/metrics")
  printf '%s\n' "$METRICS" | grep -q '^cache_files_loaded 1$' \
    || { echo "restart did not reload the disk cache: $METRICS"; exit 1; }
  REPLAYED=$(printf '%s\n' "$METRICS" | awk '$1=="journal_records_replayed"{print $2}')
  [ "$REPLAYED" -ge 1 ] || { echo "restart replayed no journal records"; exit 1; }

  # the same case must now be a pure cache hit: zero solver work
  JOB2=$(smoke_post)
  STATUS2=$(smoke_poll_done "$JOB2")
  printf '%s\n' "$STATUS2" | grep -q '^from_cache true$' \
    || { echo "recovered design was re-solved: $STATUS2"; exit 1; }
  METRICS=$(curl -sfS "http://$ADDR/metrics")
  printf '%s\n' "$METRICS" | grep -q '^cache_hits 1$'
  printf '%s\n' "$METRICS" | grep -q '^solve_simplex_iterations 0$'
  kill -9 "$SERVE_PID"
  trap - EXIT
  echo "restart-recovery smoke OK"
else
  echo "curl not found; skipping the HTTP smoke"
fi

echo "==> observability overhead guard (disabled-path spans within 2% on chip4ip)"
./target/release/obs_overhead --iters 3

echo "All checks passed."
